"""Read/write-set tracking for optimistic transaction evaluation.

The paper's states are first-class immutable snapshots, so any number of
transactions can *evaluate* (``w:e``, ``w::p``, ``w;e``) against the same
base state with no coordination at all.  What optimistic concurrency needs
on top is the *footprint* of each evaluation:

* the **read set** — every relation whose content the evaluation depended
  on.  The base :class:`~repro.transactions.interpreter.Interpreter` reports
  these through its ``_touch`` seam (relation lookups, tuple dereferences,
  and active-domain enumerations all report); :class:`TrackingInterpreter`
  records them.
* the **write set** — every relation the transaction changed.  States are
  persistent structures sharing unchanged relations, so the write set is an
  exact identity diff of the pre- and post-state relation maps
  (:func:`written_relations`) taken when :meth:`TrackingInterpreter.run`
  returns.

A transaction whose footprint is disjoint from every write set committed
since its snapshot behaves identically when re-run at the new current state
— which is exactly the validation rule the scheduler applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.db.state import State
from repro.logic.terms import Expr
from repro.transactions.interpreter import Env, Interpreter


def written_relations(before: State, after: State) -> frozenset[str]:
    """Relations that differ between two states, by object identity.

    Persistent updates replace exactly the relation objects they touch, so
    identity comparison is both exact and O(#relations).  A relation written
    back to an equal value still counts as written — conservative, and the
    right call for validation.
    """
    if after is before:
        return frozenset()
    names = {
        name
        for name, rel in after.relations.items()
        if before.relations.get(name) is not rel
    }
    names.update(name for name in before.relations if name not in after.relations)
    return frozenset(names)


@dataclass(frozen=True)
class ReadWriteSet:
    """The footprint of one optimistic evaluation."""

    reads: frozenset[str]
    writes: frozenset[str]

    @property
    def footprint(self) -> frozenset[str]:
        return self.reads | self.writes

    def conflicts_with(self, committed_writes: Iterable[str]) -> frozenset[str]:
        """The relations on which this footprint collides with a committed
        write set (empty = serializable to run after those commits)."""
        return self.footprint & frozenset(committed_writes)


@dataclass
class TrackingInterpreter(Interpreter):
    """An :class:`Interpreter` that records the relation footprint.

    ``eval_object``/``eval_formula`` contribute reads via the base
    interpreter's ``_touch`` seam; ``run`` additionally diffs the pre- and
    post-states to capture writes.  One tracker instance tracks one
    transaction attempt; use :meth:`reset` (or a fresh instance) per attempt.
    """

    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)

    @classmethod
    def wrapping(cls, base: Optional[Interpreter] = None) -> "TrackingInterpreter":
        """A tracker with the same configuration as ``base`` (including any
        attached tracer, so profiled runs trace scheduler workers too)."""
        if base is None:
            return cls()
        return cls(
            definitions=base.definitions,
            order_check=base.order_check,
            max_enumeration=base.max_enumeration,
            tracer=base.tracer,
            budget=base.budget,
            planner=base.planner,
        )

    # -- the hooks ---------------------------------------------------------

    def _touch(self, state: State, *names: str) -> None:
        budget = self.budget
        if budget is not None:
            budget.tick()
        self.reads.update(names)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.touch(names)

    def run(self, state: State, fluent: Expr, env: Env | None = None) -> State:
        result = super().run(state, fluent, env)
        self.writes.update(written_relations(state, result))
        return result

    # -- results -----------------------------------------------------------

    def read_write_set(self) -> ReadWriteSet:
        return ReadWriteSet(frozenset(self.reads), frozenset(self.writes))

    def reset(self) -> None:
        self.reads.clear()
        self.writes.clear()
