"""A lightweight metrics surface for the optimistic scheduler.

Counters and commit-latency quantiles, safely updatable from many worker
threads and snapshottable without stopping the world.  The numbers mirror
the knobs an operator tunes: a high conflict rate means the workload's
footprints overlap (shrink transactions or partition relations), rising
retries mean backoff is too aggressive or too timid, and the latency tail
shows what validation plus constraint checking cost under contention.
"""

from __future__ import annotations

import math
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry


def quantile(
    values: Sequence[float], q: float, default: Optional[float] = None
) -> float:
    """Nearest-rank quantile of an (unsorted) sequence.

    Small windows are well-defined at every ``q``: one sample is every
    quantile of itself, two samples split at ``q = 0.5`` (nearest-rank
    rounds up).  An empty sequence has no quantiles — it returns
    ``default`` when one is given, else raises.  Callers with a latency
    window that may not have filled yet (a p95/p99 of "no commits so far")
    should pass ``default=0.0`` rather than special-casing emptiness.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    if not values:
        if default is None:
            raise ValueError("quantile of an empty sequence")
        return default
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class StatsSnapshot:
    """An immutable point-in-time view of the scheduler's counters."""

    commits: int
    conflicts: int
    retries: int
    aborts: int
    failures: int
    conflict_rate: float
    mean_latency: float
    p50_latency: float
    p95_latency: float
    p99_latency: float = 0.0
    top_conflicts: tuple[tuple[str, int], ...] = field(default=())
    """The most conflicted-on relations as ``(name, count)``, hottest first
    — the operator's partitioning hint (count ties break alphabetically)."""

    def summary(self) -> str:
        text = (
            f"commits={self.commits} conflicts={self.conflicts} "
            f"retries={self.retries} aborts={self.aborts} "
            f"failures={self.failures} "
            f"conflict_rate={self.conflict_rate:.1%} "
            f"latency(mean/p50/p95/p99)="
            f"{self.mean_latency * 1e3:.2f}/"
            f"{self.p50_latency * 1e3:.2f}/"
            f"{self.p95_latency * 1e3:.2f}/"
            f"{self.p99_latency * 1e3:.2f} ms"
        )
        if self.top_conflicts:
            hot = ", ".join(f"{name}:{n}" for name, n in self.top_conflicts)
            text += f" hot_relations=[{hot}]"
        return text


class ConcurrencyStats:
    """Thread-safe counters for commits, conflicts, retries, and latency.

    * **commit** — a transaction validated cleanly and advanced the database.
    * **conflict** — one attempt failed validation (footprint overlapped a
      committed write set).
    * **retry** — a conflicted attempt that was rescheduled.
    * **abort** — a transaction that gave up (retry budget or deadline).
    * **failure** — a non-conflict failure (precondition, evaluation, or
      constraint violation); never retried.
    * **backoff** — time a conflicted transaction slept before retrying.

    When a :class:`~repro.obs.metrics.MetricsRegistry` is attached, every
    event is mirrored into it (``repro_commits_total``,
    ``repro_conflicts_total{relation=...}``,
    ``repro_txn_latency_seconds``, ``repro_backoff_seconds``, ...) so the
    scheduler shares one exposition surface with the journal and store.
    """

    def __init__(
        self, *, top_k: int = 5, metrics: "Optional[MetricsRegistry]" = None
    ) -> None:
        self._lock = threading.Lock()
        self._commits = 0
        self._conflicts = 0
        self._retries = 0
        self._aborts = 0
        self._failures = 0
        self._backoffs = 0
        self._backoff_total = 0.0
        self._latencies: list[float] = []
        self._conflict_relations: Counter[str] = Counter()
        self._top_k = top_k
        self.metrics = metrics

    # -- recording ---------------------------------------------------------

    def record_commit(self, latency: float) -> None:
        with self._lock:
            self._commits += 1
            self._latencies.append(latency)
        if self.metrics is not None:
            self.metrics.counter(
                "repro_commits_total", "transactions committed"
            ).inc()
            self.metrics.histogram(
                "repro_txn_latency_seconds", "submit-to-commit wall time"
            ).observe(latency)

    def record_conflict(self, relations: Iterable[str] = ()) -> None:
        """Count one failed validation; ``relations`` are the footprint
        members that collided with a committed write set."""
        relations = tuple(relations)
        with self._lock:
            self._conflicts += 1
            self._conflict_relations.update(relations)
        if self.metrics is not None:
            self.metrics.counter(
                "repro_conflicts_total", "validation failures"
            ).inc()
            for name in sorted(set(relations)):
                self.metrics.counter(
                    "repro_relation_conflicts_total",
                    "validation failures by colliding relation",
                    relation=name,
                ).inc()

    def record_retry(self) -> None:
        with self._lock:
            self._retries += 1
        if self.metrics is not None:
            self.metrics.counter(
                "repro_retries_total", "conflicted attempts rescheduled"
            ).inc()

    def record_backoff(self, pause: float) -> None:
        """One backoff sleep of ``pause`` seconds before a retry."""
        with self._lock:
            self._backoffs += 1
            self._backoff_total += pause
        if self.metrics is not None:
            self.metrics.histogram(
                "repro_backoff_seconds", "retry backoff sleeps"
            ).observe(pause)

    def record_abort(self) -> None:
        with self._lock:
            self._aborts += 1
        if self.metrics is not None:
            self.metrics.counter(
                "repro_aborts_total", "transactions out of retry budget"
            ).inc()

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
        if self.metrics is not None:
            self.metrics.counter(
                "repro_failures_total", "non-conflict transaction failures"
            ).inc()

    # -- reading -----------------------------------------------------------

    @property
    def commits(self) -> int:
        with self._lock:
            return self._commits

    @property
    def conflicts(self) -> int:
        with self._lock:
            return self._conflicts

    def conflicts_by_relation(self) -> dict[str, int]:
        """Per-relation conflict counts (every relation, not just the top),
        name-sorted so callers render identically under any hash seed."""
        with self._lock:
            return dict(sorted(self._conflict_relations.items()))

    @property
    def backoffs(self) -> tuple[int, float]:
        """(count, total seconds) of backoff sleeps so far."""
        with self._lock:
            return self._backoffs, self._backoff_total

    def snapshot(self) -> StatsSnapshot:
        with self._lock:
            commits = self._commits
            conflicts = self._conflicts
            retries = self._retries
            aborts = self._aborts
            failures = self._failures
            latencies = list(self._latencies)
            by_relation = dict(self._conflict_relations)
        validations = commits + conflicts
        rate = conflicts / validations if validations else 0.0
        mean = sum(latencies) / len(latencies) if latencies else 0.0
        return StatsSnapshot(
            commits=commits,
            conflicts=conflicts,
            retries=retries,
            aborts=aborts,
            failures=failures,
            conflict_rate=rate,
            mean_latency=mean,
            p50_latency=quantile(latencies, 0.50, default=0.0),
            p95_latency=quantile(latencies, 0.95, default=0.0),
            p99_latency=quantile(latencies, 0.99, default=0.0),
            top_conflicts=tuple(
                sorted(by_relation.items(), key=lambda kv: (-kv[1], kv[0]))[
                    : self._top_k
                ]
            ),
        )

    def summary(self) -> str:
        return self.snapshot().summary()
