"""A lightweight metrics surface for the optimistic scheduler.

Counters and commit-latency quantiles, safely updatable from many worker
threads and snapshottable without stopping the world.  The numbers mirror
the knobs an operator tunes: a high conflict rate means the workload's
footprints overlap (shrink transactions or partition relations), rising
retries mean backoff is too aggressive or too timid, and the latency tail
shows what validation plus constraint checking cost under contention.
"""

from __future__ import annotations

import math
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence


def quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an (unsorted) non-empty sequence."""
    if not values:
        raise ValueError("quantile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class StatsSnapshot:
    """An immutable point-in-time view of the scheduler's counters."""

    commits: int
    conflicts: int
    retries: int
    aborts: int
    failures: int
    conflict_rate: float
    mean_latency: float
    p50_latency: float
    p95_latency: float
    top_conflicts: tuple[tuple[str, int], ...] = field(default=())
    """The most conflicted-on relations as ``(name, count)``, hottest first
    — the operator's partitioning hint (count ties break alphabetically)."""

    def summary(self) -> str:
        text = (
            f"commits={self.commits} conflicts={self.conflicts} "
            f"retries={self.retries} aborts={self.aborts} "
            f"failures={self.failures} "
            f"conflict_rate={self.conflict_rate:.1%} "
            f"latency(mean/p50/p95)="
            f"{self.mean_latency * 1e3:.2f}/"
            f"{self.p50_latency * 1e3:.2f}/"
            f"{self.p95_latency * 1e3:.2f} ms"
        )
        if self.top_conflicts:
            hot = ", ".join(f"{name}:{n}" for name, n in self.top_conflicts)
            text += f" hot_relations=[{hot}]"
        return text


class ConcurrencyStats:
    """Thread-safe counters for commits, conflicts, retries, and latency.

    * **commit** — a transaction validated cleanly and advanced the database.
    * **conflict** — one attempt failed validation (footprint overlapped a
      committed write set).
    * **retry** — a conflicted attempt that was rescheduled.
    * **abort** — a transaction that gave up (retry budget or deadline).
    * **failure** — a non-conflict failure (precondition, evaluation, or
      constraint violation); never retried.
    """

    def __init__(self, *, top_k: int = 5) -> None:
        self._lock = threading.Lock()
        self._commits = 0
        self._conflicts = 0
        self._retries = 0
        self._aborts = 0
        self._failures = 0
        self._latencies: list[float] = []
        self._conflict_relations: Counter[str] = Counter()
        self._top_k = top_k

    # -- recording ---------------------------------------------------------

    def record_commit(self, latency: float) -> None:
        with self._lock:
            self._commits += 1
            self._latencies.append(latency)

    def record_conflict(self, relations: Iterable[str] = ()) -> None:
        """Count one failed validation; ``relations`` are the footprint
        members that collided with a committed write set."""
        with self._lock:
            self._conflicts += 1
            self._conflict_relations.update(relations)

    def record_retry(self) -> None:
        with self._lock:
            self._retries += 1

    def record_abort(self) -> None:
        with self._lock:
            self._aborts += 1

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1

    # -- reading -----------------------------------------------------------

    @property
    def commits(self) -> int:
        with self._lock:
            return self._commits

    @property
    def conflicts(self) -> int:
        with self._lock:
            return self._conflicts

    def conflicts_by_relation(self) -> dict[str, int]:
        """Per-relation conflict counts (every relation, not just the top)."""
        with self._lock:
            return dict(self._conflict_relations)

    def snapshot(self) -> StatsSnapshot:
        with self._lock:
            commits = self._commits
            conflicts = self._conflicts
            retries = self._retries
            aborts = self._aborts
            failures = self._failures
            latencies = list(self._latencies)
            by_relation = dict(self._conflict_relations)
        validations = commits + conflicts
        rate = conflicts / validations if validations else 0.0
        if latencies:
            mean = sum(latencies) / len(latencies)
            p50 = quantile(latencies, 0.50)
            p95 = quantile(latencies, 0.95)
        else:
            mean = p50 = p95 = 0.0
        return StatsSnapshot(
            commits=commits,
            conflicts=conflicts,
            retries=retries,
            aborts=aborts,
            failures=failures,
            conflict_rate=rate,
            mean_latency=mean,
            p50_latency=p50,
            p95_latency=p95,
            top_conflicts=tuple(
                sorted(by_relation.items(), key=lambda kv: (-kv[1], kv[0]))[
                    : self._top_k
                ]
            ),
        )

    def summary(self) -> str:
        return self.snapshot().summary()
