"""Retry policies for conflicted optimistic transactions.

A conflicted transaction is re-evaluated against a fresh snapshot after a
backoff pause.  :class:`RetryPolicy` bounds the attempts and shapes the
pause (exponential growth, a cap, and decorrelating jitter so that two
transactions aborted by the same commit do not collide again in lockstep);
:class:`Deadline` bounds the total wall-clock budget.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Deadline:
    """A wall-clock budget measured from construction."""

    seconds: float
    started: float = field(default_factory=time.monotonic)

    def remaining(self) -> float:
        return self.seconds - (time.monotonic() - self.started)

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    @staticmethod
    def after(seconds: float) -> "Deadline":
        return Deadline(seconds)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter.

    * ``max_attempts`` — total attempts (first run included); the
      ``max_attempts``-th conflicted attempt aborts the transaction.
    * ``base_delay`` — pause after the first conflict, in seconds.
    * ``multiplier`` — growth factor per further conflict.
    * ``max_delay`` — cap on any single pause.
    * ``jitter`` — fraction of the pause randomized away (0 = deterministic,
      0.5 = pause drawn uniformly from [0.5·d, d]).  Ignored under
      ``jitter_mode="full"``.
    * ``jitter_mode`` — ``"partial"`` (default) keeps at least
      ``(1 - jitter)·d`` of the pause; ``"full"`` draws uniformly from
      ``[0, d)`` (AWS-style full jitter).  Partial jitter preserves the
      backoff floor but lets transactions aborted by the same commit stay
      loosely synchronized; full jitter spreads them across the whole
      interval, which is what de-correlates a conflict storm.
    """

    max_attempts: int = 8
    base_delay: float = 0.0005
    multiplier: float = 2.0
    max_delay: float = 0.05
    jitter: float = 0.5
    jitter_mode: str = "partial"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0.0:
            raise ValueError("base_delay must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if self.max_delay < 0.0:
            raise ValueError("max_delay must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.jitter_mode not in ("partial", "full"):
            raise ValueError("jitter_mode must be 'partial' or 'full'")

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """The pause after the ``attempt``-th (1-based) conflicted attempt."""
        raw = min(
            self.max_delay,
            self.base_delay * self.multiplier ** max(0, attempt - 1),
        )
        if self.jitter_mode == "full":
            return raw * (rng or random).random()
        if self.jitter:
            draw = (rng or random).random()
            raw *= 1.0 - self.jitter * draw
        return raw

    def exhausted(self, attempt: int) -> bool:
        return attempt >= self.max_attempts
