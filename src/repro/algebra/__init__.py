"""Relational-algebra compiler, cost-based planner, and executor.

The tree-walk interpreter of :mod:`repro.transactions.interpreter` is the
semantics; this package is an *accelerator* for its read-only fragment:
set formers, ``exists`` chains, guarded ``forall`` constraints, and
aggregates compile to hash-join plans that answer in O(n + m) where the
tree walk nests enumerations.  Everything observable — values, canonical
enumeration order, ``_touch`` read sets, ``Budget`` enforcement, error
messages — replicates the tree walk (DESIGN.md §7.6); anything the
compiler cannot express falls back to it silently.

Enable via :meth:`repro.engine.Database.enable_planner`; inspect plans via
:meth:`QueryPlanner.plan` / :meth:`Plan.explain`.
"""

from repro.algebra.compiler import (
    AggQuery,
    AltBranch,
    ChainQuery,
    ForallQuery,
    Incompilable,
    RelQuery,
    SetOpQuery,
    compile_exists,
    compile_forall,
    compile_foreach_domain,
    compile_set_expr,
    compile_set_former,
)
from repro.algebra.ir import (
    Aggregate,
    AntiJoin,
    Arith,
    Cmp,
    Col,
    Disj,
    HashJoin,
    Lit,
    ParamRef,
    Project,
    Scan,
    Select,
    SemiJoin,
    Union,
    render,
)
from repro.algebra.planner import Plan, QueryPlanner
from repro.algebra.stats import StatsCatalog

__all__ = [
    "AggQuery",
    "Aggregate",
    "AltBranch",
    "AntiJoin",
    "Arith",
    "ChainQuery",
    "Cmp",
    "Col",
    "compile_exists",
    "compile_forall",
    "compile_foreach_domain",
    "compile_set_expr",
    "compile_set_former",
    "Disj",
    "ForallQuery",
    "HashJoin",
    "Incompilable",
    "Lit",
    "ParamRef",
    "Plan",
    "Project",
    "QueryPlanner",
    "RelQuery",
    "render",
    "Scan",
    "Select",
    "SemiJoin",
    "SetOpQuery",
    "StatsCatalog",
    "Union",
]
