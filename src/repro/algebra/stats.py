"""Per-relation cardinality statistics for the cost-based planner.

Row counts are maintained *incrementally* from the commit deltas the engine
already computes (:func:`repro.storage.serialize.state_delta`): inserts and
deletes adjust counters in O(|delta|), so planning never rescans the
database.  Per-column distinct counts (for join/selection selectivity) are
computed lazily per relation and cached against the immutable
:class:`~repro.db.relation.Relation` object — a commit that touches a
relation swaps the object, which invalidates the cache by identity.

Statistics influence only plan *choice* (join order, build side, index
use), never results: a stale estimate costs time, not correctness.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.db.state import State


class StatsCatalog:
    """Cardinality bookkeeping shared by one planner."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.rows: dict[str, int] = {}
        self._ndv: dict[str, tuple[object, dict[int, int]]] = {}
        self.commits_observed = 0

    def prime(self, state: State) -> None:
        """(Re)initialize row counts from a full state."""
        with self._lock:
            self.rows = {
                name: len(state.relations[name]) for name in state.relations
            }
            self._ndv.clear()

    def observe_commit(self, delta: dict) -> None:
        """Fold one commit delta into the row counters."""
        with self._lock:
            self.commits_observed += 1
            # Dropped relations first: a relation replaced within one commit
            # appears in both lists, and processing "created" last keeps its
            # fresh zero instead of popping it.  Creation also clears any
            # NDV entry left over from a same-named predecessor, so the
            # greedy join order never ranks a dead relation's statistics.
            for name in delta.get("dropped", ()):
                self.rows.pop(name, None)
                self._ndv.pop(name, None)
            for name, arity in delta.get("created", ()):
                self.rows[name] = 0
                self._ndv.pop(name, None)
            for name, ops in delta.get("changes", {}).items():
                base = self.rows.get(name, 0)
                base += len(ops.get("ins", ()))
                base -= len(ops.get("del", ()))
                self.rows[name] = max(0, base)
                self._ndv.pop(name, None)

    # -- estimates ---------------------------------------------------------

    def row_estimate(self, name: str) -> int:
        return self.rows.get(name, 0)

    def distinct(self, state: State, name: str, index: int) -> int:
        """Distinct values in column ``index`` (1-based); lazily computed
        and cached against the current relation object."""
        rel = state.relations.get(name)
        if rel is None:
            return 0
        with self._lock:
            cached = self._ndv.get(name)
            if cached is not None and cached[0] is rel:
                counts = cached[1]
            else:
                counts = {}
                self._ndv[name] = (rel, counts)
        got = counts.get(index)
        if got is None:
            got = len({t.values[index - 1] for t in rel}) if len(rel) else 0
            counts[index] = got
        return got

    def selectivity(self, state: State, name: str, index: Optional[int]) -> float:
        """Fraction of rows surviving an equality filter on the column
        (``None`` index — a non-equality predicate — uses a fixed 1/3)."""
        if index is None:
            return 1 / 3
        n = self.row_estimate(name)
        if n <= 0:
            return 1.0
        d = self.distinct(state, name, index) or 1
        return 1.0 / d

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "rows": dict(self.rows),
                "commits_observed": self.commits_observed,
            }
