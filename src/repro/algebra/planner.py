"""Cost-based query planner: the interpreter-facing facade of the algebra
subsystem.

The planner sits behind four interpreter hooks (set formers, quantifiers,
aggregates — installed by :meth:`repro.engine.Database.enable_planner`).
Each hook returns ``(handled, value)``: ``(False, None)`` hands the node
back to the tree walk (outside the compilable fragment, planner disabled
or quarantined, relation drifted from the plan, or re-entry from the
verification oracle), ``(True, value)`` answers it from a relational-
algebra plan.

Planning decisions — greedy join order, selection pushdown, hash-index
use — come from :class:`~repro.algebra.stats.StatsCatalog`, whose row
counts the engine maintains incrementally from commit deltas.  Decisions
affect time only, never results or read sets: the executor replicates the
tree walk's ``_touch`` gating in *source* order regardless of the physical
join order (DESIGN.md §7.6).

``verify=True`` cross-checks every planned answer against the tree-walk
oracle; ``quarantine=True`` additionally disables the planner on the first
mismatch and answers from the oracle — the same last-line-of-defense
contract as the query cache and the incremental checker.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.errors import PlanError, PlannerMismatch
from repro.eval.quarantine import quarantine_event
from repro.logic.fluents import Foreach, SetFormer
from repro.logic.formulas import Exists, Forall
from repro.transactions.interpreter import _tuple_order_key

from repro.algebra import executor as _exec
from repro.algebra import ir
from repro.algebra.compiler import (
    AggQuery,
    ChainQuery,
    Cmp,
    ForallQuery,
    Incompilable,
    RelQuery,
    SetOpQuery,
    compile_exists,
    compile_forall,
    compile_foreach_domain,
    compile_set_expr,
    compile_set_former,
)
from repro.algebra.executor import Unplannable
from repro.algebra.stats import StatsCatalog


class Plan:
    """A compiled, ordered operator tree with ``explain()`` rendering."""

    def __init__(self, query, root, annotate=None) -> None:
        self.query = query
        self.root = root
        self._annotate = annotate

    def explain(self) -> str:
        return "\n".join(ir.render(self.root, self._annotate))

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.explain()


class QueryPlanner:
    """Plan cache + statistics + execution entry points for one database."""

    def __init__(
        self,
        *,
        verify: bool = False,
        quarantine: bool = False,
        metrics=None,
        max_plans: int = 512,
        max_rep_cache: int = 256,
    ) -> None:
        self.quarantine = quarantine
        self.verify = verify or quarantine
        self.enabled = True
        self.metrics = metrics
        self.stats = StatsCatalog()
        self.max_plans = max_plans
        self.max_rep_cache = max_rep_cache
        self._plans: OrderedDict = OrderedDict()
        self._reps: OrderedDict = OrderedDict()
        self._indexes: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._local = threading.local()
        # White-box seam for the chaos harness: when set, every planned
        # result is corrupted before the verify cross-check, proving the
        # quarantine path fires and no wrong answer escapes.
        self._chaos_corrupt = False
        # Plain counters (mirrored to the metrics registry when present).
        self.compiled_count = 0
        self.fallback_count = 0
        self.exec_count = 0
        self.mismatch_count = 0

    # -- caches -------------------------------------------------------------

    def reps_of(self, relation):
        """The relation's value-distinct representatives in the tree walk's
        canonical enumeration order, cached against the immutable relation
        object (states share unchanged relations structurally, so one entry
        serves every snapshot that didn't touch the relation)."""
        with self._lock:
            got = self._reps.get(relation)
            if got is not None:
                self._reps.move_to_end(relation)
                return got
        reps = sorted(
            relation.to_tuple_set().representatives, key=_tuple_order_key
        )
        with self._lock:
            self._reps[relation] = reps
            while len(self._reps) > self.max_rep_cache:
                self._reps.popitem(last=False)
        return reps

    def index_of(self, relation, index: int) -> dict:
        """Hash index over column ``index`` (1-based) of the relation's
        representatives; cached like :meth:`reps_of`."""
        key = (relation, index)
        with self._lock:
            got = self._indexes.get(key)
            if got is not None:
                self._indexes.move_to_end(key)
                return got
        table: dict = {}
        for t in self.reps_of(relation):
            table.setdefault(t.values[index - 1], []).append(t)
        with self._lock:
            self._indexes[key] = table
            while len(self._indexes) > self.max_rep_cache:
                self._indexes.popitem(last=False)
        return table

    def _compiled(self, node, interp, compile_fn):
        """Compile-or-fallback with a bounded plan cache; ``None`` means the
        node is outside the fragment (negatively cached)."""
        with self._lock:
            if node in self._plans:
                self._plans.move_to_end(node)
                cached = self._plans[node]
                return cached if not isinstance(cached, str) else None
        try:
            compiled = compile_fn()
        except Incompilable as exc:
            compiled = exc.reason  # negative-cache the reason string
        with self._lock:
            self._plans[node] = compiled
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
        if isinstance(compiled, str):
            self._count("repro_planner_fallback_total", "fallback")
            return None
        self._count("repro_planner_compiled_total", "compiled")
        return compiled

    def invalidate_negative(self) -> None:
        """Drop negatively-cached ``Incompilable`` reasons.

        A structural schema change (``register_*`` replacing the head
        state, a commit creating or dropping relations) can move a node
        into the compilable fragment — e.g. a membership over a relation
        that did not exist at first evaluation.  Positive plans stay: they
        are state-independent shapes whose run-time binding check already
        falls back when a relation drifts."""
        with self._lock:
            stale = [k for k, v in self._plans.items() if isinstance(v, str)]
            for k in stale:
                del self._plans[k]

    def _count(self, metric: str, attr: str) -> None:
        setattr(self, attr + "_count", getattr(self, attr + "_count") + 1)
        if self.metrics is not None:
            self.metrics.counter(
                metric, f"planner {attr} events"
            ).inc()

    # -- cost model ---------------------------------------------------------

    def _level_estimate(self, state, lv, local_eq_cols) -> float:
        rel = state.relations.get(lv.rel)
        base = self.stats.row_estimate(lv.rel)
        if base <= 0 and rel is not None:
            base = len(rel)
        est = float(max(base, 0))
        for col in local_eq_cols:
            est *= self.stats.selectivity(state, lv.rel, col)
        return max(est, 0.001)

    def order_levels(self, state, q: ChainQuery) -> list[int]:
        """Greedy cost-based join order (smallest estimated intermediate
        first, cross products last); deterministic for a given state."""
        levels = q.levels
        if len(levels) <= 1:
            return [lv.slot for lv in levels]
        by_slot = {lv.slot: lv for lv in levels}
        local_eq: dict[int, list[int]] = {lv.slot: [] for lv in levels}
        joins: list[tuple[int, int, int, int]] = []  # slotA, colA, slotB, colB
        for spec in q.preds:
            p = spec.pred
            if not isinstance(p, Cmp) or p.op != "eq":
                continue
            lhs, rhs = p.lhs, p.rhs
            l_col = isinstance(lhs, ir.Col)
            r_col = isinstance(rhs, ir.Col)
            if l_col and r_col and lhs.slot != rhs.slot:
                joins.append((lhs.slot, lhs.index, rhs.slot, rhs.index))
            elif l_col and not r_col:
                local_eq[lhs.slot].append(lhs.index or None)
            elif r_col and not l_col:
                local_eq[rhs.slot].append(rhs.index or None)
        est = {
            lv.slot: self._level_estimate(state, lv, [c for c in local_eq[lv.slot] if c])
            for lv in levels
        }
        order = [min(est, key=lambda s: (est[s], s))]
        placed = set(order)
        while len(order) < len(levels):
            best = None
            for slot in sorted(est):
                if slot in placed:
                    continue
                factor = None
                for a, ca, b, cb in joins:
                    if a in placed and b == slot:
                        col = cb
                    elif b in placed and a == slot:
                        col = ca
                    else:
                        continue
                    d = self.stats.distinct(state, by_slot[slot].rel, col) if col else 1
                    f = 1.0 / max(d, 1)
                    factor = f if factor is None else min(factor, f)
                connected = factor is not None
                cost = est[slot] * (factor if connected else 1.0)
                rank = (not connected, cost, slot)
                if best is None or rank < best[0]:
                    best = (rank, slot)
            order.append(best[1])
            placed.add(best[1])
        return order

    # -- explain ------------------------------------------------------------

    def plan(self, node, state, interp=None) -> Plan:
        """Compile ``node`` (raising :class:`~repro.errors.PlanError` when it
        is outside the fragment) and build the physical operator tree the
        executor would run at ``state``, annotated with row estimates."""
        try:
            if isinstance(node, SetFormer):
                q = compile_set_former(node, interp)
            elif isinstance(node, Forall):
                q = compile_forall(node, interp)
            elif isinstance(node, Exists):
                q = compile_exists(node, interp)
            elif isinstance(node, Foreach):
                q = compile_foreach_domain(node, interp)
            else:
                q = compile_set_expr(node, interp)
        except Incompilable as exc:
            raise PlanError(exc.reason) from None
        root = self._build_op(q, state)
        notes: dict[int, str] = {}

        def walk(op):
            if isinstance(op, ir.Scan):
                rel = state.relations.get(op.rel)
                rows = self.stats.row_estimate(op.rel)
                if rows <= 0 and rel is not None:
                    rows = len(rel)
                notes[id(op)] = f"~{rows} rows"
            for attr in ("left", "right", "child"):
                sub = getattr(op, attr, None)
                if sub is not None:
                    walk(sub)

        walk(root)
        return Plan(q, root, annotate=lambda op: notes.get(id(op)))

    def _build_op(self, q, state):
        if isinstance(q, RelQuery):
            return ir.Scan(q.rel, q.arity, 0, "*")
        if isinstance(q, SetOpQuery):
            return ir.Union(
                q.mode, self._build_op(q.left, state), self._build_op(q.right, state)
            )
        if isinstance(q, AggQuery):
            return ir.Aggregate(q.op, self._build_op(q.child, state))
        if isinstance(q, ForallQuery):
            left = ir.Scan(
                q.rel, q.arity, 0, q.var.name, q.guard_preds + q.pre_preds
            )
            if q.body_level is None:
                return left
            right = ir.Scan(
                q.body_level.rel,
                q.body_level.arity,
                1,
                q.body_level.var.name,
            )
            lk, rk, residual = _split_keys(q.body_preds, {0}, 1)
            cls = ir.SemiJoin if q.negated else ir.AntiJoin
            return cls(left, right, tuple(lk), tuple(rk), tuple(residual))
        assert isinstance(q, ChainQuery)
        order = self.order_levels(state, q)
        by_slot = {lv.slot: lv for lv in q.levels}
        preds = [s.pred for s in q.preds]
        local: dict[int, list[Cmp]] = {lv.slot: [] for lv in q.levels}
        multi: list[Cmp] = []
        for p in preds:
            slots = _exec._pred_slots(p)
            if len(slots) <= 1:
                local[next(iter(slots)) if slots else order[0]].append(p)
            else:
                multi.append(p)
        placed = {order[0]}
        lv0 = by_slot[order[0]]
        root = ir.Scan(
            lv0.rel, lv0.arity, lv0.slot, lv0.var.name, tuple(local[lv0.slot])
        )
        for slot in order[1:]:
            lv = by_slot[slot]
            usable = [p for p in multi if _exec._pred_slots(p) <= placed | {slot}]
            used = {id(p) for p in usable}
            multi = [p for p in multi if id(p) not in used]
            lk, rk, residual = _split_keys(usable, placed, slot)
            scan = ir.Scan(
                lv.rel, lv.arity, lv.slot, lv.var.name, tuple(local[slot])
            )
            root = ir.HashJoin(root, scan, tuple(lk), tuple(rk), tuple(residual))
            placed.add(slot)
        if q.alts:
            # Union plan: one branch per disjunct over the shared positive
            # join, combined left-to-right (branch order is semantic — the
            # tree walk's ``any`` short-circuits in source order).
            base = root
            branch_ops = []
            for branch in q.alts:
                b = base
                if branch.preds:
                    b = ir.Select(b, tuple(branch.preds))
                if branch.level is not None:
                    s_local = [
                        p
                        for p in branch.inner_preds
                        if _exec._pred_slots(p) <= {branch.level.slot}
                    ]
                    s_used = {id(p) for p in s_local}
                    linking = [
                        p for p in branch.inner_preds if id(p) not in s_used
                    ]
                    lk, rk, residual = _split_keys(
                        linking, placed, branch.level.slot
                    )
                    scan = ir.Scan(
                        branch.level.rel,
                        branch.level.arity,
                        branch.level.slot,
                        branch.level.var.name,
                        tuple(s_local),
                    )
                    cls = ir.AntiJoin if branch.negated else ir.SemiJoin
                    b = cls(b, scan, tuple(lk), tuple(rk), tuple(residual))
                branch_ops.append(b)
            root = branch_ops[0]
            for b in branch_ops[1:]:
                root = ir.Union("union", root, b)
        if q.sub is not None:
            sub = q.sub
            s_local = [
                p for p in sub.preds if _exec._pred_slots(p) <= {sub.level.slot}
            ]
            s_used = {id(p) for p in s_local}
            linking = [p for p in sub.preds if id(p) not in s_used]
            lk, rk, residual = _split_keys(linking, placed, sub.level.slot)
            scan = ir.Scan(
                sub.level.rel,
                sub.level.arity,
                sub.level.slot,
                sub.level.var.name,
                tuple(s_local),
            )
            root = ir.AntiJoin(root, scan, tuple(lk), tuple(rk), tuple(residual))
        if q.kind in ("setformer", "foreach") and q.result is not None:
            root = ir.Project(
                root,
                q.result.exprs,
                q.result.element_arity,
                whole=q.result.whole,
            )
        return root

    # -- interpreter hooks ---------------------------------------------------

    def _active(self) -> bool:
        return self.enabled and not getattr(self._local, "in_oracle", False)

    def eval_set_former(self, interp, state, former, env):
        if not self._active():
            return False, None
        q = self._compiled(former, interp, lambda: compile_set_former(former, interp))
        if q is None:
            return False, None
        return self._execute(
            interp,
            state,
            env,
            label="set-former",
            runner=lambda: _exec.run_chain(self, interp, state, env, q),
            oracle=lambda: interp._set_former(state, former, env),
        )

    def eval_quantifier(self, interp, state, formula, env):
        if not self._active():
            return False, None
        if isinstance(formula, Forall):
            q = self._compiled(
                formula, interp, lambda: compile_forall(formula, interp)
            )
            if q is None:
                return False, None
            runner = lambda: _exec.run_forall(self, interp, state, env, q)
            label = "forall"
        else:
            q = self._compiled(
                formula, interp, lambda: compile_exists(formula, interp)
            )
            if q is None:
                return False, None
            runner = lambda: _exec.run_chain(self, interp, state, env, q)
            label = "exists"
        return self._execute(
            interp,
            state,
            env,
            label=label,
            runner=runner,
            oracle=lambda: interp._bool(state, formula, env),
        )

    def eval_foreach_domain(self, interp, state, fluent, env):
        """The satisfier list of a ``foreach`` — same contract as the other
        hooks, but the value is a *list* (the fold order is semantic)."""
        if not self._active():
            return False, None
        q = self._compiled(
            fluent, interp, lambda: compile_foreach_domain(fluent, interp)
        )
        if q is None:
            return False, None
        return self._execute(
            interp,
            state,
            env,
            label="foreach",
            runner=lambda: _exec.run_foreach_domain(self, interp, state, env, q),
            oracle=lambda: [
                inner.lookup(fluent.var)
                for inner in interp._enumerate(
                    state, (fluent.var,), fluent.cond, env
                )
            ],
        )

    def eval_aggregate(self, interp, state, base, expr, env):
        if not self._active():
            return False, None
        q = self._compiled(
            expr,
            interp,
            lambda: AggQuery(base, compile_set_expr(expr.args[0], interp)),
        )
        if q is None:
            return False, None
        return self._execute(
            interp,
            state,
            env,
            label=f"agg-{base}",
            runner=lambda: _exec.run_aggregate(self, interp, state, env, q),
            oracle=lambda: interp._arithmetic(state, base, expr, env),
        )

    # -- execution / verification -------------------------------------------

    def _execute(self, interp, state, env, *, label, runner, oracle):
        tracer = interp.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.start("plan", label, 0)
        try:
            try:
                value = runner()
            except Unplannable:
                self._count("repro_planner_fallback_total", "fallback")
                return False, None
            self._count("repro_planner_exec_total", "exec")
            if self._chaos_corrupt:
                value = _corrupt(value)
            if self.verify:
                self._local.in_oracle = True
                try:
                    expected = oracle()
                finally:
                    self._local.in_oracle = False
                if not _agree(value, expected):
                    detail = (
                        f"{label}: planner={value!r} oracle={expected!r}"
                    )[:400]
                    self._count("repro_planner_mismatch_total", "mismatch")
                    if self.quarantine:
                        self.enabled = False
                        quarantine_event(self.metrics, "planner", detail)
                        return True, expected
                    raise PlannerMismatch(detail)
            return True, value
        finally:
            if tracer is not None:
                tracer.finish(span)


def _split_keys(preds, placed, slot):
    """Partition join predicates into equi keys (placed-side expr, new-side
    column) and residual filters — the static mirror of the executor's
    per-step key extraction."""
    lk, rk, residual = [], [], []
    for p in preds:
        mine = other = None
        if isinstance(p, Cmp) and p.op == "eq":
            if isinstance(p.lhs, ir.Col) and p.lhs.slot == slot and not (
                isinstance(p.rhs, ir.Col) and p.rhs.slot == slot
            ):
                mine, other = p.lhs, p.rhs
            elif isinstance(p.rhs, ir.Col) and p.rhs.slot == slot and not (
                isinstance(p.lhs, ir.Col) and p.lhs.slot == slot
            ):
                mine, other = p.rhs, p.lhs
        if mine is not None:
            lk.append(other)
            rk.append(mine)
        else:
            residual.append(p)
    return lk, rk, residual


def _agree(value, expected) -> bool:
    if type(value) is not type(expected):
        return False
    return value == expected


def _corrupt(value):
    """Chaos-harness corruption: wrong in an obvious, typed way."""
    from repro.db.values import TupleSet

    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, TupleSet) and value.representatives:
        return TupleSet.of(value.arity, value.representatives[:-1])
    return value
