"""Relational-algebra IR: operators, value expressions, and predicates.

The compiler (:mod:`repro.algebra.compiler`) lowers a set former, an
``exists`` chain, or a guarded ``forall`` into a small tree of these
operators; the planner (:mod:`repro.algebra.planner`) annotates the tree
with cardinality estimates and a physical join order; the executor
(:mod:`repro.algebra.executor`) runs it against a :class:`~repro.db.state.
State` through the interpreter's ``_touch``/``Budget`` seams.

Everything here is frozen data: a compiled plan is immutable and shared
across evaluations (and across the tracking interpreters of concurrent
workers), so nodes carry no per-run state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.logic.terms import Var

# ---------------------------------------------------------------------------
# value expressions — evaluated against a row (a tuple of DBTuples by slot)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Col:
    """Slot ``slot``'s tuple (``index`` 0) or its ``index``-th attribute
    (1-based, matching :meth:`DBTuple.select`)."""

    slot: int
    index: int


@dataclass(frozen=True)
class Lit:
    """An atom constant."""

    value: object


@dataclass(frozen=True)
class ParamRef:
    """A free variable of the query, bound in the environment at run time.

    Resolution is *lazy* — the executor dereferences it the first time a
    row actually reaches an expression mentioning it, replicating where the
    tree walk touches the parameter tuple's owning relation.
    """

    var: Var


@dataclass(frozen=True)
class Arith:
    """Binary natural arithmetic over value expressions: ``op`` is one of
    ``+ - * div mod`` with the interpreter's exact semantics (truncated
    subtraction, ``div``/``mod`` by zero raise).  Pure — operands never
    touch a relation — so predicates over arithmetic push down like any
    other value predicate."""

    op: str
    lhs: "ValueExpr"
    rhs: "ValueExpr"


ValueExpr = object  # Col | Lit | ParamRef | Arith


@dataclass(frozen=True)
class Cmp:
    """A pure value predicate: ``lhs op rhs`` with ``op`` one of
    ``eq ne lt le gt ge``.  Never touches a relation (operands are columns,
    constants, or parameters), which is what makes predicate pushdown
    touch-neutral."""

    op: str
    lhs: ValueExpr
    rhs: ValueExpr


@dataclass(frozen=True)
class Disj:
    """A disjunction of pure-predicate conjunctions: holds when any branch's
    predicates all hold.  Evaluation is ordered and short-circuiting in both
    directions, mirroring the tree walk's ``any``/``all`` over the original
    ``Or``/``And`` — relation-touching disjuncts are compiled to union
    branches instead (see ``AltBranch`` in the compiler)."""

    branches: tuple[tuple["Pred", ...], ...]


Pred = object  # Cmp | Disj


# ---------------------------------------------------------------------------
# operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scan:
    """Enumerate one relation's value-distinct representatives in canonical
    order (the tree walk's membership-narrowed domain), applying pushed-down
    local predicates."""

    rel: str
    arity: int
    slot: int
    var_name: str
    preds: tuple[Cmp, ...] = ()


@dataclass(frozen=True)
class HashJoin:
    """Left-deep equi join: build a hash table over ``right`` keyed on
    ``right_keys``, probe with the accumulated left rows on ``left_keys``;
    ``residual`` predicates (non-equi, or param-dependent) filter matches."""

    left: "Op"
    right: Scan
    left_keys: tuple[ValueExpr, ...]
    right_keys: tuple[ValueExpr, ...]
    residual: tuple[Cmp, ...] = ()


@dataclass(frozen=True)
class Select:
    """Filter rows by predicates that could not be pushed into a scan or
    join (e.g. predicates over parameters only)."""

    child: "Op"
    preds: tuple[Cmp, ...]


@dataclass(frozen=True)
class SemiJoin:
    """Keep left rows with at least one match in ``right`` (a trailing
    positive ``exists`` that could not be flattened, or a ``forall``
    consequent)."""

    left: "Op"
    right: Scan
    left_keys: tuple[ValueExpr, ...]
    right_keys: tuple[ValueExpr, ...]
    residual: tuple[Cmp, ...] = ()


@dataclass(frozen=True)
class AntiJoin:
    """Keep left rows with *no* match in ``right`` (a trailing
    ``not exists``, or the violation set of a guarded ``forall``)."""

    left: "Op"
    right: Scan
    left_keys: tuple[ValueExpr, ...]
    right_keys: tuple[ValueExpr, ...]
    residual: tuple[Cmp, ...] = ()


@dataclass(frozen=True)
class Project:
    """Produce the set former's elements from the surviving rows, in the
    tree walk's canonical enumeration order."""

    child: "Op"
    exprs: tuple[ValueExpr, ...]
    element_arity: int
    whole: bool = False
    """When the result is a bound variable itself, the projected element is
    the domain tuple *with its identifier* — representative identity must
    match the tree walk exactly."""


@dataclass(frozen=True)
class Union:
    """Set union / intersection / difference of two sub-plans (``mode`` is
    ``union``, ``intersect``, or ``diff``), delegated to
    :class:`~repro.db.values.TupleSet` so semantics match ``_set_op``."""

    mode: str
    left: "Op"
    right: "Op"


@dataclass(frozen=True)
class Aggregate:
    """``sum``/``max``/``min``/``size`` over the first column of the child
    plan's result set, with the interpreter's exact error contract."""

    op: str
    child: "Op"


Op = object  # Scan | HashJoin | Select | SemiJoin | AntiJoin | Project | Union | Aggregate


# ---------------------------------------------------------------------------
# explain rendering
# ---------------------------------------------------------------------------


def _expr_str(e: ValueExpr) -> str:
    if isinstance(e, Col):
        return f"#{e.slot}" if e.index == 0 else f"#{e.slot}.{e.index}"
    if isinstance(e, Lit):
        return repr(e.value)
    if isinstance(e, ParamRef):
        return f"${e.var.name}"
    if isinstance(e, Arith):
        return f"({_expr_str(e.lhs)} {e.op} {_expr_str(e.rhs)})"
    return repr(e)


_OPS = {"eq": "=", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}


def _pred_str(p) -> str:
    if isinstance(p, Disj):
        return " or ".join(
            "(" + " and ".join(_pred_str(c) for c in branch) + ")"
            for branch in p.branches
        )
    return f"{_expr_str(p.lhs)} {_OPS[p.op]} {_expr_str(p.rhs)}"


def render(op: Op, annotate=None, indent: int = 0) -> list[str]:
    """Render an operator tree as indented lines.  ``annotate(op) -> str``
    may append per-node notes (the planner adds cardinality estimates)."""
    pad = "  " * indent
    note = ""
    if annotate is not None:
        got = annotate(op)
        if got:
            note = f"  ({got})"

    def line(text: str) -> str:
        return f"{pad}{text}{note}"

    if isinstance(op, Scan):
        preds = (
            " where " + " and ".join(_pred_str(p) for p in op.preds)
            if op.preds
            else ""
        )
        return [line(f"Scan {op.rel} as {op.var_name}(#{op.slot}){preds}")]
    if isinstance(op, (HashJoin, SemiJoin, AntiJoin)):
        name = type(op).__name__
        keys = " and ".join(
            f"{_expr_str(l)} = {_expr_str(r)}"
            for l, r in zip(op.left_keys, op.right_keys)
        ) or "true"
        residual = (
            " residual " + " and ".join(_pred_str(p) for p in op.residual)
            if op.residual
            else ""
        )
        return [
            line(f"{name} on {keys}{residual}"),
            *render(op.left, annotate, indent + 1),
            *render(op.right, annotate, indent + 1),
        ]
    if isinstance(op, Select):
        preds = " and ".join(_pred_str(p) for p in op.preds)
        return [line(f"Select {preds}"), *render(op.child, annotate, indent + 1)]
    if isinstance(op, Project):
        exprs = ", ".join(_expr_str(e) for e in op.exprs)
        return [
            line(f"Project [{exprs}] arity={op.element_arity}"),
            *render(op.child, annotate, indent + 1),
        ]
    if isinstance(op, Union):
        return [
            line(f"Union mode={op.mode}"),
            *render(op.left, annotate, indent + 1),
            *render(op.right, annotate, indent + 1),
        ]
    if isinstance(op, Aggregate):
        return [
            line(f"Aggregate {op.op}"),
            *render(op.child, annotate, indent + 1),
        ]
    return [line(type(op).__name__)]
