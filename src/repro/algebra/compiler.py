"""Compiler from the fluent fragment to relational-algebra form.

The compilable fragment is deliberately narrow — it is the shape the tree
walk's read-set (``_touch``) protocol can be replicated for *exactly*
(DESIGN.md §7.6):

* every bound variable is tuple-sorted and has exactly one membership
  conjunct ``member(v, R)`` over a bare :class:`RelConst` (its domain);
* all other conjuncts are pure value predicates — ``=``/``!=``, integer
  comparisons, and binary arithmetic (``+ - * div mod``) over attributes/
  selections of bound variables, atom constants, and environment
  parameters — which never touch a relation; an ``or`` of such predicates
  compiles to a :class:`~repro.algebra.ir.Disj`;
* a conjunction may end in a *sequence* of quantified conjuncts: each
  positive ``exists`` flattens into further join levels (its own scope
  group), and the final one may be a ``not exists`` (anti join);
* alternatively the final conjunct may be an ``or`` whose disjuncts each
  hold pure predicates plus at most one single-level ``[not] exists`` —
  compiled to union branches (:class:`AltBranch`);
* a ``forall`` must be guarded, ``forall v. member(v, R) ∧ guards → body``,
  with a body of pure predicates plus at most one (possibly negated)
  single-level ``exists``;
* a ``foreach`` iteration domain compiles like a set former over its bound
  variable, yielding the satisfier list in canonical order.

Anything else — defined/skolem/state-changing symbols, situational layers,
memberships swallowed inside a disjunction, set-valued or atom-sorted
bound variables, double memberships — raises :class:`Incompilable`, and
the planner falls back to the tree walk.  Fallback is always sound: the
tree walk is the semantics.

This mirrors the eligibility analysis of :mod:`repro.eval.footprint`: walk
the tree, accumulate structure, record the first blocking reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.logic.fluents import Foreach, SetFormer
from repro.logic.formulas import And, Eq, Exists, Forall, Formula, Implies, Not, Or, Pred
from repro.logic.symbols import SymbolKind
from repro.logic.terms import App, AtomConst, Expr, Layer, RelConst, Var
from repro.transactions.interpreter import _base_name, _conjuncts

from repro.algebra.ir import Arith, Cmp, Col, Disj, Lit, ParamRef, ValueExpr


class Incompilable(Exception):
    """Internal signal: the node is outside the compilable fragment.

    Never escapes the planner — it is converted to a tree-walk fallback (or
    to :class:`repro.errors.PlanError` when compilation was explicitly
    requested)."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(reason)


# ---------------------------------------------------------------------------
# compiled shapes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Level:
    """One membership-narrowed enumeration level: ``var`` ranges over the
    value-distinct representatives of relation ``rel``.  ``group_end`` is
    the slot of the last level in the same quantifier scope group — levels
    of one set former share a group (their domains narrow unconditionally,
    predicates are only checked at the leaf), while each flattened nested
    ``exists`` opens its own group (its domain narrows only for candidates
    surviving the enclosing conjunction)."""

    var: Var
    slot: int
    rel: str
    arity: int
    group_end: int


@dataclass(frozen=True)
class PredSpec:
    """A predicate with its gating position: ``eff_level`` is the slot at
    whose conjunction leaf the tree walk evaluates it (the last slot of its
    syntactic scope group) — deeper domains narrow only when rows survive
    it.  The executor may *apply* it earlier (pushdown is touch-neutral);
    only gate computation uses ``eff_level``."""

    pred: Cmp
    eff_level: int


@dataclass(frozen=True)
class SubQuery:
    """A trailing ``not exists`` (anti join) over one inner level."""

    level: Level
    preds: tuple[Cmp, ...]


@dataclass(frozen=True)
class ResultSpec:
    exprs: tuple[ValueExpr, ...]
    whole: bool
    element_arity: int


@dataclass(frozen=True)
class AltBranch:
    """One disjunct of a trailing ``or``, evaluated per surviving row of
    the positive join: pure predicates plus at most one single-level
    ``[not] exists``.  Branches are ordered — the tree walk's ``any``
    short-circuits, so a later branch's inner relation narrows only for
    rows every earlier branch rejected."""

    preds: tuple  # Cmp | Disj, over the enclosing chain's slots
    level: Optional[Level]
    inner_preds: tuple  # Cmp | Disj, may also mention ``level``'s slot
    negated: bool


@dataclass(frozen=True)
class ChainQuery:
    """A set former, ``exists`` chain, or ``foreach`` domain: joined
    levels, predicates, an optional trailing anti join *or* union branches
    (never both), and (for set formers / foreach) the projection."""

    levels: tuple[Level, ...]
    preds: tuple[PredSpec, ...]
    sub: Optional[SubQuery]
    kind: str  # "setformer" | "exists" | "foreach"
    result: Optional[ResultSpec]
    alts: tuple[AltBranch, ...] = ()


@dataclass(frozen=True)
class ForallQuery:
    """``forall v. (member(v, R) ∧ guards) → (pres ∧ [not] exists u...)``.

    Slot 0 is the guard variable, slot 1 the body variable.  ``negated``
    marks a ``not exists`` body (violations are semi-join matches instead
    of anti-join misses)."""

    var: Var
    arity: int
    rel: str
    guard_preds: tuple[Cmp, ...]
    pre_preds: tuple[Cmp, ...]
    body_level: Optional[Level]
    body_preds: tuple[Cmp, ...]
    negated: bool


@dataclass(frozen=True)
class RelQuery:
    """A bare relation constant used as a set (aggregate/set-op child)."""

    rel: str
    arity: int


@dataclass(frozen=True)
class SetOpQuery:
    mode: str  # "union" | "intersect" | "diff"
    left: object
    right: object


@dataclass(frozen=True)
class AggQuery:
    op: str  # "sum" | "max" | "min" | "size"
    child: object


# ---------------------------------------------------------------------------
# eligibility helpers
# ---------------------------------------------------------------------------

_PRED_OPS = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge"}


def _check_symbols(node, interp) -> None:
    """Refuse nodes the executor has no exact replication for: situational
    layers, state-changing/defined/skolem/identifier symbols, and symbols
    shadowed by interpreter definitions."""
    for sub in node.iter_subnodes():
        layer = getattr(sub, "layer", None)
        if layer is Layer.SITUATIONAL:
            raise Incompilable("situational subterm")
        if isinstance(sub, App):
            kind = sub.symbol.kind
            if kind in (
                SymbolKind.STATE_CHANGING,
                SymbolKind.DEFINED,
                SymbolKind.SKOLEM,
                SymbolKind.IDENTIFIER,
            ):
                raise Incompilable(f"symbol kind {kind.name.lower()}")
            if interp is not None and interp.definitions is not None:
                if interp.definitions.lookup_definition(sub.symbol.name) is not None:
                    raise Incompilable(f"defined symbol {sub.symbol.name}")


def _compile_value(expr: Expr, slots: dict[Var, int]) -> ValueExpr:
    """An attribute/selection/constant/parameter as a row expression."""
    if isinstance(expr, AtomConst):
        return Lit(expr.value)
    if isinstance(expr, Var):
        if expr in slots:
            return Col(slots[expr], 0)
        if expr.sort.is_tuple or expr.sort.is_atom:
            return ParamRef(expr)
        raise Incompilable(f"parameter {expr.name} of sort {expr.sort}")
    if isinstance(expr, App):
        sym = expr.symbol
        base = _base_name(sym.name)
        if sym.kind is SymbolKind.ATTRIBUTE:
            inner = _compile_value(expr.args[0], slots)
            return _index_of(inner, sym.index, expr)
        if sym.kind is SymbolKind.TUPLE and base == "select":
            if not isinstance(expr.args[1], AtomConst) or not isinstance(
                expr.args[1].value, int
            ):
                raise Incompilable("select with non-constant index")
            inner = _compile_value(expr.args[0], slots)
            return _index_of(inner, expr.args[1].value, expr)
        if (
            sym.kind is SymbolKind.ARITHMETIC
            and base in ("+", "-", "*", "div", "mod")
            and len(expr.args) == 2
        ):
            # Binary natural arithmetic is pure (operands are values, the
            # executor replicates _arithmetic exactly, including truncated
            # subtraction and the div/mod-by-zero error contract).
            # Aggregates (sum/max/min/size over sets) stay out: they touch.
            return Arith(
                base,
                _compile_value(expr.args[0], slots),
                _compile_value(expr.args[1], slots),
            )
        raise Incompilable(f"function {sym.name} in condition")
    raise Incompilable(f"{type(expr).__name__} in condition")


def _index_of(inner: ValueExpr, index: int, expr: Expr) -> ValueExpr:
    if isinstance(inner, Col) and inner.index == 0:
        return Col(inner.slot, index)
    if isinstance(inner, ParamRef):
        # Attribute of a parameter tuple: modeled as a parameter selection.
        return ParamSel(inner.var, index)
    raise Incompilable(f"nested selection in {expr}")


@dataclass(frozen=True)
class ParamSel:
    """``index``-th attribute (1-based) of a parameter tuple."""

    var: Var
    index: int


def _compile_pred(f: Formula, slots: dict[Var, int]):
    """A pure value predicate (``Cmp`` or ``Disj``), or raise."""
    if isinstance(f, Eq):
        return Cmp("eq", _compile_value(f.lhs, slots), _compile_value(f.rhs, slots))
    if isinstance(f, Not) and isinstance(f.body, Eq):
        inner = f.body
        return Cmp(
            "ne", _compile_value(inner.lhs, slots), _compile_value(inner.rhs, slots)
        )
    if isinstance(f, Or):
        # Pure disjunction: each disjunct a conjunction of pure predicates.
        # Branch and conjunct order are preserved — truth evaluation (and
        # its error behavior) short-circuits like the tree walk's any/all.
        branches = tuple(
            tuple(_compile_pred(c, slots) for c in _conjuncts(d))
            for d in f.disjuncts
        )
        return Disj(branches)
    if isinstance(f, Pred):
        base = _base_name(f.symbol.name)
        if base in _PRED_OPS:
            return Cmp(
                _PRED_OPS[base],
                _compile_value(f.args[0], slots),
                _compile_value(f.args[1], slots),
            )
        raise Incompilable(f"predicate {f.symbol.name}")
    raise Incompilable(f"{type(f).__name__} conjunct")


def _is_member(f: Formula) -> bool:
    return isinstance(f, Pred) and _base_name(f.symbol.name) == "member"


def _domain_of(var: Var, conjuncts: list[Formula]) -> RelConst:
    """The variable's single RelConst membership conjunct."""
    if not (var.sort.is_tuple):
        raise Incompilable(f"bound variable {var.name} is not tuple-sorted")
    memberships = [
        c for c in conjuncts if _is_member(c) and c.args[0] == var
    ]
    if len(memberships) != 1:
        raise Incompilable(
            f"{var.name}: expected exactly one membership, got {len(memberships)}"
        )
    collection = memberships[0].args[1]
    if not isinstance(collection, RelConst):
        raise Incompilable(f"{var.name}: domain is not a relation constant")
    if collection.arity != var.sort.arity:
        raise Incompilable(f"{var.name}: domain arity mismatch")
    # The tree walk narrows from the *first* membership conjunct; with
    # exactly one over a RelConst, narrowing and this compilation agree.
    first_member = next(c for c in conjuncts if _is_member(c) and c.args[0] == var)
    if first_member is not memberships[0]:  # pragma: no cover - defensive
        raise Incompilable(f"{var.name}: ambiguous membership order")
    return collection


# ---------------------------------------------------------------------------
# chain compilation (set formers and exists chains)
# ---------------------------------------------------------------------------


def _is_quantified(c: Formula) -> bool:
    return isinstance(c, Exists) or (isinstance(c, Not) and isinstance(c.body, Exists))


def _or_needs_union(f: Or) -> bool:
    """Does any disjunct carry a quantified conjunct (so the ``or`` cannot
    compile to a pure :class:`Disj` predicate)?"""
    return any(
        _is_quantified(c) for d in f.disjuncts for c in _conjuncts(d)
    )


def _compile_inner_level(ex: Exists, slots: dict[Var, int], slot: int, context: str):
    """One single-level inner ``exists`` (anti-join sub or union branch):
    its membership level plus pure predicates over the enclosing slots."""
    inner_conjuncts = _conjuncts(ex.body)
    inner_var = ex.var
    if inner_var in slots:
        raise Incompilable(f"rebinding of {inner_var.name}")
    domain = _domain_of(inner_var, inner_conjuncts)
    sub_slots = dict(slots)
    sub_slots[inner_var] = slot
    sub_preds: list = []
    for c in inner_conjuncts:
        if _is_member(c) and c.args[0] == inner_var:
            continue
        if isinstance(c, (Exists, Forall)) or isinstance(c, Not) and not isinstance(
            c.body, Eq
        ):
            raise Incompilable(f"nested quantifier inside {context}")
        sub_preds.append(_compile_pred(c, sub_slots))
    level = Level(inner_var, slot, domain.name, domain.arity, group_end=slot)
    return level, tuple(sub_preds)


def _compile_alts(
    f: Or, slots: dict[Var, int], slot: int
) -> tuple[AltBranch, ...]:
    """The trailing ``or``'s disjuncts as ordered union branches.  Each
    branch: pure predicates plus at most one trailing single-level
    ``[not] exists``.  A membership conjunct inside a disjunct is refused
    (the tree walk would fall back to full arity-class enumeration when the
    membership is swallowed by the ``or`` — a different touch regime)."""
    branches: list[AltBranch] = []
    for d in f.disjuncts:
        dconj = _conjuncts(d)
        pures: list = []
        inner: Optional[Formula] = None
        for pos, c in enumerate(dconj):
            if _is_quantified(c):
                if pos != len(dconj) - 1:
                    raise Incompilable("quantified conjunct is not last")
                inner = c
                continue
            pures.append(_compile_pred(c, slots))
        if inner is None:
            branches.append(AltBranch(tuple(pures), None, (), False))
            continue
        negated = isinstance(inner, Not)
        ex = inner.body if negated else inner
        level, inner_preds = _compile_inner_level(ex, slots, slot, "union branch")
        branches.append(AltBranch(tuple(pures), level, inner_preds, negated))
    return tuple(branches)


def _compile_chain(
    group_vars: tuple[Var, ...],
    cond: Formula,
    slots: dict[Var, int],
    levels: list[Level],
    preds: list[PredSpec],
):
    """Compile one quantifier scope: bind ``group_vars`` as one group from
    ``cond``'s membership conjuncts, collect its value predicates, then
    process the trailing quantified conjuncts — each positive ``exists``
    flattens into its own group, the final one may be a ``not exists``
    (anti join) — or a final ``or`` with quantified disjuncts (union
    branches).  Returns ``(sub, alts)``; at most one is set."""
    conjuncts = _conjuncts(cond)
    for var in group_vars:
        if var in slots:
            raise Incompilable(f"rebinding of {var.name}")
    group_start = len(levels)
    for var in group_vars:
        domain = _domain_of(var, conjuncts)
        slot = len(levels)
        slots[var] = slot
        levels.append(Level(var, slot, domain.name, domain.arity, group_end=0))
    group_end = len(levels) - 1
    for i in range(group_start, len(levels)):
        levels[i] = Level(
            levels[i].var, levels[i].slot, levels[i].rel, levels[i].arity, group_end
        )

    trailing: list[Formula] = []
    plain: list[Formula] = []
    alt_src: Optional[Or] = None
    for pos, c in enumerate(conjuncts):
        if _is_member(c) and isinstance(c.args[0], Var) and c.args[0] in slots:
            owner_slot = slots[c.args[0]]
            if group_start <= owner_slot <= group_end:
                continue  # this group's domain conjunct
            raise Incompilable("membership over an outer variable")
        if _is_quantified(c):
            trailing.append(c)
            continue
        if isinstance(c, Or) and _or_needs_union(c):
            # A quantified disjunction only compiles as the final conjunct
            # of its scope: branch gating is computed from the rows of the
            # whole positive join, i.e. candidates that reached the ``or``.
            if trailing:
                raise Incompilable("union disjunction after a quantified conjunct")
            if pos != len(conjuncts) - 1:
                raise Incompilable("union disjunction is not the last conjunct")
            alt_src = c
            continue
        if trailing:
            raise Incompilable("quantified conjunct is not last")
        plain.append(c)
    for c in plain:
        preds.append(PredSpec(_compile_pred(c, slots), eff_level=group_end))

    if alt_src is not None:
        return None, _compile_alts(alt_src, slots, len(levels))

    sub: Optional[SubQuery] = None
    alts: tuple[AltBranch, ...] = ()
    for pos, t in enumerate(trailing):
        last = pos == len(trailing) - 1
        if isinstance(t, Exists):
            # Positive nesting flattens: ∃x(φ ∧ ∃y ψ) ≡ ∃x∃y(φ ∧ ψ).
            sub, alts = _compile_chain((t.var,), t.body, slots, levels, preds)
            if (sub is not None or alts) and not last:
                raise Incompilable("quantified conjunct is not last")
            continue
        # Trailing not-exists: one inner level, pure predicates only.  Only
        # the final quantified conjunct may be negated — a later sibling
        # would be gated on the anti join's outcome, which the anti-filter
        # machinery does not replicate.
        if not last:
            raise Incompilable("not-exists precedes another quantified conjunct")
        level, sub_preds = _compile_inner_level(
            t.body, slots, len(levels), "not-exists"
        )
        sub = SubQuery(level, sub_preds)
    return sub, alts


def compile_set_former(former: SetFormer, interp=None) -> ChainQuery:
    _check_symbols(former, interp)
    slots: dict[Var, int] = {}
    levels: list[Level] = []
    preds: list[PredSpec] = []
    sub, alts = _compile_chain(tuple(former.bound), former.cond, slots, levels, preds)
    result = _compile_result(former, slots)
    return ChainQuery(tuple(levels), tuple(preds), sub, "setformer", result, alts)


def compile_exists(formula: Exists, interp=None) -> ChainQuery:
    _check_symbols(formula, interp)
    slots: dict[Var, int] = {}
    levels: list[Level] = []
    preds: list[PredSpec] = []
    sub, alts = _compile_chain((formula.var,), formula.body, slots, levels, preds)
    return ChainQuery(tuple(levels), tuple(preds), sub, "exists", None, alts)


def compile_foreach_domain(fluent: Foreach, interp=None) -> ChainQuery:
    """The satisfier list of a ``foreach``: the bound variable's narrowed
    domain filtered by the condition — a chain whose result is the whole
    slot-0 representative, returned as a *list* in canonical enumeration
    order (the order the tree walk folds the body in)."""
    _check_symbols(fluent.cond, interp)
    slots: dict[Var, int] = {}
    levels: list[Level] = []
    preds: list[PredSpec] = []
    sub, alts = _compile_chain((fluent.var,), fluent.cond, slots, levels, preds)
    result = ResultSpec((Col(0, 0),), whole=True, element_arity=fluent.var.sort.arity)
    return ChainQuery(tuple(levels), tuple(preds), sub, "foreach", result, alts)


def _compile_result(former: SetFormer, slots: dict[Var, int]) -> ResultSpec:
    expr = former.result
    arity = former.element_arity
    if isinstance(expr, Var) and expr in slots:
        return ResultSpec((Col(slots[expr], 0),), whole=True, element_arity=arity)
    if isinstance(expr, App) and _base_name(expr.symbol.name) == "tuple":
        parts = tuple(_compile_value(a, slots) for a in expr.args)
        return ResultSpec(parts, whole=False, element_arity=arity)
    value = _compile_value(expr, slots)
    return ResultSpec((value,), whole=False, element_arity=arity)


# ---------------------------------------------------------------------------
# forall compilation
# ---------------------------------------------------------------------------


def compile_forall(formula: Forall, interp=None) -> ForallQuery:
    _check_symbols(formula, interp)
    var = formula.var
    if not var.sort.is_tuple:
        raise Incompilable("forall over a non-tuple sort")
    body = formula.body
    if not isinstance(body, Implies):
        raise Incompilable("forall body is not guarded (no implication)")
    ante = _conjuncts(body.antecedent)
    domain = _domain_of(var, ante)
    # The membership must lead the antecedent: the tree walk short-circuits
    # the guard conjunction per candidate, so a leading value predicate
    # could make it skip the ``member`` evaluation (and its relation touch)
    # entirely — a shape we cannot gate exactly.
    if not (_is_member(ante[0]) and ante[0].args[0] == var):
        raise Incompilable("forall guard membership is not the first conjunct")
    slots = {var: 0}
    guard_preds: list[Cmp] = []
    for c in ante:
        if _is_member(c) and c.args[0] == var:
            continue
        guard_preds.append(_compile_pred(c, slots))

    pre_preds: list[Cmp] = []
    body_level: Optional[Level] = None
    body_preds: list[Cmp] = []
    negated = False
    consequent = _conjuncts(body.consequent)
    for pos, c in enumerate(consequent):
        if isinstance(c, Exists) or (isinstance(c, Not) and isinstance(c.body, Exists)):
            if pos != len(consequent) - 1:
                raise Incompilable("quantified consequent conjunct is not last")
            negated = isinstance(c, Not)
            inner = c.body if negated else c
            inner_conjuncts = _conjuncts(inner.body)
            inner_var = inner.var
            if inner_var == var:
                raise Incompilable(f"rebinding of {inner_var.name}")
            inner_domain = _domain_of(inner_var, inner_conjuncts)
            inner_slots = {var: 0, inner_var: 1}
            for ic in inner_conjuncts:
                if _is_member(ic) and ic.args[0] == inner_var:
                    continue
                if isinstance(ic, (Exists, Forall)):
                    raise Incompilable("forall body exists nests deeper")
                body_preds.append(_compile_pred(ic, inner_slots))
            body_level = Level(
                inner_var, 1, inner_domain.name, inner_domain.arity, group_end=1
            )
        else:
            pre_preds.append(_compile_pred(c, slots))
    return ForallQuery(
        var,
        var.sort.arity,
        domain.name,
        tuple(guard_preds),
        tuple(pre_preds),
        body_level,
        tuple(body_preds),
        negated,
    )


# ---------------------------------------------------------------------------
# set expressions (aggregate / set-op children)
# ---------------------------------------------------------------------------


def compile_set_expr(expr: Expr, interp=None):
    if isinstance(expr, RelConst):
        return RelQuery(expr.name, expr.arity)
    if isinstance(expr, SetFormer):
        return compile_set_former(expr, interp)
    if isinstance(expr, App) and expr.symbol.kind is SymbolKind.SET:
        base = _base_name(expr.symbol.name)
        if base in ("union", "intersect", "diff"):
            left = compile_set_expr(expr.args[0], interp)
            right = compile_set_expr(expr.args[1], interp)
            return SetOpQuery(base, left, right)
    raise Incompilable(f"{type(expr).__name__} is not a compilable set expression")
