"""Plan execution with the tree walk's exact observable seams.

The executor computes *what* the tree walk computes (same value, same
canonical enumeration order, same representative identity, same error
contract) while reading relations *differently* (hash joins and cached
indexes instead of nested enumeration).  Its obligations, in order of
importance:

1. **Result equality** — bit-for-bit, including :class:`TupleSet`
   representative order, which downstream ``==`` (cache verification,
   oracle cross-checks) observes.
2. **Read-set replication** — every relation name the tree walk would
   report through ``_touch`` is reported, under the same gating: a level's
   domain is touched only when the tree walk would have reached its
   narrowing (DESIGN.md §7.6 states the invariant and its one sound
   superset corner, parameter dereferences under reordered joins).
3. **Budget metering** — evaluation charges the attached
   :class:`~repro.transactions.budget.Budget` through the same ``_touch``
   seam plus per-candidate ticks, so runaway queries still abort; tick
   *counts* are comparable, not identical (that difference is the speedup).

Touches are emitted *after* the physical join (they are set-valued and
order-free): a nonempty result proves every source-order prefix nonempty,
so all gates are open; an empty result triggers a source-order gate pass
that stops at the first empty prefix, exactly where the tree walk stops.
"""

from __future__ import annotations

from typing import Optional

from repro.db.values import DBTuple, TupleSet
from repro.errors import EvaluationError
from repro.transactions.interpreter import (
    _dedupe_tuples,
    _tuple_order_key,
    value_eq,
)

from repro.algebra.compiler import (
    AggQuery,
    ChainQuery,
    Cmp,
    ForallQuery,
    ParamSel,
    RelQuery,
    SetOpQuery,
)
from repro.algebra.ir import Arith, Col, Disj, Lit, ParamRef


class Unplannable(Exception):
    """Run-time fallback signal: the current state does not match the plan
    (relation missing or arity drifted).  The planner catches it and hands
    the evaluation back to the tree walk, whose own error/touch behavior is
    the contract for these states."""


class Ctx:
    """Per-evaluation context: interpreter seams plus the lazy parameter
    cache (dereferencing a tuple parameter touches its owning relation, so
    resolution waits until a row actually needs the value)."""

    __slots__ = ("interp", "state", "env", "_params")

    def __init__(self, interp, state, env) -> None:
        self.interp = interp
        self.state = state
        self.env = env
        self._params: dict = {}

    def param(self, var):
        try:
            return self._params[var]
        except KeyError:
            raw = self.env.lookup(var)
            value = self.interp._deref(self.state, raw)
            self._params[var] = value
            return value


# ---------------------------------------------------------------------------
# value / predicate evaluation (replicating _obj on the compiled fragment)
# ---------------------------------------------------------------------------


def _value(ctx: Ctx, row, expr):
    if isinstance(expr, Col):
        t = row[expr.slot]
        return t if expr.index == 0 else t.select(expr.index)
    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, ParamRef):
        return ctx.param(expr.var)
    if isinstance(expr, ParamSel):
        value = ctx.param(expr.var)
        if isinstance(value, DBTuple):
            return value.select(expr.index)
        if isinstance(value, (int, str)) and not isinstance(value, bool):
            return DBTuple(None, (value,)).select(expr.index)
        raise EvaluationError(f"expected a tuple, got {value!r}")
    if isinstance(expr, Arith):
        # Replicates Interpreter._arithmetic on the binary fragment,
        # including truncated natural subtraction and the zero-divisor
        # error contract.
        a = _as_int(_value(ctx, row, expr.lhs))
        c = _as_int(_value(ctx, row, expr.rhs))
        if expr.op == "+":
            return a + c
        if expr.op == "-":
            return max(0, a - c)
        if expr.op == "*":
            return a * c
        if expr.op == "div":
            if c == 0:
                raise EvaluationError("division by zero")
            return a // c
        if expr.op == "mod":
            if c == 0:
                raise EvaluationError("modulo by zero")
            return a % c
        raise EvaluationError(f"unknown arithmetic function {expr.op}")
    raise EvaluationError(f"unknown plan expression {expr!r}")


def _as_int(value) -> int:
    if isinstance(value, DBTuple):
        if value.arity == 1:
            value = value.values[0]
        else:
            raise EvaluationError(f"expected an atom, got {value!r}")
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise EvaluationError(f"expected an atom, got {value!r}")
    if not isinstance(value, int):
        raise EvaluationError(f"expected a number, got {value!r}")
    return value


def _holds(ctx: Ctx, row, p) -> bool:
    if isinstance(p, Disj):
        # Ordered short-circuit in both directions, like the tree walk's
        # any-over-all on the original Or/And.
        return any(
            all(_holds(ctx, row, c) for c in branch) for branch in p.branches
        )
    a = _value(ctx, row, p.lhs)
    b = _value(ctx, row, p.rhs)
    if p.op == "eq":
        return value_eq(a, b)
    if p.op == "ne":
        return not value_eq(a, b)
    x = _as_int(a)
    y = _as_int(b)
    if p.op == "lt":
        return x < y
    if p.op == "le":
        return x <= y
    if p.op == "gt":
        return x > y
    return x >= y


def _key_of(value):
    """A hashable join key consistent with ``value_eq``."""
    if isinstance(value, DBTuple):
        return ("t", value.values)
    return value


def _expr_slots(e) -> set[int]:
    if isinstance(e, Col):
        return {e.slot}
    if isinstance(e, Arith):
        return _expr_slots(e.lhs) | _expr_slots(e.rhs)
    return set()


def _pred_slots(p) -> set[int]:
    if isinstance(p, Disj):
        slots: set[int] = set()
        for branch in p.branches:
            for c in branch:
                slots |= _pred_slots(c)
        return slots
    return _expr_slots(p.lhs) | _expr_slots(p.rhs)


def _expr_params(e):
    if isinstance(e, (ParamRef, ParamSel)):
        yield e.var
    elif isinstance(e, Arith):
        yield from _expr_params(e.lhs)
        yield from _expr_params(e.rhs)


def _pred_params(p):
    if isinstance(p, Disj):
        for branch in p.branches:
            for c in branch:
                yield from _pred_params(c)
        return
    yield from _expr_params(p.lhs)
    yield from _expr_params(p.rhs)


# ---------------------------------------------------------------------------
# scans
# ---------------------------------------------------------------------------


def _check_binding(state, rel: str, arity: int):
    relation = state.relations.get(rel)
    if relation is None or relation.arity != arity:
        raise Unplannable(rel)
    return relation


def _scan_rows(planner, ctx: Ctx, relation, local_preds, slot: int, nslots: int):
    """Filtered representatives of one level, each as a row (a list with
    only ``slot`` filled).  Uses a cached hash index for single-column
    equality against a constant or parameter."""
    reps = planner.reps_of(relation)
    if not reps:
        return []
    preds = list(local_preds)
    candidates = None
    for p in preds:
        if not isinstance(p, Cmp) or p.op != "eq":
            continue
        col, other = None, None
        if isinstance(p.lhs, Col) and p.lhs.slot == slot and p.lhs.index > 0:
            col, other = p.lhs, p.rhs
        elif isinstance(p.rhs, Col) and p.rhs.slot == slot and p.rhs.index > 0:
            col, other = p.rhs, p.lhs
        if col is None or isinstance(other, Col):
            continue
        key = _key_of(_value(ctx, (), other))
        candidates = planner.index_of(relation, col.index).get(key, ())
        preds.remove(p)
        break
    pool = candidates if candidates is not None else reps
    rows = []
    for t in pool:
        row = [None] * nslots
        row[slot] = t
        if all(_holds(ctx, row, p) for p in preds):
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# chain execution (set formers / exists chains)
# ---------------------------------------------------------------------------


def _classify_preds(levels, preds):
    """Split predicates by the set of slots they mention: local to one
    level, or joining several."""
    local: dict[int, list[Cmp]] = {lv.slot: [] for lv in levels}
    multi: list[Cmp] = []
    for spec in preds:
        p = spec.pred
        slots = _pred_slots(p)
        if len(slots) == 1:
            local[next(iter(slots))].append(p)
        elif not slots:
            # Slot-free predicate: filters everything or nothing; applied
            # with the first placed level.
            local[levels[0].slot].append(p)
        else:
            multi.append(p)
    return local, multi


def _join_levels(planner, ctx, levels, local, multi, order, dedupe_for_exists):
    """Left-deep hash-join pipeline over ``levels`` in ``order``.  Returns
    the surviving rows (each a list indexed by slot)."""
    nslots = max(lv.slot for lv in levels) + 1
    by_slot = {lv.slot: lv for lv in levels}
    remaining = list(multi)
    budget = ctx.interp.budget
    rows = None
    placed: set[int] = set()
    for slot in order:
        lv = by_slot[slot]
        relation = ctx.state.relations[lv.rel]
        if rows is None:
            rows = _scan_rows(planner, ctx, relation, local[slot], slot, nslots)
            placed.add(slot)
        else:
            if not rows:
                placed.add(slot)
                continue
            # Join predicates usable as equi keys: eq between a placed-side
            # expression and a column of the incoming level.
            keys = []
            keyed_ids = set()
            usable = []
            for p in remaining:
                slots = _pred_slots(p)
                if not slots <= placed | {slot}:
                    continue
                usable.append(p)
                if not isinstance(p, Cmp) or p.op != "eq" or slot not in slots:
                    continue
                if isinstance(p.lhs, Col) and p.lhs.slot == slot:
                    mine, other = p.lhs, p.rhs
                elif isinstance(p.rhs, Col) and p.rhs.slot == slot:
                    mine, other = p.rhs, p.lhs
                else:
                    continue
                if isinstance(other, Col) and other.slot == slot:
                    continue
                keys.append((other, mine))
                keyed_ids.add(id(p))
            residual = [p for p in usable if id(p) not in keyed_ids]
            new_rows = _scan_rows(
                planner, ctx, relation, local[slot], slot, nslots
            )
            if keys:
                table: dict = {}
                for nrow in new_rows:
                    k = tuple(_key_of(_value(ctx, nrow, mine)) for _, mine in keys)
                    table.setdefault(k, []).append(nrow[slot])
                joined = []
                for row in rows:
                    k = tuple(
                        _key_of(_value(ctx, row, other)) for other, _ in keys
                    )
                    for t in table.get(k, ()):
                        if budget is not None:
                            budget.tick()
                        merged = list(row)
                        merged[slot] = t
                        if all(_holds(ctx, merged, p) for p in residual):
                            joined.append(merged)
                rows = joined
            else:
                joined = []
                for row in rows:
                    for nrow in new_rows:
                        if budget is not None:
                            budget.tick()
                        merged = list(row)
                        merged[slot] = nrow[slot]
                        if all(_holds(ctx, merged, p) for p in residual):
                            joined.append(merged)
                rows = joined
            placed.add(slot)
            for p in usable:
                remaining.remove(p)
        if dedupe_for_exists and rows:
            needed = set()
            for p in remaining:
                needed |= _pred_slots(p)
            needed &= placed
            if len(needed) < len(placed):
                seen_keys = set()
                kept = []
                for row in rows:
                    k = tuple(
                        row[s].values if row[s] is not None else None
                        for s in sorted(needed)
                    )
                    if k not in seen_keys:
                        seen_keys.add(k)
                        kept.append(row)
                rows = kept
    # Any predicates left mention no joinable combination (defensive).
    if rows and remaining:
        rows = [r for r in rows if all(_holds(ctx, r, p) for p in remaining)]
    return rows if rows is not None else []


def _anti_filter(planner, ctx, rows, sub, nslots):
    """Drop rows with a match in the trailing not-exists level."""
    if not rows:
        return rows
    relation = ctx.state.relations[sub.level.rel]
    slot = sub.level.slot
    local = []
    linking = []
    for p in sub.preds:
        slots = _pred_slots(p)
        if slots <= {slot}:
            local.append(p)
        else:
            linking.append(p)
    sub_rows = _scan_rows(
        planner, ctx, relation, local, slot, nslots + 1
    )
    keys = []
    for p in linking:
        if not isinstance(p, Cmp) or p.op != "eq":
            continue
        if isinstance(p.lhs, Col) and p.lhs.slot == slot and not (
            isinstance(p.rhs, Col) and p.rhs.slot == slot
        ):
            keys.append((p.rhs, p.lhs, p))
        elif isinstance(p.rhs, Col) and p.rhs.slot == slot and not (
            isinstance(p.lhs, Col) and p.lhs.slot == slot
        ):
            keys.append((p.lhs, p.rhs, p))
    keyed = {id(p) for _, _, p in keys}
    residual = [p for p in linking if id(p) not in keyed]
    table: dict = {}
    for srow in sub_rows:
        k = tuple(_key_of(_value(ctx, srow, mine)) for _, mine, _ in keys)
        table.setdefault(k, []).append(srow[slot])
    kept = []
    budget = ctx.interp.budget
    for row in rows:
        k = tuple(_key_of(_value(ctx, row, other)) for other, _, _ in keys)
        matched = False
        for t in table.get(k, ()):
            if budget is not None:
                budget.tick()
            merged = list(row)
            if len(merged) <= slot:
                merged.extend([None] * (slot + 1 - len(merged)))
            merged[slot] = t
            if all(_holds(ctx, merged, p) for p in residual):
                matched = True
                break
        if not matched:
            kept.append(row)
    return kept


def _match_fn(planner, ctx, relation, preds, slot: int):
    """A per-row matcher over one inner level: does any representative of
    ``relation`` satisfy ``preds`` together with the row?  The hash-table
    shape mirrors :func:`_anti_filter`."""
    local = []
    linking = []
    for p in preds:
        if _pred_slots(p) <= {slot}:
            local.append(p)
        else:
            linking.append(p)
    sub_rows = _scan_rows(planner, ctx, relation, local, slot, slot + 1)
    keys = []
    for p in linking:
        if not isinstance(p, Cmp) or p.op != "eq":
            continue
        if isinstance(p.lhs, Col) and p.lhs.slot == slot and not (
            isinstance(p.rhs, Col) and p.rhs.slot == slot
        ):
            keys.append((p.rhs, p.lhs, p))
        elif isinstance(p.rhs, Col) and p.rhs.slot == slot and not (
            isinstance(p.lhs, Col) and p.lhs.slot == slot
        ):
            keys.append((p.lhs, p.rhs, p))
    keyed = {id(p) for _, _, p in keys}
    residual = [p for p in linking if id(p) not in keyed]
    table: dict = {}
    for srow in sub_rows:
        k = tuple(_key_of(_value(ctx, srow, mine)) for _, mine, _ in keys)
        table.setdefault(k, []).append(srow[slot])
    budget = ctx.interp.budget

    def match(row) -> bool:
        k = tuple(_key_of(_value(ctx, row, other)) for other, _, _ in keys)
        for t in table.get(k, ()):
            if budget is not None:
                budget.tick()
            merged = list(row)
            if len(merged) <= slot:
                merged.extend([None] * (slot + 1 - len(merged)))
            merged[slot] = t
            if all(_holds(ctx, merged, p) for p in residual):
                return True
        return False

    return match


def _alt_filter(planner, ctx, rows, alts):
    """Filter rows by the trailing ``or``: keep rows where some branch
    holds.  Touch gating follows the tree walk's ``any`` short-circuit in
    branch order: every row still unanswered evaluates the branch's pure
    predicates (so their parameters resolve), and the branch's inner
    relation narrows only when some such row passes them."""
    interp, state = ctx.interp, ctx.state
    budget = interp.budget
    remaining = list(rows)
    keep: set[int] = set()
    for branch in alts:
        if not remaining:
            break
        _force_params(ctx, branch.preds)
        passing_ids = {
            id(r)
            for r in remaining
            if all(_holds(ctx, r, p) for p in branch.preds)
        }
        match = None
        if branch.level is not None and passing_ids:
            relation = interp._relation(
                state, branch.level.rel, branch.level.arity
            )
            reps = planner.reps_of(relation)
            if len(reps) > interp.max_enumeration:
                raise EvaluationError(
                    f"enumeration of {branch.level.var.name} exceeds "
                    f"max_enumeration"
                )
            if budget is not None:
                for _ in reps:
                    budget.tick()
            if reps:
                _force_params(ctx, branch.inner_preds)
            match = _match_fn(
                planner, ctx, relation, branch.inner_preds, branch.level.slot
            )
        next_remaining = []
        for r in remaining:
            ok = id(r) in passing_ids
            if ok and branch.level is not None:
                m = match(r) if match is not None else False
                ok = (not m) if branch.negated else m
            if ok:
                keep.add(id(r))
            else:
                next_remaining.append(r)
        remaining = next_remaining
    return [r for r in rows if id(r) in keep]


def _emit_chain_touches(planner, ctx, q: ChainQuery, nonempty_positive: bool):
    """Source-order touch/gate pass.  Returns True when the trailing
    not-exists level is reached (its domain narrows).

    Two gate regimes, matching the tree walk (DESIGN.md §7.6): within a
    group, level ``ℓ`` narrows iff every earlier domain in the group is
    nonempty (predicates are only checked at the leaf); a later group
    narrows iff the filtered join of all earlier groups is nonempty.  A
    nonempty final join proves every gate open; otherwise the source-order
    prefix join is recomputed with early exit.  When a group's leaf is
    reached, its predicates ran there — so their parameters are resolved
    (dereferencing touches the owning relation) exactly then.
    """
    interp, state = ctx.interp, ctx.state
    budget = interp.budget
    levels = q.levels
    n = len(levels)
    i = 0
    while i < n:
        group_end = levels[i].group_end
        if i > 0 and not nonempty_positive:
            if not _prefix_alive(planner, ctx, q, levels[i].slot):
                return False
        group_nonempty = True
        j = i
        while j < n and levels[j].slot <= group_end:
            lv = levels[j]
            relation = interp._relation(state, lv.rel, lv.arity)
            reps = planner.reps_of(relation)
            if len(reps) > interp.max_enumeration:
                raise EvaluationError(
                    f"enumeration of {lv.var.name} exceeds max_enumeration"
                )
            if budget is not None:
                for _ in reps:
                    budget.tick()
            j += 1
            if not reps:
                # Deeper levels of this group never narrow; the group's
                # leaf has no candidates, so its predicates never ran.
                group_nonempty = False
                break
        if not group_nonempty:
            return False
        _force_params(
            ctx, [s.pred for s in q.preds if s.eff_level == group_end]
        )
        i = j
    if nonempty_positive:
        reached_sub = True
    else:
        reached_sub = _prefix_alive(planner, ctx, q, None)
    if reached_sub and q.sub is not None:
        sub = q.sub
        relation = interp._relation(state, sub.level.rel, sub.level.arity)
        reps = planner.reps_of(relation)
        if len(reps) > interp.max_enumeration:
            raise EvaluationError(
                f"enumeration of {sub.level.var.name} exceeds max_enumeration"
            )
        if reps:
            _force_params(ctx, sub.preds)
    return reached_sub


def _force_params(ctx: Ctx, preds) -> None:
    """Resolve the parameters of gated-open predicates: the tree walk
    dereferences them at the leaf its candidates reach, so an open gate
    means the dereference (and its owner touch) happened."""
    for p in preds:
        for var in _pred_params(p):
            ctx.param(var)


def _prefix_alive(planner, ctx, q: ChainQuery, upto_slot: Optional[int]) -> bool:
    """Is the source-order filtered join of all levels before ``upto_slot``
    (all levels when ``None``) nonempty?  Only consulted when the full
    positive join came out empty, so this re-join stops early."""
    levels = [
        lv for lv in q.levels if upto_slot is None or lv.slot < upto_slot
    ]
    if not levels:
        return True
    boundary = levels[-1].group_end
    preds = [s for s in q.preds if s.eff_level <= boundary]
    local, multi = _classify_preds(levels, preds)
    rows = _join_levels(
        planner,
        ctx,
        levels,
        local,
        multi,
        [lv.slot for lv in levels],
        dedupe_for_exists=True,
    )
    return bool(rows)


def _chain_rows(planner, interp, state, env, q: ChainQuery):
    """Shared front half of chain evaluation: binding checks, positive
    join, touch emission, union-branch filter, anti filter.  Returns the
    evaluation context and the surviving rows."""
    for lv in q.levels:
        _check_binding(state, lv.rel, lv.arity)
    if q.sub is not None:
        _check_binding(state, q.sub.level.rel, q.sub.level.arity)
    for branch in q.alts:
        if branch.level is not None:
            _check_binding(state, branch.level.rel, branch.level.arity)
    ctx = Ctx(interp, state, env)
    nslots = len(q.levels)
    order = planner.order_levels(state, q)
    local, multi = _classify_preds(q.levels, q.preds)
    rows = _join_levels(
        planner,
        ctx,
        q.levels,
        local,
        multi,
        order,
        dedupe_for_exists=(q.kind == "exists" and q.sub is None and not q.alts),
    )
    nonempty_positive = bool(rows)
    _emit_chain_touches(planner, ctx, q, nonempty_positive)
    if q.alts and rows:
        rows = _alt_filter(planner, ctx, rows, q.alts)
    if q.sub is not None and rows:
        rows = _anti_filter(planner, ctx, rows, q.sub, nslots)
    return ctx, rows


def run_foreach_domain(planner, interp, state, env, q: ChainQuery) -> list:
    """The ``foreach`` satisfier list: value-distinct slot-0
    representatives with at least one surviving row, in the tree walk's
    canonical enumeration order."""
    ctx, rows = _chain_rows(planner, interp, state, env, q)
    relation = state.relations[q.levels[0].rel]
    survivors = {_key_of(row[0]) for row in rows}
    return [t for t in planner.reps_of(relation) if _key_of(t) in survivors]


def run_chain(planner, interp, state, env, q: ChainQuery):
    ctx, rows = _chain_rows(planner, interp, state, env, q)
    if q.kind == "exists":
        return bool(rows)
    # Set former: canonical enumeration order, then project.
    slots = [lv.slot for lv in q.levels]
    rows.sort(key=lambda r: tuple(_tuple_order_key(r[s]) for s in slots))
    budget = interp.budget
    collected: list[DBTuple] = []
    result = q.result
    for row in rows:
        if result.whole:
            element = row[result.exprs[0].slot]
        elif len(result.exprs) == 1 and not _is_mktuple(result):
            value = _value(ctx, row, result.exprs[0])
            if isinstance(value, DBTuple):
                element = value
            elif isinstance(value, (int, str)) and not isinstance(value, bool):
                element = DBTuple(None, (value,))
            else:
                raise EvaluationError(
                    f"set former result must be a tuple or atom, got {value!r}"
                )
        else:
            values = tuple(_atom_of(_value(ctx, row, e)) for e in result.exprs)
            element = DBTuple(None, values)
        collected.append(element)
        if budget is not None:
            budget.count_derived(1)
    return TupleSet.of(result.element_arity, collected)


def _is_mktuple(result) -> bool:
    # A multi-part projection is always a tuple constructor; a single Col
    # part is only a constructor when the compiler said so via whole=False
    # with element arity drawn from the constructor — we encode
    # constructors simply as len(exprs) != 1.
    return len(result.exprs) != 1


def _atom_of(value):
    """Replicates ``_atom_value``: atoms pass, 1-tuples coerce."""
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        if isinstance(value, DBTuple) and value.arity == 1:
            return value.values[0]
        raise EvaluationError(f"expected an atom, got {value!r}")
    return value


# ---------------------------------------------------------------------------
# forall execution
# ---------------------------------------------------------------------------


def run_forall(planner, interp, state, env, q: ForallQuery) -> bool:
    _check_binding(state, q.rel, q.arity)
    if q.body_level is not None:
        _check_binding(state, q.body_level.rel, q.body_level.arity)
    ctx = Ctx(interp, state, env)
    budget = interp.budget

    # The unguarded forall domain: every tuple of the variable's arity.
    arity_names = [
        n
        for n in state.relation_names()
        if state.relations[n].arity == q.arity
    ]
    interp._touch(state, *arity_names)
    domain_count = sum(len(state.relations[n]) for n in arity_names)
    if domain_count > interp.max_enumeration:
        raise EvaluationError(
            f"enumeration of {q.var.name} exceeds max_enumeration"
        )
    if domain_count == 0:
        return True
    if budget is not None:
        for _ in range(domain_count):
            budget.tick()

    # Every processed candidate evaluates member(v, R): R is touched as
    # soon as the domain is nonempty.
    guard_rel = interp._relation(state, q.rel, q.arity)
    reps = planner.reps_of(guard_rel)
    # Guard-predicate parameters: the tree walk evaluates the guards at
    # every candidate passing the leading membership, so their gate is
    # R-nonempty — resolved (touching the owner) even when every guard
    # fails.  Pre-predicate parameters gate on guard survivors instead.
    if reps:
        _force_params(ctx, q.guard_preds)
    guard_rows = [
        t
        for t in reps
        if all(_holds(ctx, (t,), p) for p in q.guard_preds)
    ]
    if not guard_rows:
        return True

    pre_ok = []
    viol_values: set = set()
    for t in guard_rows:
        if all(_holds(ctx, (t,), p) for p in q.pre_preds):
            pre_ok.append(t)
        else:
            viol_values.add(t.values)
    _force_params(ctx, q.pre_preds)

    body_negated = q.negated
    matched_values: set = set()
    if q.body_level is not None and pre_ok:
        srel = state.relations[q.body_level.rel]
        slot = q.body_level.slot
        local = []
        linking = []
        for p in q.body_preds:
            slots = _pred_slots(p)
            if slots <= {slot}:
                local.append(p)
            else:
                linking.append(p)
        sub_rows = _scan_rows(planner, ctx, srel, local, slot, 2)
        keys = []
        for p in linking:
            if not isinstance(p, Cmp) or p.op != "eq":
                continue
            if isinstance(p.lhs, Col) and p.lhs.slot == slot and not (
                isinstance(p.rhs, Col) and p.rhs.slot == slot
            ):
                keys.append((p.rhs, p.lhs, p))
            elif isinstance(p.rhs, Col) and p.rhs.slot == slot and not (
                isinstance(p.lhs, Col) and p.lhs.slot == slot
            ):
                keys.append((p.lhs, p.rhs, p))
        keyed = {id(p) for _, _, p in keys}
        residual = [p for p in linking if id(p) not in keyed]
        table: dict = {}
        for srow in sub_rows:
            k = tuple(_key_of(_value(ctx, srow, mine)) for _, mine, _ in keys)
            table.setdefault(k, []).append(srow[slot])
        for t in pre_ok:
            row = [t, None]
            k = tuple(_key_of(_value(ctx, row, other)) for other, _, _ in keys)
            matched = False
            for s in table.get(k, ()):
                if budget is not None:
                    budget.tick()
                row[1] = s
                if all(_holds(ctx, row, p) for p in residual):
                    matched = True
                    break
            if matched:
                matched_values.add(t.values)
    if q.body_level is not None:
        for t in pre_ok:
            if body_negated:
                if t.values in matched_values:
                    viol_values.add(t.values)
            else:
                if t.values not in matched_values:
                    viol_values.add(t.values)

    # Touch gating for the body relation: the tree walk narrows it at the
    # first processed candidate passing guard ∧ pre-predicates; processing
    # stops at the first violation (in canonical candidate order).
    if q.body_level is not None:
        pre_values = {t.values for t in pre_ok}
        touch_body = False
        if pre_values:
            if not viol_values:
                touch_body = True
            else:
                candidates = sorted(
                    _dedupe_tuples(state.tuples_of_arity(q.arity)),
                    key=_tuple_order_key,
                )
                for cand in candidates:
                    if cand.values in pre_values:
                        touch_body = True
                        break
                    if cand.values in viol_values:
                        break
        if touch_body:
            srel = interp._relation(
                state, q.body_level.rel, q.body_level.arity
            )
            sreps = planner.reps_of(srel)
            if len(sreps) > interp.max_enumeration:
                raise EvaluationError(
                    f"enumeration of {q.body_level.var.name} exceeds "
                    f"max_enumeration"
                )
            if sreps:
                _force_params(ctx, q.body_preds)
    return not viol_values


# ---------------------------------------------------------------------------
# set expressions / aggregates
# ---------------------------------------------------------------------------


def run_set_query(planner, interp, state, env, q):
    if isinstance(q, RelQuery):
        relation = interp._relation(state, q.rel, q.arity)
        return relation.to_tuple_set()
    if isinstance(q, ChainQuery):
        return run_chain(planner, interp, state, env, q)
    if isinstance(q, SetOpQuery):
        left = run_set_query(planner, interp, state, env, q.left)
        right = run_set_query(planner, interp, state, env, q.right)
        if q.mode == "union":
            return left.union(right)
        if q.mode == "intersect":
            return left.intersect(right)
        return left.difference(right)
    raise Unplannable(repr(q))


def run_aggregate(planner, interp, state, env, q: AggQuery):
    value = run_set_query(planner, interp, state, env, q.child)
    if q.op == "size":
        return len(value)
    column = value.first_column()
    numbers = [v for v in column if isinstance(v, int)]
    if len(numbers) != len(column):
        raise EvaluationError(f"{q.op}: non-numeric attribute values")
    if q.op == "sum":
        return sum(numbers)
    if not numbers:
        raise EvaluationError(f"{q.op} of an empty set is undefined")
    return max(numbers) if q.op == "max" else min(numbers)
