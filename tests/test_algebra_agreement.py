"""The randomized planner-vs-tree-walk agreement harness.

Mirrors the incremental checker's acceptance harness (PR 4): generate
random schemas, random states, and random queries across the compilable
fragment's whole surface — joins, local predicates, arithmetic,
disjunctions (pure and union-compiled), trailing quantifier sequences,
projections, aggregates, atom parameters, and foreach domains — and
demand that the planner and the tree walk agree on *value*, *canonical
ordering*, *raised error*, and *relation read set* on every single query.

``verify=True`` is enabled on the planned side as a second, independent
referee: any divergence the outer assertions miss raises
:class:`PlannerMismatch` from inside the planner itself.
"""

from __future__ import annotations

import random

import pytest

from repro import Database
from repro.concurrent.tracking import TrackingInterpreter
from repro.db.schema import Schema
from repro.db.state import state_from_rows
from repro.errors import EvaluationError
from repro.logic import builder as b
from repro.transactions.interpreter import Env

ATOMS = {"str": ["a", "b", "c", "d"], "int": [1, 2, 3, 7]}


def gen_schema(rng):
    """Three relations, arities 1-3, each column typed str or int."""
    schema = Schema()
    rels = []
    for i in range(3):
        arity = rng.randint(1, 3)
        rel = schema.add_relation(
            f"R{i}", tuple(f"c{i}{j}" for j in range(arity))
        )
        types = tuple(rng.choice(["str", "int"]) for _ in range(arity))
        rels.append((rel, types))
    return schema, rels


def gen_state(rng, schema, rels):
    rows = {}
    for rel, types in rels:
        n = rng.choice([0, 1, 3, 6])  # include empty-relation corners
        rows[rel.name] = [
            tuple(rng.choice(ATOMS[t]) for t in types) for _ in range(n)
        ]
    return state_from_rows(schema, rows)


def gen_literal(rng, typ):
    return b.atom(rng.choice(ATOMS[typ]))


def gen_chain(rng, rels, param=None, k=None):
    """Bound vars + condition conjuncts + (var, types) handles."""
    if k is None:
        k = rng.randint(1, min(3, len(rels)))
    picks = [rels[rng.randrange(len(rels))] for _ in range(k)]
    handles = []
    conjuncts = []
    for i, (rel, types) in enumerate(picks):
        var = rel.var(f"v{i}")
        handles.append((rel, types, var))
        conjuncts.append(b.member(var, rel.rel()))
    # Join predicates: connect each later var to an earlier one when a
    # type-compatible column pair exists.
    for i in range(1, len(handles)):
        rel_i, types_i, var_i = handles[i]
        j = rng.randrange(i)
        rel_j, types_j, var_j = handles[j]
        pairs = [
            (ci, cj)
            for ci, ti in enumerate(types_i)
            for cj, tj in enumerate(types_j)
            if ti == tj
        ]
        if pairs and rng.random() < 0.8:
            ci, cj = rng.choice(pairs)
            conjuncts.append(
                b.eq(
                    rel_i.attr(rel_i.attributes[ci], var_i),
                    rel_j.attr(rel_j.attributes[cj], var_j),
                )
            )
    # Local predicates against literals (or the atom parameter).
    for rel, types, var in handles:
        if rng.random() < 0.6:
            conjuncts.append(gen_local(rng, rel, types, var, param))
        if rng.random() < 0.25:
            # A pure disjunction of two local predicates (compiles to Disj).
            conjuncts.append(
                b.lor(
                    gen_local(rng, rel, types, var, None),
                    gen_local(rng, rel, types, var, None),
                )
            )
    return handles, conjuncts


def gen_local(rng, rel, types, var, param):
    """One local predicate; int columns sometimes go through arithmetic."""
    ci = rng.randrange(len(types))
    col = rel.attr(rel.attributes[ci], var)
    rhs = (
        param
        if param is not None and rng.random() < 0.4
        else gen_literal(rng, types[ci])
    )
    if types[ci] == "int" and rng.random() < 0.5 and rhs is not param:
        if rng.random() < 0.4:
            col = rng.choice([b.plus, b.minus, b.times])(
                col, b.atom(rng.choice([1, 2]))
            )
        return rng.choice([b.lt, b.le, b.gt, b.ge])(col, rhs)
    return rng.choice([b.eq, b.neq])(col, rhs)


def gen_sub(rng, rels, handles, name):
    """A fresh-variable single-level exists linked to a random handle."""
    rel, types, _ = handles[rng.randrange(len(handles))]
    sub_rel, sub_types = rels[rng.randrange(len(rels))]
    u = sub_rel.var(name)
    inner = [b.member(u, sub_rel.rel())]
    pairs = [
        (ci, cj)
        for ci, ti in enumerate(sub_types)
        for cj, tj in enumerate(types)
        if ti == tj
    ]
    if pairs:
        _, _, var = next(h for h in handles if h[0] is rel)
        ci, cj = rng.choice(pairs)
        inner.append(
            b.eq(
                sub_rel.attr(sub_rel.attributes[ci], u),
                rel.attr(rel.attributes[cj], var),
            )
        )
    return b.exists(u, b.land(*inner))


def gen_query(rng, rels, param=None):
    """A random set former / exists / aggregate over the fragment."""
    handles, conjuncts = gen_chain(rng, rels, param)
    tail = rng.random()
    if tail < 0.45:
        # Trailing quantifier sequence: 0-2 positive exists, optionally
        # ending in a not-exists (the multi-conjunct widening).
        for i in range(rng.choice([1, 1, 2])):
            conjuncts.append(gen_sub(rng, rels, handles, f"u{i}"))
        if rng.random() < 0.4:
            conjuncts.append(b.lnot(gen_sub(rng, rels, handles, "un")))
    elif tail < 0.7:
        # Trailing disjunction with quantified branches (union plans).
        branches = []
        for i in range(rng.randint(2, 3)):
            if rng.random() < 0.45:
                rel, types, var = handles[rng.randrange(len(handles))]
                branches.append(gen_local(rng, rel, types, var, None))
            else:
                sub = gen_sub(rng, rels, handles, f"w{i}")
                branches.append(sub if rng.random() < 0.7 else b.lnot(sub))
        conjuncts.append(b.lor(*branches))

    shape = rng.random()
    if shape < 0.2:  # boolean exists over the whole chain
        inner_vars = [h[2] for h in handles]
        body = b.land(*conjuncts)
        for v in reversed(inner_vars):
            body = b.exists(v, body)
        return body, True
    rel, types, var = handles[rng.randrange(len(handles))]
    ci = rng.randrange(len(types))
    result = rel.attr(rel.attributes[ci], var)
    former = b.setformer(result, [h[2] for h in handles], b.land(*conjuncts))
    if shape < 0.5:
        return former, False
    if types[ci] == "int":
        agg = rng.choice([b.sum_of, b.max_of, b.min_of, b.size_of])
    else:
        agg = b.size_of
    return agg(former), False


def evaluate(db, node, is_formula, env):
    tracking = TrackingInterpreter.wrapping(db.interpreter)
    try:
        if is_formula:
            value = tracking.eval_formula(db.current, node, env)
        else:
            value = tracking.eval_object(db.current, node, env)
        return value, None, frozenset(tracking.reads)
    except EvaluationError as exc:
        return None, str(exc), frozenset(tracking.reads)


def gen_foreach(rng, rels):
    """A foreach over a single-variable chain, with an observable body
    (modify the first column to a literal)."""
    handles, conjuncts = gen_chain(rng, rels, k=1)
    if rng.random() < 0.5:
        sub = gen_sub(rng, rels, handles, "u0")
        conjuncts.append(sub if rng.random() < 0.7 else b.lnot(sub))
    rel, types, var = handles[0]
    body = b.modify(var, 1, gen_literal(rng, types[0]))
    return b.foreach(var, b.land(*conjuncts), body)


def run_foreach(db, fluent):
    tracking = TrackingInterpreter.wrapping(db.interpreter)
    try:
        after = tracking.run(db.current, fluent)
        return after.relations, None, frozenset(tracking.reads)
    except EvaluationError as exc:
        return None, str(exc), frozenset(tracking.reads)


@pytest.mark.parametrize("seed", range(24))
def test_planner_and_tree_walk_agree_on_random_queries(seed):
    rng = random.Random(seed)
    compiled_total = 0
    for round_no in range(8):
        schema, rels = gen_schema(rng)
        state = gen_state(rng, schema, rels)
        plain = Database(schema, initial=state)
        planned = Database(schema, initial=state)
        planner = planned.enable_planner(verify=True)
        param = b.atom_var("p")
        for _ in range(6):
            use_param = rng.random() < 0.3
            typ = rng.choice(["str", "int"])
            node, is_formula = gen_query(
                rng, rels, param if use_param else None
            )
            env = (
                Env.empty().bind(param, rng.choice(ATOMS[typ]))
                if use_param
                else None
            )
            expected, expected_err, slow_reads = evaluate(
                plain, node, is_formula, env
            )
            got, got_err, fast_reads = evaluate(planned, node, is_formula, env)
            assert got_err == expected_err, (seed, round_no, node)
            if expected_err is None:
                assert type(got) is type(expected)
                assert got == expected, (seed, round_no, node)
            assert fast_reads == slow_reads, (seed, round_no, node)
        for _ in range(2):
            fluent = gen_foreach(rng, rels)
            expected, expected_err, slow_reads = run_foreach(plain, fluent)
            got, got_err, fast_reads = run_foreach(planned, fluent)
            assert got_err == expected_err, (seed, round_no, fluent)
            if expected_err is None:
                assert got == expected, (seed, round_no, fluent)
            assert fast_reads == slow_reads, (seed, round_no, fluent)
        compiled_total += planner.exec_count
        assert planner.mismatch_count == 0
    # The generator must actually exercise the planner, not fall back
    # everywhere.
    assert compiled_total >= 16, compiled_total
