"""The banking domain: the machinery beyond the paper's example."""

import pytest

from repro.errors import ConstraintViolation
from repro.constraints import (
    ConstraintKind,
    Window,
    analyze,
    check_state,
    check_transition,
)
from repro.domains import make_banking_domain
from repro.engine import Database


@pytest.fixture()
def bank():
    return make_banking_domain()


@pytest.fixture()
def state(bank):
    return bank.sample_state()


class TestClassification:
    def test_kinds(self, bank):
        kinds = {c.name: c.kind for c in bank.constraints()}
        assert kinds["unique-owner"] is ConstraintKind.STATIC
        assert kinds["audited-balance"] is ConstraintKind.STATIC
        assert kinds["frozen-accounts-stable"] is ConstraintKind.TRANSACTION
        assert kinds["closed-stay-closed"] is ConstraintKind.DYNAMIC

    def test_checkability(self, bank):
        assert analyze(bank.frozen_accounts_stable()).window == 2
        assert analyze(bank.closed_stay_closed()).window is Window.FULL_HISTORY


class TestStaticConstraints:
    def test_sample_state_valid(self, bank, state):
        for c in (bank.unique_owner(), bank.audited_balance()):
            assert check_state(c, state).ok, c.name

    def test_duplicate_owner_violates(self, bank, state):
        s2 = bank.open_account.run(state, "ada")
        assert not check_state(bank.unique_owner(), s2).ok

    def test_equal_deposits_stay_audited(self, bank, state):
        """Two equal deposits: the x-seq attribute prevents set collapse."""
        s1 = bank.deposit.run(state, "ada", 25)
        s2 = bank.deposit.run(s1, "ada", 25)
        assert check_state(bank.audited_balance(), s2).ok
        ada = next(t for t in s2.relation("ACCT") if t.values[0] == "ada")
        assert ada.values[1] == 120

    def test_unaudited_mutation_violates(self, bank, state):
        t = next(t for t in state.relation("ACCT") if t.values[0] == "ada")
        tampered = state.modify_tuple(t, 2, 999)
        assert not check_state(bank.audited_balance(), tampered).ok


class TestTransactions:
    def test_deposit_ignores_frozen(self, bank, state):
        s2 = bank.deposit.run(state, "cyd", 10)  # cyd is frozen
        cyd = next(t for t in s2.relation("ACCT") if t.values[0] == "cyd")
        assert cyd.values[1] == 50

    def test_frozen_constraint_accepts_legal_transitions(self, bank, state):
        s2 = bank.deposit.run(state, "ada", 5)
        assert check_transition(bank.frozen_accounts_stable(), state, s2).ok

    def test_frozen_constraint_catches_tampering(self, bank, state):
        t = next(t for t in state.relation("ACCT") if t.values[0] == "cyd")
        tampered = state.modify_tuple(t, 2, 0)
        assert not check_transition(bank.frozen_accounts_stable(), state, tampered).ok

    def test_unfreeze_then_move_is_legal(self, bank, state):
        s1 = bank.unfreeze.run(state, "cyd")
        s2 = bank.deposit.run(s1, "cyd", 10)
        assert check_transition(bank.frozen_accounts_stable(), s1, s2).ok

    def test_withdrawal_truncates_at_zero(self, bank, state):
        s2 = bank.withdraw.run(state, "bob", 1000)
        bob = next(t for t in s2.relation("ACCT") if t.values[0] == "bob")
        assert bob.values[1] == 0


class TestClosedEncoding:
    def test_engine_with_encoding(self, bank, state):
        enc = bank.closed_encoding()
        db = Database(bank.schema, window=2, initial=state)
        db.register_encoding(enc)
        bank.schema.add_constraint(enc.static_constraint())
        db.execute(bank.close_account, "bob")
        assert {t.values for t in db.current.relation("CLOSED")} == {("bob",)}
        db.execute(bank.deposit, "ada", 5)
        with pytest.raises(ConstraintViolation):
            db.execute(bank.open_account, "bob")

    def test_fresh_owner_still_welcome(self, bank, state):
        enc = bank.closed_encoding()
        db = Database(bank.schema, window=2, initial=state)
        db.register_encoding(enc)
        bank.schema.add_constraint(enc.static_constraint())
        db.execute(bank.close_account, "bob")
        db.execute(bank.open_account, "dee")
        assert any(t.values[0] == "dee" for t in db.current.relation("ACCT"))


class TestVerification:
    def test_freeze_preserves_frozen_stability_by_model_check(self, bank, state):
        from repro.verification import Scenario, Verifier

        result = Verifier().verify(
            bank.frozen_accounts_stable(), bank.deposit,
            [Scenario(state, ("ada", 10)), Scenario(state, ("cyd", 10))],
        )
        assert result.preserved
