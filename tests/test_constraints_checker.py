"""Constraint checking against states, transitions, histories, graphs."""

import pytest

from repro.errors import CheckabilityError
from repro.constraints import (
    PartialModel,
    Evaluator,
    check_all,
    check_history,
    check_model,
    check_state,
    check_transition,
)
from repro.db import History, chain_graph
from repro.logic import builder as b


class TestStaticChecking:
    def test_valid_state_passes(self, domain, sample_state):
        for c in domain.static_constraints:
            assert check_state(c, sample_state).ok

    def test_unallocated_employee_violates(self, domain, sample_state):
        s2 = domain.hire.run(sample_state, "eve", "cs", 90, 25, "S")
        result = check_state(domain.every_employee_allocated(), s2)
        assert not result.ok

    def test_dangling_allocation_violates(self, domain, sample_state):
        s2 = domain.allocate.run(sample_state, "alice", "ghost-project", 10)
        assert not check_state(domain.alloc_references_project(), s2).ok

    def test_overallocation_violates(self, domain, sample_state):
        s2 = domain.allocate.run(sample_state, "alice", "net", 50)
        assert not check_state(domain.allocation_within_limit(), s2).ok

    def test_exactly_100_percent_ok(self, domain, sample_state):
        # bob is at 100 already — boundary passes
        assert check_state(domain.allocation_within_limit(), sample_state).ok


class TestTransactionChecking:
    def test_once_married_violation_detected(self, domain, sample_state):
        # alice is married; a transition making her single violates
        s2 = domain.marry.run(sample_state, "alice", "S")
        s2 = domain.birthday.run(s2, "alice")
        result = check_transition(domain.once_married(), sample_state, s2)
        assert not result.ok

    def test_once_married_without_aging_is_vacuous(self, domain, sample_state):
        """The constraint's premise requires the employee to be *older* at
        the second state (that is how the paper encodes forward time)."""
        s2 = domain.marry.run(sample_state, "alice", "S")
        assert check_transition(domain.once_married(), sample_state, s2).ok

    def test_skill_retention_violation(self, domain, sample_state):
        from repro.logic import builder as b
        from repro.transactions import execute

        k = domain.skill.var("k")
        drop_skill = b.foreach(
            k,
            b.land(
                b.member(k, domain.skill.rel()),
                b.eq(domain.skill.attr("s-emp", k), b.atom("alice")),
            ),
            b.delete(k, domain.skill.rid()),
        )
        s2 = execute(sample_state, drop_skill)
        assert not check_transition(domain.skill_retention(), sample_state, s2).ok

    def test_skill_retention_allows_firing(self, domain, sample_state):
        """Deleting the employee together with his skills is permitted."""
        s2 = domain.fire.run(sample_state, "dan")
        assert check_transition(domain.skill_retention(), sample_state, s2).ok

    def test_salary_decrease_without_transfer_violates(self, domain, sample_state):
        s2 = domain.set_salary.run(sample_state, "alice", 50)
        c = domain.salary_decrease_needs_dept_change()
        assert not check_transition(c, sample_state, s2).ok

    def test_salary_decrease_with_transfer_ok(self, domain, sample_state):
        s2 = domain.transfer.run(sample_state, "alice", "ee", 50)
        c = domain.salary_decrease_needs_dept_change()
        assert check_transition(c, sample_state, s2).ok

    def test_salary_raise_ok(self, domain, sample_state):
        s2 = domain.set_salary.run(sample_state, "alice", 500)
        c = domain.salary_decrease_needs_dept_change()
        assert check_transition(c, sample_state, s2).ok


class TestHistoryChecking:
    def test_three_state_window_sees_two_hop_violation(self, domain, sample_state):
        """Salary decreases over two hops with the dept switch missing."""
        s1 = domain.set_salary.run(sample_state, "alice", 80)  # decrease!
        s2 = domain.set_salary.run(s1, "alice", 60)
        h = History(window=3)
        h.start(sample_state)
        h.advance(s1, "cut1")
        h.advance(s2, "cut2")
        c = domain.salary_decrease_needs_dept_change()
        result = check_history(c, h)
        assert not result.ok

    def test_window_enforcement(self, domain, sample_state):
        h = History(window=1)
        h.start(sample_state)
        c = domain.once_married()  # declared window 2
        with pytest.raises(CheckabilityError):
            check_history(c, h, enforce_window=True)

    def test_full_history_requirement_enforced(self, domain, sample_state):
        h = History(window=2)
        h.start(sample_state)
        with pytest.raises(CheckabilityError):
            check_history(domain.salary_never_same(), h, enforce_window=True)

    def test_uncheckable_always_refused(self, domain, sample_state):
        h = History(window=None)
        h.start(sample_state)
        with pytest.raises(CheckabilityError):
            check_history(domain.invertibility(), h, enforce_window=True)

    def test_check_all_reports_each(self, domain, sample_state):
        h = History(window=2)
        h.start(sample_state)
        report = check_all(domain.static_constraints, h)
        assert report.ok and len(report.results) == 3

    def test_violations_listed(self, domain, sample_state):
        s2 = domain.hire.run(sample_state, "eve", "cs", 90, 25, "S")
        h = History(window=2)
        h.start(s2)
        report = check_all(domain.static_constraints, h)
        assert not report.ok
        assert [r.constraint.name for r in report.violations()] == [
            "every-employee-allocated"
        ]


class TestGraphChecking:
    def test_never_rehire_full_history(self, domain, sample_state):
        s1 = domain.fire.run(sample_state, "dan")
        s2 = domain.hire.run(s1, "dan", "cs", 95, 31, "S")
        s3 = domain.allocate.run(s2, "dan", "db", 10)
        model = PartialModel(chain_graph([sample_state, s1, s2, s3]))
        assert not Evaluator(model).holds(domain.never_rehire().formula)

    def test_never_rehire_invisible_in_two_state_window(self, domain, sample_state):
        """With only (s2, s3) maintained, the firing is out of the window —
        the paper's point that this constraint needs the complete history."""
        s1 = domain.fire.run(sample_state, "dan")
        s2 = domain.hire.run(s1, "dan", "cs", 95, 31, "S")
        s3 = domain.allocate.run(s2, "dan", "db", 10)
        model = PartialModel(chain_graph([s2, s3]))
        assert Evaluator(model).holds(domain.never_rehire().formula)

    def test_check_model(self, domain, sample_state):
        model = PartialModel(chain_graph([sample_state]))
        assert check_model(domain.every_employee_allocated(), model).ok

    def test_invertibility_semantics(self, domain, sample_state):
        """A pure marry/unmarry round trip leaves ages intact and *is*
        invertible within the recorded graph."""
        s1 = domain.marry.run(sample_state, "bob", "M")
        from repro.db import EvolutionGraph

        g = EvolutionGraph()
        g.add_transition(sample_state, s1, "marry")
        g.add_transition(s1, sample_state, "unmarry")
        model = PartialModel(g, max_transition_length=4)
        assert Evaluator(model).holds(domain.invertibility().formula)
