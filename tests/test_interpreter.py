"""Operational semantics: w:e, w::p, w;e on concrete states."""

import pytest

from repro.errors import (
    EvaluationError,
    OrderDependenceError,
    UnboundVariableError,
)
from repro.db import Schema, make_tuple, state_from_rows
from repro.db.values import RelationId, TupleSet
from repro.logic import builder as b
from repro.logic.symbols import DefinedSymbol, FunctionSymbol, SymbolKind, SymbolTable
from repro.logic.sorts import ATOM
from repro.transactions import Env, Interpreter, evaluate, execute, satisfies


@pytest.fixture()
def schema():
    s = Schema()
    s.add_relation("NUM", ("n", "tag"))
    s.add_relation("ACC", ("total",))
    return s


@pytest.fixture()
def state(schema):
    return state_from_rows(
        schema, {"NUM": [(1, "a"), (2, "b"), (3, "c")], "ACC": [(0,)]}
    )


NUM = b.rel("NUM", 2)
ACC = b.rel("ACC", 1)


class TestObjectEvaluation:
    def test_arithmetic(self, state):
        assert evaluate(state, b.plus(b.atom(2), b.atom(3))) == 5
        assert evaluate(state, b.times(b.atom(2), b.atom(3))) == 6

    def test_truncated_subtraction(self, state):
        assert evaluate(state, b.minus(b.atom(2), b.atom(5))) == 0

    def test_division_by_zero(self, state):
        with pytest.raises(EvaluationError):
            evaluate(state, _div(1, 0))

    def test_relation_value(self, state):
        value = evaluate(state, NUM)
        assert isinstance(value, TupleSet) and len(value) == 3

    def test_rel_id_value(self, state):
        assert evaluate(state, b.rel_id("NUM", 2)) == RelationId("NUM", 2)

    def test_select_and_attr(self, state):
        n = b.ftup_var("t", 2)
        t = next(iter(state.relation("NUM")))
        env = Env({n: t})
        assert evaluate(state, b.select(n, 1), env) == t.values[0]
        assert evaluate(state, b.attr("tag", 2, 2, n), env) == t.values[1]

    def test_tuple_construction(self, state):
        value = evaluate(state, b.mktuple(b.atom(9), b.atom("z")))
        assert value.values == (9, "z") and value.tid is None

    def test_set_former(self, state):
        t = b.ftup_var("t", 2)
        former = b.setformer(b.select(t, 1), t, b.member(t, NUM))
        value = evaluate(state, former)
        assert sorted(value.first_column()) == [1, 2, 3]

    def test_set_former_filtering(self, state):
        t = b.ftup_var("t", 2)
        former = b.setformer(
            b.select(t, 1), t, b.land(b.member(t, NUM), b.gt(b.select(t, 1), b.atom(1)))
        )
        assert sorted(evaluate(state, former).first_column()) == [2, 3]

    def test_aggregates(self, state):
        t = b.ftup_var("t", 2)
        former = b.setformer(b.select(t, 1), t, b.member(t, NUM))
        assert evaluate(state, b.sum_of(former)) == 6
        assert evaluate(state, b.max_of(former)) == 3
        assert evaluate(state, b.min_of(former)) == 1
        assert evaluate(state, b.size_of(former)) == 3

    def test_aggregate_of_empty(self, state):
        t = b.ftup_var("t", 2)
        former = b.setformer(
            b.select(t, 1), t, b.land(b.member(t, NUM), b.gt(b.select(t, 1), b.atom(99)))
        )
        assert evaluate(state, b.sum_of(former)) == 0
        assert evaluate(state, b.size_of(former)) == 0
        with pytest.raises(EvaluationError):
            evaluate(state, b.max_of(former))

    def test_set_operations(self, state):
        t = b.ftup_var("t", 2)
        low = b.setformer(t, t, b.land(b.member(t, NUM), b.lt(b.select(t, 1), b.atom(3))))
        high = b.setformer(t, t, b.land(b.member(t, NUM), b.gt(b.select(t, 1), b.atom(1))))
        assert len(evaluate(state, b.union(low, high))) == 3
        assert len(evaluate(state, b.intersect(low, high))) == 1
        assert len(evaluate(state, b.diff(low, high))) == 1

    def test_tuple_id(self, state):
        n = b.ftup_var("t", 2)
        t = next(iter(state.relation("NUM")))
        assert evaluate(state, b.tuple_id(n), Env({n: t})) == t.tid

    def test_unbound_variable(self, state):
        with pytest.raises(UnboundVariableError):
            evaluate(state, b.atom_var("x"))

    def test_ite(self, state):
        expr = b.ite(b.lt(b.atom(1), b.atom(2)), b.atom(10), b.atom(20))
        assert evaluate(state, expr) == 10

    def test_deref_follows_state(self, state):
        """A tuple variable denotes *the identified tuple at the evaluation
        state* — the heart of cross-state constraint semantics."""
        n = b.ftup_var("t", 2)
        t = next(iter(state.relation("NUM")))
        s2 = state.modify_tuple(t, 1, 99)
        env = Env({n: t})
        assert evaluate(state, b.select(n, 1), env) == t.values[0]
        assert evaluate(s2, b.select(n, 1), env) == 99


def _div(a, c):
    from repro.logic import symbols as sym
    from repro.logic.terms import App

    return App(sym.DIV, (b.atom(a), b.atom(c)))


class TestFormulaEvaluation:
    def test_membership(self, state):
        assert satisfies(state, b.member(b.mktuple(b.atom(1), b.atom("a")), NUM))
        assert not satisfies(state, b.member(b.mktuple(b.atom(9), b.atom("x")), NUM))

    def test_quantifiers(self, state):
        t = b.ftup_var("t", 2)
        assert satisfies(
            state,
            b.forall(t, b.implies(b.member(t, NUM), b.le(b.select(t, 1), b.atom(3)))),
        )
        assert satisfies(
            state, b.exists(t, b.land(b.member(t, NUM), b.eq(b.select(t, 1), b.atom(2))))
        )
        assert not satisfies(
            state, b.exists(t, b.land(b.member(t, NUM), b.eq(b.select(t, 1), b.atom(9))))
        )

    def test_connectives(self, state):
        lt = b.lt(b.atom(1), b.atom(2))
        gt = b.gt(b.atom(1), b.atom(2))
        assert satisfies(state, b.land(lt, b.lnot(gt)))
        assert satisfies(state, b.lor(gt, lt))
        assert satisfies(state, b.implies(gt, b.false()))
        assert satisfies(state, b.iff(gt, b.false()))

    def test_subset(self, state):
        t = b.ftup_var("t", 2)
        low = b.setformer(t, t, b.land(b.member(t, NUM), b.lt(b.select(t, 1), b.atom(2))))
        assert satisfies(state, b.subset(low, NUM))
        assert not satisfies(state, b.subset(NUM, low))

    def test_equality_of_tuples_by_value(self, state):
        assert satisfies(
            state,
            b.eq(b.mktuple(b.atom(1), b.atom("a")), b.mktuple(b.atom(1), b.atom("a"))),
        )


class TestTransactionExecution:
    def test_insert(self, state):
        s2 = execute(state, b.insert(b.mktuple(b.atom(7), b.atom("q")), "NUM"))
        assert len(s2.relation("NUM")) == 4

    def test_delete(self, state):
        s2 = execute(state, b.delete(b.mktuple(b.atom(1), b.atom("a")), "NUM"))
        assert len(s2.relation("NUM")) == 2

    def test_modify(self, state):
        n = b.ftup_var("t", 2)
        t = next(iter(state.relation("NUM")))
        s2 = execute(state, b.modify(n, 2, b.atom("Z")), Env({n: t}))
        assert s2.relation("NUM").get(t.tid).values[1] == "Z"

    def test_assign(self, state):
        t = b.ftup_var("t", 2)
        former = b.setformer(b.select(t, 1), t, b.member(t, NUM))
        s2 = execute(state, b.assign(b.rel_id("COPY", 1), former))
        assert len(s2.relation("COPY")) == 3

    def test_seq_threads_states(self, state):
        tx = b.seq(
            b.insert(b.mktuple(b.atom(8), b.atom("w")), "NUM"),
            b.delete(b.mktuple(b.atom(1), b.atom("a")), "NUM"),
        )
        s2 = execute(state, tx)
        assert len(s2.relation("NUM")) == 3

    def test_identity(self, state):
        assert execute(state, b.identity()) == state

    def test_cond_fluent_guard_uses_current_state(self, state):
        t = b.ftup_var("t", 2)
        guard = b.exists(t, b.land(b.member(t, NUM), b.eq(b.select(t, 1), b.atom(1))))
        tx = b.ifthen(guard, b.delete(b.mktuple(b.atom(1), b.atom("a")), "NUM"))
        s2 = execute(state, tx)
        assert len(s2.relation("NUM")) == 2
        s3 = execute(s2, tx)  # guard now false -> identity
        assert s3 == s2

    def test_foreach_iterates_satisfiers(self, state):
        t = b.ftup_var("t", 2)
        tx = b.foreach(t, b.member(t, NUM), b.delete(t, "NUM"))
        s2 = execute(state, tx)
        assert len(s2.relation("NUM")) == 0

    def test_foreach_satisfiers_fixed_at_entry(self, state):
        """The enumeration happens at the evaluation state; tuples inserted
        by the body are not iterated."""
        t = b.ftup_var("t", 2)
        tx = b.foreach(
            t,
            b.member(t, NUM),
            b.insert(b.mktuple(b.plus(b.select(t, 1), b.atom(10)), b.select(t, 2)), "NUM"),
        )
        s2 = execute(state, tx)
        assert len(s2.relation("NUM")) == 6

    def test_order_dependent_foreach_rejected(self, schema):
        """The paper: the iteration fluent is undefined when the result
        depends on the enumeration order."""
        state = state_from_rows(schema, {"NUM": [(1, "a"), (2, "b")], "ACC": [(0,)]})
        t = b.ftup_var("t", 2)
        acc = b.ftup_var("acc", 1)
        # acc.total := 2 * acc.total + t.n   — order-dependent
        body = b.foreach(
            acc,
            b.member(acc, ACC),
            b.modify(
                acc, 1, b.plus(b.times(b.atom(2), b.select(acc, 1)), b.select(t, 1))
            ),
        )
        tx = b.foreach(t, b.member(t, NUM), body)
        with pytest.raises(OrderDependenceError):
            execute(state, tx)

    def test_order_check_none_skips_detection(self, schema):
        state = state_from_rows(schema, {"NUM": [(1, "a"), (2, "b")], "ACC": [(0,)]})
        t = b.ftup_var("t", 2)
        acc = b.ftup_var("acc", 1)
        body = b.foreach(
            acc,
            b.member(acc, ACC),
            b.modify(
                acc, 1, b.plus(b.times(b.atom(2), b.select(acc, 1)), b.select(t, 1))
            ),
        )
        tx = b.foreach(t, b.member(t, NUM), body)
        interp = Interpreter(order_check="none")
        interp.run(state, tx)  # no error: caller accepted the risk

    def test_full_order_check(self, state):
        t = b.ftup_var("t", 2)
        tx = b.foreach(t, b.member(t, NUM), b.delete(t, "NUM"))
        interp = Interpreter(order_check="full")
        s2 = interp.run(state, tx)
        assert len(s2.relation("NUM")) == 0

    def test_with_without(self, state):
        from repro.logic import symbols as sym
        from repro.logic.terms import App

        t = b.mktuple(b.atom(9), b.atom("n"))
        added = App(sym.with_sym(2), (NUM, t))
        assert len(evaluate(state, added)) == 4
        removed = App(sym.without_sym(2), (NUM, b.mktuple(b.atom(1), b.atom("a"))))
        assert len(evaluate(state, removed)) == 2


class TestDefinedSymbols:
    def test_definition_unfolds(self, state):
        x = b.atom_var("x")
        double = FunctionSymbol("double", (ATOM,), ATOM, SymbolKind.DEFINED)
        table = SymbolTable()
        table.define(DefinedSymbol(double, (x,), b.plus(x, x)))
        interp = Interpreter(definitions=table)
        from repro.logic.terms import App

        assert interp.eval_object(state, App(double, (b.atom(4),))) == 8
