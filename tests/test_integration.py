"""Cross-module integration: the full pipeline on realistic scenarios.

Each test exercises several subsystems together — surface language through
engine through verification/synthesis — the way a downstream user would.
"""

import pytest

from repro import (
    ConstraintViolation,
    Database,
    make_domain,
    parse,
)
from repro.db.generators import benign_history, employee_state, violating_history
from repro.verification import Scenario, Verdict, Verifier


class TestSurfaceToEngine:
    def test_parsed_domain_runs_under_enforcement(self):
        program = parse(
            """
            relation ACC(owner, balance);

            constraint non-negative [window 1] :=
              forall s: state. holds(s, forall a: ACC. a in ACC -> balance(a) >= 0);

            constraint balance-monotone-or-withdrawn [window 2] :=
              forall s: state, t: trans, a: ACC.
                holds(s, a in ACC) and holds(after(s, t), a in ACC)
                -> at(s, balance(a)) <= at(after(s, t), balance(a))
                   or at(after(s, t), balance(a)) < at(s, balance(a));

            transaction open(who) := insert row(who, 0) into ACC;
            transaction deposit(who, amt) :=
              foreach a: ACC | a in ACC and owner(a) = who
              do set a.balance := balance(a) + amt end;
            transaction withdraw(who, amt) :=
              foreach a: ACC | a in ACC and owner(a) = who
              do set a.balance := balance(a) - amt end;
            """
        )
        for c in program.constraints:
            program.schema.add_constraint(c)
        db = Database(program.schema, window=2)
        tx = program.transactions
        db.execute(tx["open"], "alice")
        db.execute(tx["deposit"], "alice", 50)
        db.execute(tx["withdraw"], "alice", 20)
        (account,) = db.current.relation("ACC")
        assert account.values == ("alice", 30)
        # naturals truncate at zero, so over-withdrawal cannot go negative;
        # the static constraint holds by the arithmetic of the logic
        db.execute(tx["withdraw"], "alice", 100)
        (account,) = db.current.relation("ACC")
        assert account.values == ("alice", 0)


class TestScaledEnforcement:
    def test_engine_over_generated_workload(self):
        domain = make_domain()
        domain.install_constraints(
            "every-employee-allocated",
            "alloc-references-project",
            "allocation-within-limit",
            "skill-retention",
        )
        db = Database(
            domain.schema, window=2, initial=employee_state(domain, 20)
        )
        db.execute(domain.add_skill, "emp3", 5)
        db.execute(domain.set_salary, "emp3", 500)
        db.execute(domain.birthday, "emp7")
        assert all(record.ok for record in db.records)
        with pytest.raises(ConstraintViolation):
            db.execute(domain.hire, "stray", "cs", 50, 30, "S")

    def test_generated_histories_are_benign(self):
        domain = make_domain()
        states = benign_history(domain, 12, 6)
        from repro.constraints import check_state

        for state in states:
            for c in domain.static_constraints:
                assert check_state(c, state).ok

    def test_violating_history_is_violating(self):
        domain = make_domain()
        states = violating_history(domain, 8, 2)
        from repro.constraints import check_history
        from repro.db import History

        h = History(window=None)
        h.start(states[0])
        for s in states[1:]:
            h.advance(s)
        assert not check_history(domain.never_rehire(), h).ok


class TestVerifyThenRun:
    def test_proved_transaction_never_trips_the_engine(self):
        """A constraint PROVED preserved never causes a rollback at runtime."""
        domain = make_domain()
        verifier = Verifier()
        result = verifier.verify(domain.once_married(), domain.add_skill, [])
        assert result.verdict is Verdict.PROVED

        domain.schema.add_constraint(domain.once_married())
        db = Database(domain.schema, window=2, initial=domain.sample_state())
        for i in range(5):
            db.execute(domain.add_skill, "alice", i + 1)
        assert all(record.ok for record in db.records)

    def test_violated_verdict_predicts_runtime_rollback(self):
        domain = make_domain()
        s0 = domain.sample_state()
        verifier = Verifier()
        result = verifier.verify(
            domain.salary_decrease_needs_dept_change(),
            domain.cancel_project,
            [Scenario(s0, ("net", 10))],
        )
        assert result.verdict is Verdict.VIOLATED

        domain.schema.add_constraint(domain.salary_decrease_needs_dept_change())
        db = Database(domain.schema, window=3, initial=s0)
        with pytest.raises(ConstraintViolation):
            db.execute(domain.cancel_project, "net", 10)


class TestSynthesizeThenVerify:
    def test_synthesized_transaction_verifies_like_handwritten(self):
        from repro.logic import builder as b
        from repro.synthesis import ModifyGoal, RemoveGoal, Synthesizer

        domain = make_domain()
        s0 = domain.sample_state()
        pname, v = b.atom_var("pname"), b.atom_var("v")
        p = domain.proj.var("p")
        e = domain.emp.var("e")
        a = domain.alloc.var("a")
        allocated = b.exists(
            a,
            b.land(
                b.member(a, domain.alloc.rel()),
                b.eq(domain.alloc.attr("a-proj", a), pname),
                b.eq(domain.alloc.attr("a-emp", a), domain.emp.attr("e-name", e)),
            ),
        )
        goals = [
            RemoveGoal(domain.proj, p, b.eq(domain.proj.attr("p-name", p), pname)),
            ModifyGoal(domain.emp, e, allocated, "salary",
                       b.minus(domain.emp.attr("salary", e), v)),
        ]
        synth = Synthesizer(domain.static_constraints)
        result = synth.synthesize("cancel", (pname, v), goals, [(s0, ("net", 10))])

        verifier = Verifier()
        scenario = Scenario(s0, ("net", 10))
        for constraint in (domain.once_married(), domain.skill_retention()):
            handwritten = verifier.verify(constraint, domain.cancel_project, [scenario])
            synthesized = verifier.verify(constraint, result.program, [scenario])
            assert handwritten.preserved == synthesized.preserved
