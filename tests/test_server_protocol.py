"""The wire protocol: framing, value documents, and structured errors.

Pure codec tests — no sockets.  The load-bearing properties: any byte
split decodes identically (the stream owes the decoder nothing), malformed
input raises typed :class:`ProtocolError` and poisons the decoder, and the
error taxonomy round-trips **structurally** (``retry_after`` and meter
readings survive as fields, not message prose).
"""

from __future__ import annotations

import json
import struct
import zlib

import pytest

from repro.db.values import DBTuple, RelationId, TupleSet
from repro.errors import (
    BudgetExceeded,
    Cancelled,
    CheckabilityError,
    CircuitOpen,
    ConstraintViolation,
    EvaluationError,
    ExecutabilityError,
    Overloaded,
    ParseError,
    ProtocolError,
    ReproError,
    ResourceError,
    RetryExhausted,
    SchedulerClosed,
    SchemaError,
    SessionClosed,
    SortError,
    TransactionConflict,
)
from repro.server.protocol import (
    FRAME_MAGIC,
    MAX_FRAME_PAYLOAD,
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_message,
    error_from_doc,
    error_to_doc,
    value_from_doc,
    value_to_doc,
)


def frame_of(payload: bytes) -> bytes:
    """A hand-rolled frame around arbitrary payload bytes."""
    return (
        FRAME_MAGIC
        + struct.pack(">I", len(payload))
        + struct.pack(">I", zlib.crc32(payload) & 0xFFFFFFFF)
        + payload
    )


class TestFraming:
    def test_round_trip_one_frame(self):
        doc = {"type": "EXECUTE", "id": 3, "program": "hire", "args": [1, "a"]}
        assert FrameDecoder().feed(encode_message(doc)) == [doc]

    def test_any_byte_split_decodes_identically(self):
        doc = {"type": "QUERY", "id": 9, "program": "headcount", "args": []}
        data = encode_message(doc)
        for cut in range(len(data) + 1):
            decoder = FrameDecoder()
            messages = decoder.feed(data[:cut])
            messages += decoder.feed(data[cut:])
            assert messages == [doc], f"split at {cut}"

    def test_byte_at_a_time(self):
        doc = {"type": "CLOSE", "id": 1}
        decoder = FrameDecoder()
        messages: list = []
        for i in range(len(encode_message(doc))):
            messages += decoder.feed(encode_message(doc)[i : i + 1])
        assert messages == [doc]

    def test_many_frames_in_one_feed(self):
        docs = [{"type": "EXECUTE", "id": i} for i in range(5)]
        blob = b"".join(encode_message(d) for d in docs)
        assert FrameDecoder().feed(blob) == docs

    def test_trailing_partial_frame_is_held_back(self):
        a = encode_message({"type": "HELLO", "id": 1})
        b = encode_message({"type": "CLOSE", "id": 2})
        decoder = FrameDecoder()
        assert decoder.feed(a + b[:4]) == [{"type": "HELLO", "id": 1}]
        assert decoder.feed(b[4:]) == [{"type": "CLOSE", "id": 2}]

    def test_version_constant_is_wire_visible(self):
        assert isinstance(PROTOCOL_VERSION, int) and PROTOCOL_VERSION >= 1


class TestMalformedFrames:
    def test_bad_marker(self):
        with pytest.raises(ProtocolError, match="marker"):
            FrameDecoder().feed(b"XXxxxxxxxxxx")

    def test_crc_mismatch(self):
        data = bytearray(encode_message({"type": "CLOSE", "id": 1}))
        data[-1] ^= 0xFF
        with pytest.raises(ProtocolError, match="CRC"):
            FrameDecoder().feed(bytes(data))

    def test_implausible_length(self):
        header = FRAME_MAGIC + struct.pack(">I", MAX_FRAME_PAYLOAD + 1)
        header += struct.pack(">I", 0)
        with pytest.raises(ProtocolError, match="length"):
            FrameDecoder().feed(header)

    def test_undecodable_payload(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            FrameDecoder().feed(frame_of(b"\xff\xfe not json"))

    def test_untyped_message(self):
        with pytest.raises(ProtocolError, match="typed"):
            FrameDecoder().feed(frame_of(json.dumps([1, 2, 3]).encode()))
        with pytest.raises(ProtocolError, match="typed"):
            FrameDecoder().feed(frame_of(json.dumps({"id": 1}).encode()))

    def test_poisoned_decoder_stays_poisoned(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(b"XX garbage")
        with pytest.raises(ProtocolError, match="poisoned"):
            decoder.feed(encode_message({"type": "CLOSE", "id": 1}))

    def test_oversized_message_refused_at_encode_time(self):
        with pytest.raises(ProtocolError, match="frame limit"):
            encode_message({"type": "BATCH", "blob": "x" * (MAX_FRAME_PAYLOAD + 1)})

    def test_decoder_honors_a_smaller_limit(self):
        frame = encode_message({"type": "HELLO", "pad": "y" * 128})
        with pytest.raises(ProtocolError, match="length"):
            FrameDecoder(max_payload=64).feed(frame)


class TestValueDocuments:
    def test_atoms_round_trip(self):
        for atom in (0, -3, 120, "alice", ""):
            assert value_from_doc(value_to_doc(atom)) == atom

    def test_tuple_keeps_its_identifier(self):
        t = DBTuple(41, ("alice", "cs", 120))
        back = value_from_doc(value_to_doc(t))
        assert back == t and back.tid == 41

    def test_tuple_set_round_trips_with_tids(self):
        ts = TupleSet.of(
            2, [DBTuple(5, ("a", 1)), DBTuple(3, ("b", 2))]
        )
        back = value_from_doc(value_to_doc(ts))
        assert isinstance(back, TupleSet)
        assert back.arity == 2
        assert {t.tid for t in back} == {3, 5}
        key = lambda t: t.tid
        assert sorted(back, key=key) == sorted(ts, key=key)

    def test_relation_id_round_trips_with_arity(self):
        rid = RelationId("EMP", 5)
        back = value_from_doc(value_to_doc(rid))
        assert back == rid and back.arity == 5

    def test_bool_has_no_wire_encoding(self):
        with pytest.raises(ProtocolError):
            value_to_doc(True)

    def test_unknown_kind_raises(self):
        with pytest.raises(ProtocolError, match="unknown value kind"):
            value_from_doc({"k": "frobnicator"})

    def test_malformed_document_raises(self):
        with pytest.raises(ProtocolError, match="malformed"):
            value_from_doc({"k": "tuple"})  # missing tid/values


class TestErrorDocuments:
    def round_trip(self, err: ReproError) -> ReproError:
        doc = error_to_doc(err)
        # Errors must survive the actual wire, not just the dict.
        [frame] = FrameDecoder().feed(
            encode_message({"type": "ERROR", "id": 1, "error": doc})
        )
        return error_from_doc(frame["error"])

    def test_overloaded_keeps_its_governance_fields(self):
        back = self.round_trip(Overloaded(depth=65, limit=64, retry_after=0.125))
        assert isinstance(back, Overloaded)
        assert (back.depth, back.limit) == (65, 64)
        assert back.retry_after == pytest.approx(0.125)

    def test_circuit_open_keeps_retry_after(self):
        back = self.round_trip(CircuitOpen(retry_after=0.25, detail="storm"))
        assert isinstance(back, CircuitOpen)
        assert back.retry_after == pytest.approx(0.25)

    def test_budget_exceeded_keeps_the_meter_reading(self):
        back = self.round_trip(BudgetExceeded("foreach", 100, 101))
        assert isinstance(back, BudgetExceeded)
        assert (back.resource, back.limit, back.used) == ("foreach", 100, 101)

    def test_cancelled_keeps_the_reason(self):
        back = self.round_trip(Cancelled("cancelled by client"))
        assert isinstance(back, Cancelled)
        assert back.reason == "cancelled by client"

    def test_session_and_scheduler_closed(self):
        assert isinstance(
            self.round_trip(SessionClosed("gone")), SessionClosed
        )
        assert isinstance(self.round_trip(SchedulerClosed()), SchedulerClosed)

    def test_constraint_violation_names_the_constraint(self):
        back = self.round_trip(
            ConstraintViolation("salary-cap", "overpaid")
        )
        assert isinstance(back, ConstraintViolation)
        assert back.constraint_name == "salary-cap"

    def test_conflict_family(self):
        back = self.round_trip(RetryExhausted("hire", {"EMP"}, 5))
        assert isinstance(back, RetryExhausted)
        assert back.attempts == 5 and "EMP" in back.relations
        back = self.round_trip(TransactionConflict("hire", {"EMP"}, "beaten"))
        assert isinstance(back, TransactionConflict)

    def test_protocol_error_round_trips(self):
        back = self.round_trip(ProtocolError("bad frame marker"))
        assert isinstance(back, ProtocolError)
        assert "marker" in str(back)

    @pytest.mark.parametrize(
        "cls",
        [
            ExecutabilityError,
            CheckabilityError,
            ParseError,
            SchemaError,
            SortError,
            EvaluationError,
            ResourceError,
        ],
    )
    def test_simple_kinds_keep_their_class(self, cls):
        back = self.round_trip(cls("the message"))
        assert type(back) is cls
        assert "the message" in str(back)

    def test_unknown_kind_degrades_to_repro_error(self):
        back = error_from_doc({"kind": "from-the-future", "message": "hm"})
        assert type(back) is ReproError and "hm" in str(back)

    def test_malformed_error_frame_degrades_to_protocol_error(self):
        back = error_from_doc({"kind": "overloaded"})  # fields missing
        assert isinstance(back, ProtocolError)
