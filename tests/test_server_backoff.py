"""Client backoff corners: the ``retry_after`` hint versus the local
exponential clamp, and the reconnect path honoring the server's hint.

The server's ``retry_after`` is authoritative: resubmitting before the
capacity it promised returns is guaranteed to be rejected again, so the
client may back off *longer* than the hint (exponential growth) but never
shorter — even when the hint exceeds ``ClientRetry.max_delay``, which only
clamps the locally-generated exponential component.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.errors import Overloaded, SessionClosed, ShardUnavailable
from repro.server.client import Client, ClientRetry
from repro.server.protocol import FrameDecoder, encode_message, error_to_doc


class TestClientRetryDelay:
    def test_hint_above_max_delay_is_not_clamped(self):
        """Regression: the hint used to be clamped to ``max_delay``, so a
        server saying "come back in 5s" was retried after 2s — a
        guaranteed re-rejection."""
        retry = ClientRetry(max_attempts=4, base_delay=0.05, max_delay=2.0)
        assert retry.delay(1, retry_after=5.0) == 5.0

    def test_exponential_component_is_clamped(self):
        retry = ClientRetry(max_attempts=12, base_delay=0.05, max_delay=2.0)
        assert retry.delay(12) == 2.0

    def test_delay_is_max_of_hint_and_backoff(self):
        retry = ClientRetry(max_attempts=4, base_delay=0.05, max_delay=2.0)
        # attempt 3 → backoff 0.2, above the 0.1 hint
        assert retry.delay(3, retry_after=0.1) == pytest.approx(0.2)
        # hint above the current backoff wins
        assert retry.delay(1, retry_after=0.3) == pytest.approx(0.3)


class ScriptedServer:
    """A loopback listener answering each HELLO from a scripted reply list
    (callables taking the request id)."""

    def __init__(self, replies):
        self.replies = list(replies)
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(4)
        self.address = self.sock.getsockname()
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        for reply_fn in self.replies:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            with conn:
                decoder = FrameDecoder()
                hello = None
                while hello is None:
                    data = conn.recv(65536)
                    if not data:
                        break
                    for message in decoder.feed(data):
                        hello = message
                        break
                if hello is None:
                    continue
                conn.sendall(encode_message(reply_fn(hello["id"])))

    def close(self):
        self.sock.close()


def overloaded_reply(rid):
    return {
        "type": "ERROR",
        "id": rid,
        "error": error_to_doc(Overloaded(depth=9, limit=4, retry_after=0.75)),
    }


def welcome_reply(rid):
    return {"type": "WELCOME", "id": rid, "programs": {}, "relations": {}}


@pytest.fixture()
def recorded_sleeps(monkeypatch):
    sleeps: list[float] = []
    monkeypatch.setattr(
        "repro.server.client.time",
        type("T", (), {"sleep": staticmethod(sleeps.append),
                       "monotonic": staticmethod(time.monotonic)})(),
    )
    return sleeps


class TestReconnectBackoff:
    def test_overloaded_handshake_is_retried_with_the_hint(
        self, recorded_sleeps
    ):
        """A reconnect rejected by admission control backs off honoring
        the rejection's ``retry_after`` — above ``max_delay`` — and the
        next attempt completes the handshake."""
        server = ScriptedServer([overloaded_reply, welcome_reply])
        try:
            client = Client(
                *server.address,
                retry=ClientRetry(
                    max_attempts=3, base_delay=0.01, max_delay=0.05
                ),
                timeout=5.0,
            )
            welcome = client.connect()
            assert welcome["type"] == "WELCOME"
            assert 0.75 in recorded_sleeps
            # A successful handshake clears the remembered hint.
            assert client._last_retry_after == 0.0
            client.close()
        finally:
            server.close()

    def test_overloaded_handshake_exhaustion_raises_typed_error(
        self, recorded_sleeps
    ):
        server = ScriptedServer([overloaded_reply, overloaded_reply])
        try:
            client = Client(
                *server.address,
                retry=ClientRetry(
                    max_attempts=2, base_delay=0.01, max_delay=0.05
                ),
                timeout=5.0,
            )
            with pytest.raises(Overloaded):
                client.connect()
        finally:
            server.close()

    def test_shard_unavailable_handshake_is_retried_like_overloaded(
        self, recorded_sleeps
    ):
        """A handshake refused because a shard is down is the same
        retry-later contract as admission control."""
        def unavailable_reply(rid):
            return {
                "type": "ERROR",
                "id": rid,
                "error": error_to_doc(
                    ShardUnavailable(1, retry_after=0.6, state="down")
                ),
            }

        server = ScriptedServer([unavailable_reply, welcome_reply])
        try:
            client = Client(
                *server.address,
                retry=ClientRetry(
                    max_attempts=3, base_delay=0.01, max_delay=0.05
                ),
                timeout=5.0,
            )
            welcome = client.connect()
            assert welcome["type"] == "WELCOME"
            assert 0.6 in recorded_sleeps
            client.close()
        finally:
            server.close()

    def test_unreachable_server_backoff_honors_last_hint(
        self, recorded_sleeps
    ):
        """The OSError reconnect path sleeps at least the last observed
        ``retry_after`` (regression: it used to ignore the hint
        entirely)."""
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        placeholder.bind(("127.0.0.1", 0))
        address = placeholder.getsockname()
        placeholder.close()  # nothing listens here any more
        client = Client(
            *address,
            retry=ClientRetry(max_attempts=3, base_delay=0.01, max_delay=0.05),
            timeout=0.2,
        )
        client._last_retry_after = 0.9
        with pytest.raises(SessionClosed):
            client.connect()
        assert len(recorded_sleeps) == 2  # attempts 1 and 2 back off
        assert all(s >= 0.9 for s in recorded_sleeps)


class SessionServer:
    """One loopback connection: WELCOME the HELLO, then answer each
    subsequent request from a scripted reply list."""

    def __init__(self, replies):
        self.replies = list(replies)
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(1)
        self.address = self.sock.getsockname()
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        try:
            conn, _ = self.sock.accept()
        except OSError:
            return
        with conn:
            decoder = FrameDecoder()
            pending = list(self.replies)
            welcomed = False
            while pending:
                data = conn.recv(65536)
                if not data:
                    return
                for message in decoder.feed(data):
                    if not welcomed:
                        conn.sendall(
                            encode_message(welcome_reply(message["id"]))
                        )
                        welcomed = True
                        continue
                    if not pending:
                        return
                    reply_fn = pending.pop(0)
                    conn.sendall(encode_message(reply_fn(message["id"])))

    def close(self):
        self.sock.close()


class TestExecuteBackoff:
    def test_shard_unavailable_execute_resubmits_with_the_hint(
        self, recorded_sleeps
    ):
        """An EXECUTE refused with ShardUnavailable is a pre-execution
        rejection (the routed shard was dead, or the 2PC window durably
        presumed abort before the decision point): the client records the
        hint, backs off at least that long, and the resubmission commits."""
        def unavailable_reply(rid):
            return {
                "type": "ERROR",
                "id": rid,
                "error": error_to_doc(
                    ShardUnavailable(0, retry_after=0.4, state="suspect")
                ),
            }

        def executed_reply(rid):
            return {"type": "EXECUTED", "id": rid, "attempts": 1, "seq": 7}

        server = SessionServer([unavailable_reply, executed_reply])
        try:
            client = Client(
                *server.address,
                retry=ClientRetry(
                    max_attempts=3, base_delay=0.01, max_delay=0.05
                ),
                timeout=5.0,
            )
            result = client.execute("put", 1, 1)
            assert result.seq == 7
            assert client._last_retry_after == 0.4
            assert 0.4 in recorded_sleeps
        finally:
            server.close()

    def test_shard_unavailable_exhaustion_raises_typed(
        self, recorded_sleeps
    ):
        def unavailable_reply(rid):
            return {
                "type": "ERROR",
                "id": rid,
                "error": error_to_doc(
                    ShardUnavailable(0, retry_after=0.2, state="down")
                ),
            }

        server = SessionServer([unavailable_reply, unavailable_reply])
        try:
            client = Client(
                *server.address,
                retry=ClientRetry(
                    max_attempts=2, base_delay=0.01, max_delay=0.05
                ),
                timeout=5.0,
            )
            with pytest.raises(ShardUnavailable) as excinfo:
                client.execute("put", 1, 1)
            assert excinfo.value.retry_after == 0.2
            assert excinfo.value.state == "down"
        finally:
            server.close()
