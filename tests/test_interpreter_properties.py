"""Property tests on the operational semantics beyond the axiom schemas."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Schema, state_from_rows
from repro.logic import builder as b
from repro.transactions import Env, Interpreter, execute, satisfies


rows = st.lists(
    st.tuples(st.integers(0, 30), st.sampled_from("abc")),
    min_size=0, max_size=6, unique=True,
)


def make_state(data):
    schema = Schema()
    schema.add_relation("R", ("n", "tag"))
    return state_from_rows(schema, {"R": [tuple(r) for r in data]})


R = b.rel("R", 2)


class TestDeterminism:
    @given(rows, st.integers(0, 30), st.sampled_from("abc"))
    @settings(max_examples=60, deadline=None)
    def test_execution_is_a_function(self, data, n, tag):
        """'the resulting state of performing a transaction in a state is
        uniquely determined by the initial state and the transaction'."""
        state = make_state(data)
        tx = b.seq(
            b.insert(b.mktuple(b.atom(n), b.atom(tag)), "R"),
            b.delete(b.mktuple(b.atom(n + 1), b.atom(tag)), "R"),
        )
        assert execute(state, tx) == execute(state, tx)

    @given(rows)
    @settings(max_examples=40, deadline=None)
    def test_foreach_delete_all_empties(self, data):
        state = make_state(data)
        t = b.ftup_var("t", 2)
        tx = b.foreach(t, b.member(t, R), b.delete(t, "R"))
        assert len(execute(state, tx).relation("R")) == 0

    @given(rows, st.integers(0, 30), st.sampled_from("abc"))
    @settings(max_examples=60, deadline=None)
    def test_insert_delete_roundtrip(self, data, n, tag):
        """Deleting what was just inserted restores the relation contents
        (by value; the allocator may have moved)."""
        state = make_state(data)
        t = b.mktuple(b.atom(n), b.atom(tag))
        out = execute(state, b.seq(b.insert(t, "R"), b.delete(t, "R")))
        assert {x.values for x in out.relation("R")} <= {
            x.values for x in state.relation("R")
        }
        # strict equality unless (n, tag) was already present (then the
        # roundtrip deletes the original)
        if not state.relation("R").has_value((n, tag)):
            assert {x.values for x in out.relation("R")} == {
                x.values for x in state.relation("R")
            }

    @given(rows)
    @settings(max_examples=40, deadline=None)
    def test_immutability_of_inputs(self, data):
        state = make_state(data)
        snapshot = {x.values for x in state.relation("R")}
        t = b.ftup_var("t", 2)
        execute(state, b.foreach(t, b.member(t, R), b.delete(t, "R")))
        assert {x.values for x in state.relation("R")} == snapshot


class TestQuantifierDuality:
    @given(rows, st.integers(0, 30))
    @settings(max_examples=60, deadline=None)
    def test_forall_not_exists_not(self, data, bound):
        state = make_state(data)
        t = b.ftup_var("t", 2)
        body = b.implies(b.member(t, R), b.le(b.select(t, 1), b.atom(bound)))
        via_forall = satisfies(state, b.forall(t, body))
        via_exists = not satisfies(
            state,
            b.exists(t, b.land(b.member(t, R), b.gt(b.select(t, 1), b.atom(bound)))),
        )
        assert via_forall == via_exists

    @given(rows)
    @settings(max_examples=40, deadline=None)
    def test_setformer_counts_match_quantification(self, data):
        state = make_state(data)
        t = b.ftup_var("t", 2)
        former = b.setformer(t, t, b.member(t, R))
        from repro.transactions import evaluate

        assert evaluate(state, b.size_of(former)) == len(state.relation("R"))
