"""Admission control and the circuit breaker (repro.concurrent.admission).

Unit tests drive the controller and breaker directly (fake clock, no
threads); integration tests wire them into a real TransactionManager and
force deterministic overload with the ``on_evaluated`` gate.
"""

from __future__ import annotations

import threading

import pytest

from repro import (
    AdmissionController,
    CircuitBreaker,
    CircuitOpen,
    Database,
    Overloaded,
    RetryPolicy,
    Schema,
    TransactionStatus,
    transaction,
)
from repro.logic import builder as b


@pytest.fixture()
def schema():
    s = Schema()
    s.add_relation("A", ("k", "v"))
    s.add_relation("B", ("k", "v"))
    return s


@pytest.fixture()
def programs():
    x, y = b.atom_var("x"), b.atom_var("y")
    return {
        "put_a": transaction("put-a", (x, y), b.insert(b.mktuple(x, y), "A")),
        "put_b": transaction("put-b", (x, y), b.insert(b.mktuple(x, y), "B")),
    }


@pytest.fixture()
def db(schema):
    return Database(schema, window=2)


# ---------------------------------------------------------------------------
# AdmissionController (unit)
# ---------------------------------------------------------------------------


class TestAdmissionController:
    def test_reject_new_over_capacity(self):
        ctl = AdmissionController(max_pending=2, policy="reject-new")
        ctl.request("t1")
        ctl.request("t2")
        with pytest.raises(Overloaded) as exc:
            ctl.request("t3")
        assert exc.value.depth == 2 and exc.value.limit == 2
        assert exc.value.retry_after > 0
        assert ctl.rejected == 1 and ctl.depth == 2

    def test_begin_frees_a_slot(self):
        ctl = AdmissionController(max_pending=1)
        first = ctl.request("t1")
        assert not ctl.begin(first)
        ctl.request("t2")  # slot freed; admitted
        assert ctl.depth == 1

    def test_drop_oldest_sheds_the_queued_ticket(self):
        ctl = AdmissionController(max_pending=2, policy="drop-oldest")
        t1 = ctl.request("t1")
        t2 = ctl.request("t2")
        t3 = ctl.request("t3")  # admitted; t1 shed
        assert t1.shed and not t2.shed and not t3.shed
        assert isinstance(t1.shed_error, Overloaded)
        assert ctl.shed == 1 and ctl.depth == 2
        # The worker that eventually picks t1 up learns it was shed.
        assert ctl.begin(t1) is True
        assert ctl.begin(t2) is False

    def test_started_tickets_are_not_sheddable(self):
        ctl = AdmissionController(max_pending=1, policy="drop-oldest")
        t1 = ctl.request("t1")
        ctl.begin(t1)  # started: no longer sheddable, and its slot is freed
        t2 = ctl.request("t2")
        ctl.request("t3")  # full again; t2 (queued) is the one shed
        assert t2.shed and not t1.shed

    def test_retry_after_scales_with_depth(self):
        ctl = AdmissionController(max_pending=4, retry_hint_per_item=0.01)
        for i in range(4):
            ctl.request(f"t{i}")
        with pytest.raises(Overloaded) as exc:
            ctl.request("t4")
        assert exc.value.retry_after == pytest.approx(0.04)

    def test_validation_of_config(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0)
        with pytest.raises(ValueError):
            AdmissionController(policy="random-drop")

    def test_unbounded_controller_admits_everything(self):
        ctl = AdmissionController(max_pending=None)
        for i in range(100):
            ctl.request(f"t{i}")
        assert ctl.depth == 100 and ctl.rejected == 0


# ---------------------------------------------------------------------------
# CircuitBreaker (unit, fake clock)
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(clock, **kwargs) -> CircuitBreaker:
    defaults = dict(
        window=8, threshold=0.5, min_events=4, cooldown=1.0, probes=1
    )
    defaults.update(kwargs)
    return CircuitBreaker(clock=clock, **defaults)


class TestCircuitBreaker:
    def test_stays_closed_under_clean_traffic(self):
        breaker = make_breaker(FakeClock())
        for _ in range(20):
            breaker.record(True)
        assert breaker.state == "closed"
        assert breaker.admit() is False  # admitted, not a probe

    def test_trips_open_on_conflict_storm(self):
        breaker = make_breaker(FakeClock())
        for _ in range(4):
            breaker.record(False)
        assert breaker.state == "open"
        with pytest.raises(CircuitOpen) as exc:
            breaker.admit()
        assert exc.value.retry_after <= 1.0

    def test_needs_min_events_before_tripping(self):
        breaker = make_breaker(FakeClock(), min_events=4)
        breaker.record(False)
        breaker.record(False)
        assert breaker.state == "closed"  # 100% conflicts, but only 2 events

    def test_cooldown_then_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record(False)
        clock.advance(1.5)
        assert breaker.state == "half_open"
        assert breaker.admit() is True  # the probe
        with pytest.raises(CircuitOpen):
            breaker.admit()  # only one probe slot
        breaker.record(True, probe=True)
        assert breaker.state == "closed"
        assert breaker.admit() is False

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record(False)
        clock.advance(1.5)
        assert breaker.admit() is True
        breaker.record(False, probe=True)
        assert breaker.state == "open"
        with pytest.raises(CircuitOpen):
            breaker.admit()

    def test_release_probe_unwedges_half_open(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record(False)
        clock.advance(1.5)
        assert breaker.admit() is True
        breaker.release_probe()  # probe's evaluation failed: no verdict
        assert breaker.admit() is True  # slot is free again

    def test_late_outcomes_ignored_while_open(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record(False)
        breaker.record(True)  # pre-trip straggler: not probe evidence
        assert breaker.state == "open"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(window=4, min_events=5)
        with pytest.raises(ValueError):
            CircuitBreaker(probes=0)


# ---------------------------------------------------------------------------
# Manager integration
# ---------------------------------------------------------------------------


class TestManagerIntegration:
    def test_reject_new_surfaces_overloaded_from_submit(self, db, programs):
        """One worker is parked inside evaluation; the bounded queue fills
        behind it and the next submit is refused with a typed error."""
        release = threading.Event()
        parked = threading.Event()

        def gate(attempt: int) -> None:
            parked.set()
            assert release.wait(10)

        ctl = AdmissionController(max_pending=2, policy="reject-new")
        with db.concurrent(workers=1, admission=ctl) as mgr:
            holder = mgr.submit(programs["put_a"], 0, 0, on_evaluated=gate)
            assert parked.wait(10)
            queued = [mgr.submit(programs["put_a"], i, i) for i in (1, 2)]
            with pytest.raises(Overloaded) as exc:
                mgr.submit(programs["put_a"], 9, 9)
            assert exc.value.depth == 2
            release.set()
            assert holder.result().ok
            assert all(f.result().ok for f in queued)
        assert mgr.verify_serializable()
        depth = db.metrics.get("repro_admission_depth")
        assert depth is not None and depth.value == 0
        rejected = db.metrics.get("repro_admission_rejected_total")
        assert rejected.value == 1

    def test_drop_oldest_resolves_shed_future_with_typed_outcome(
        self, db, programs
    ):
        release = threading.Event()
        parked = threading.Event()

        def gate(attempt: int) -> None:
            parked.set()
            assert release.wait(10)

        ctl = AdmissionController(max_pending=2, policy="drop-oldest")
        with db.concurrent(workers=1, admission=ctl) as mgr:
            holder = mgr.submit(programs["put_a"], 0, 0, on_evaluated=gate)
            assert parked.wait(10)
            oldest = mgr.submit(programs["put_a"], 1, 1, label="victim")
            newer = mgr.submit(programs["put_a"], 2, 2)
            newest = mgr.submit(programs["put_a"], 3, 3)  # sheds "victim"
            release.set()
            shed_outcome = oldest.result()
            assert shed_outcome.status is TransactionStatus.ABORTED
            assert isinstance(shed_outcome.error, Overloaded)
            assert shed_outcome.attempts == 0  # never evaluated
            assert holder.result().ok
            assert newer.result().ok and newest.result().ok
        assert mgr.verify_serializable()
        assert db.metrics.get("repro_admission_shed_total").value == 1

    def test_breaker_opens_under_injected_conflict_storm(self, db, programs):
        """A chaos stub forces every validation to conflict; the breaker
        must trip and refuse the next submission with CircuitOpen."""

        class AlwaysConflict:
            def validation_conflict(self, label, attempt):
                return frozenset({"<storm>"})

        breaker = CircuitBreaker(
            window=8, threshold=0.5, min_events=4, cooldown=60.0, probes=1
        )
        ctl = AdmissionController(max_pending=None, breaker=breaker)
        from repro.concurrent.scheduler import TransactionManager

        mgr = TransactionManager(
            db,
            workers=1,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
            admission=ctl,
            chaos=AlwaysConflict(),
        )
        with mgr:
            outcomes = [
                mgr.submit(programs["put_a"], i, i).result()
                for i in range(2)  # 2 conflicted attempts each = 4 events
            ]
            assert all(
                o.status is TransactionStatus.ABORTED for o in outcomes
            )
            assert breaker.state == "open"
            with pytest.raises(CircuitOpen):
                mgr.submit(programs["put_a"], 9, 9)
        state = db.metrics.get("repro_breaker_state", state="open")
        assert state is not None and state.value == 1.0
        transitions = db.metrics.get("repro_breaker_transitions_total", to="open")
        assert transitions.value >= 1

    def test_breaker_recovers_after_storm_passes(self, db, programs):
        class StormUntilCleared:
            def __init__(self):
                self.storming = True

            def validation_conflict(self, label, attempt):
                return frozenset({"<storm>"}) if self.storming else None

        chaos = StormUntilCleared()
        breaker = CircuitBreaker(
            window=8, threshold=0.5, min_events=4, cooldown=0.0, probes=1
        )
        ctl = AdmissionController(max_pending=None, breaker=breaker)
        from repro.concurrent.scheduler import TransactionManager

        mgr = TransactionManager(
            db,
            workers=1,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
            admission=ctl,
            chaos=chaos,
        )
        with mgr:
            for i in range(3):
                mgr.submit(programs["put_a"], i, i).result()
            assert breaker.state in ("open", "half_open")
            chaos.storming = False
            # cooldown=0: the next submission is the half-open probe; its
            # clean commit closes the breaker.
            probe = mgr.submit(programs["put_a"], 10, 10).result()
            assert probe.ok
            assert breaker.state == "closed"
            assert mgr.submit(programs["put_a"], 11, 11).result().ok
        assert mgr.verify_serializable()

    def test_admission_adopts_database_metrics(self, db, programs):
        ctl = AdmissionController(max_pending=4)
        with db.concurrent(workers=1, admission=ctl) as mgr:
            mgr.execute(programs["put_a"], 1, 1)
        assert ctl.metrics is db.metrics
