"""Interpreter fuel and cooperative cancellation (repro.transactions.budget).

The contract: a runaway evaluation raises a *typed* error at a budget
checkpoint — mid-foreach, mid-enumeration, mid-set-former — and because
states are immutable values, an interrupted evaluation leaves no trace.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import (
    Budget,
    BudgetExceeded,
    CancelToken,
    Cancelled,
    Database,
    EvaluationError,
    ReproError,
    ResourceError,
    Schema,
    transaction,
)
from repro.db.state import state_from_rows
from repro.logic import builder as b
from repro.transactions import Interpreter


def big_state(n: int = 200) -> tuple[Schema, object]:
    schema = Schema()
    schema.add_relation("R", ("k", "v"))
    schema.add_relation("OUT", ("k", "v"))
    return schema, state_from_rows(schema, {"R": [(i, i) for i in range(n)]})


def sweep():
    t = b.ftup_var("t", 2)
    return b.foreach(t, b.member(t, b.rel("R", 2)), b.insert(t, "OUT"))


class TestBudgetLimits:
    def test_max_steps_interrupts_mid_evaluation(self):
        _, state = big_state(200)
        interp = Interpreter(budget=Budget(max_steps=50))
        with pytest.raises(BudgetExceeded) as exc:
            interp.run(state, sweep())
        assert exc.value.resource == "steps"
        assert exc.value.used > exc.value.limit == 50

    def test_max_foreach_iterations(self):
        _, state = big_state(40)
        interp = Interpreter(budget=Budget(max_foreach_iterations=10))
        with pytest.raises(BudgetExceeded) as exc:
            interp.run(state, sweep())
        assert exc.value.resource == "foreach"

    def test_max_derived_set_aborts_while_collecting(self):
        _, state = big_state(40)
        t = b.ftup_var("t", 2)
        former = b.setformer(t, t, b.member(t, b.rel("R", 2)))
        interp = Interpreter(budget=Budget(max_derived_set=5))
        with pytest.raises(BudgetExceeded) as exc:
            interp.eval_object(state, former)
        assert exc.value.resource == "derived-set"
        # The limit bounds work done, not just result size: collection
        # stopped at the threshold instead of materializing all 40.
        assert exc.value.used == 6

    def test_deadline_interrupts_mid_evaluation(self):
        _, state = big_state(5000)
        interp = Interpreter(budget=Budget.within(0.001))
        started = time.perf_counter()
        with pytest.raises(BudgetExceeded) as exc:
            interp.run(state, sweep())
        assert exc.value.resource == "deadline"
        assert time.perf_counter() - started < 1.0

    def test_unlimited_budget_changes_nothing(self):
        _, state = big_state(30)
        plain = Interpreter().run(state, sweep())
        metered = Interpreter(budget=Budget()).run(state, sweep())
        assert plain == metered

    def test_enumeration_is_metered(self):
        """Active-domain enumeration (the exists fallback) burns steps."""
        schema, state = big_state(60)
        x = b.atom_var("x")
        probe = b.exists(x, b.eq(x, b.atom("absent")))
        interp = Interpreter(budget=Budget(max_steps=20))
        with pytest.raises(BudgetExceeded):
            interp.eval_formula(state, probe)


class TestCancelToken:
    def test_cancel_is_sticky_and_typed(self):
        token = CancelToken()
        assert not token.cancelled
        token.cancel("operator abort")
        assert token.cancelled
        with pytest.raises(Cancelled) as exc:
            token.raise_if_cancelled()
        assert exc.value.reason == "operator abort"

    def test_cancel_from_another_thread_stops_evaluation(self):
        _, state = big_state(5000)
        token = CancelToken()
        interp = Interpreter(budget=Budget(cancel=token))
        result: dict = {}

        def run():
            try:
                interp.run(state, sweep())
                result["outcome"] = "completed"
            except Cancelled as err:
                result["outcome"] = err

        token.cancel("shutdown")  # set before the worker starts: the
        worker = threading.Thread(target=run)  # evaluation must observe the
        worker.start()  # cross-thread flag at its first checkpoint
        worker.join(timeout=10)
        assert isinstance(result["outcome"], Cancelled)
        assert result["outcome"].reason == "shutdown"

    def test_mid_flight_cancellation(self):
        """A genuinely concurrent cancel: the evaluation is already running
        when the token fires."""
        _, state = big_state(20_000)
        token = CancelToken()
        interp = Interpreter(budget=Budget(cancel=token))
        started = threading.Event()
        result: dict = {}

        class Tripwire:
            # A domain object whose first read signals the main thread.
            pass

        def run():
            started.set()
            try:
                interp.run(state, sweep())
                result["outcome"] = "completed"
            except Cancelled as err:
                result["outcome"] = err

        worker = threading.Thread(target=run)
        worker.start()
        assert started.wait(10)
        token.cancel()
        worker.join(timeout=10)
        # Either the cancel landed mid-evaluation (typed) or the evaluation
        # finished first (tiny machines) — never a hang or untyped error.
        assert result["outcome"] == "completed" or isinstance(
            result["outcome"], Cancelled
        )


class TestBudgetMeter:
    def test_fresh_zeroes_counters_keeps_limits(self):
        token = CancelToken()
        meter = Budget(max_steps=100, max_foreach_iterations=7, cancel=token)
        meter.tick()
        meter.count_foreach(3)
        clone = meter.fresh()
        assert clone.steps == 0 and clone.foreach_iterations == 0
        assert clone.max_steps == 100 and clone.max_foreach_iterations == 7
        assert clone.cancel is token

    def test_fresh_keeps_absolute_deadline(self):
        meter = Budget.within(60.0)
        assert meter.fresh().deadline_at == meter.deadline_at

    def test_remaining_and_expired(self):
        assert Budget().remaining_seconds() is None
        assert not Budget().expired()
        assert Budget.within(-1.0).expired()
        assert Budget.within(60.0).remaining_seconds() > 0


class TestEngineBudget:
    def test_execute_with_budget_raises_and_does_not_advance(self):
        schema, state = big_state(200)
        db = Database(schema, window=2, initial=state)
        runaway = transaction("runaway", (), sweep())
        before = db.current
        with pytest.raises(BudgetExceeded):
            db.execute(runaway, budget=Budget(max_steps=20))
        assert db.current is before
        assert db.records == []  # never reached constraint checking

    def test_budget_template_not_consumed_across_calls(self):
        schema, state = big_state(5)
        db = Database(schema, window=2, initial=state)
        ok = transaction("ok", (), sweep())
        budget = Budget(max_steps=10_000)
        db.execute(ok, budget=budget)
        db.execute(ok, budget=budget)  # same template, fresh meter each time
        assert budget.steps == 0
        assert len(db.records) == 2


class TestTypedHierarchy:
    def test_budget_errors_are_resource_and_evaluation_errors(self):
        err = BudgetExceeded("steps", 5, 6)
        assert isinstance(err, ResourceError)
        assert isinstance(err, EvaluationError)
        assert isinstance(err, ReproError)
        assert isinstance(Cancelled(), ResourceError)
        assert isinstance(Cancelled(), EvaluationError)
