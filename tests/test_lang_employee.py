"""The employee domain written in the surface language, equivalent to the
Python-built one — the parser's acceptance test."""

import pytest

from repro.constraints import ConstraintKind, check_state, check_transition
from repro.lang import parse

EMPLOYEE_SOURCE = """
relation EMP(e-name, e-dept, salary, age, m-status);
relation DEPT(d-name, chair, location);
relation PROJ(p-name, t-alloc);
relation ALLOC(a-emp, a-proj, perc);
relation SKILL(s-emp, s-no);

// Example 1 (1): each employee works for at least one project
constraint every-employee-allocated [window 1] :=
  forall s: state. holds(s, forall e: EMP. e in EMP ->
    (exists a: ALLOC. a in ALLOC and a-emp(a) = e-name(e)));

// Example 1 (3): nobody allocated over 100%
constraint allocation-within-limit [window 1] :=
  forall s: state. holds(s, forall e: EMP. e in EMP ->
    sum({ perc(a) | a: ALLOC . a in ALLOC and a-emp(a) = e-name(e) }) <= 100);

// Example 2 (transaction form)
constraint once-married [window 2, assume "employees are never rehired"] :=
  forall s: state, t: trans, e: EMP.
    holds(s, e in EMP) and holds(after(s, t), e in EMP)
      and at(s, age(e)) < at(after(s, t), age(e))
      and at(s, m-status(e)) != "S"
    -> at(after(s, t), m-status(e)) != "S";

// Example 3 (skills)
constraint skill-retention [window 2] :=
  forall s: state, t: trans, e: EMP, k: SKILL.
    holds(s, e in EMP) and holds(after(s, t), e in EMP)
      and holds(s, k in SKILL) and at(s, s-emp(k)) = at(s, e-name(e))
    -> holds(after(s, t), k in SKILL);

transaction hire(name, dept, sal, years, status) :=
  insert row(name, dept, sal, years, status) into EMP;

transaction allocate(who, proj, pct) := insert row(who, proj, pct) into ALLOC;

transaction set-salary(who, amount) :=
  foreach e: EMP | e in EMP and e-name(e) = who
  do set e.salary := amount end;

transaction birthday(who) :=
  foreach e: EMP | e in EMP and e-name(e) = who
  do set e.age := age(e) + 1 end;

transaction cancel-project(pname, v) :=
  assign E := { a-emp(a) | a: ALLOC . a in ALLOC and a-proj(a) = pname } ;;
  (foreach a: ALLOC | a in ALLOC and a-proj(a) = pname
   do delete a from ALLOC end) ;;
  (foreach p: PROJ | p in PROJ and p-name(p) = pname
   do delete p from PROJ end) ;;
  (foreach e: EMP | e in EMP and e-name(e) in E do
     if exists a2: ALLOC. a2 in ALLOC and a-emp(a2) = e-name(e)
     then set e.salary := salary(e) - v
     else delete e from EMP
     end
   end);
"""


@pytest.fixture(scope="module")
def program():
    return parse(EMPLOYEE_SOURCE)


class TestParsedConstraintsMatchBuiltins:
    def test_classification_agrees(self, program, domain):
        builtin = {c.name: c.kind for c in domain.all_constraints}
        for c in program.constraints:
            assert c.kind is builtin[c.name], c.name

    def test_static_verdicts_agree_on_states(self, program, domain, sample_state):
        states = [
            sample_state,
            domain.hire.run(sample_state, "eve", "cs", 10, 20, "S"),
            domain.allocate.run(sample_state, "bob", "ai", 30),
        ]
        for name in ("every-employee-allocated", "allocation-within-limit"):
            parsed = program.constraint(name)
            builtin = domain.schema  # noqa: F841 (builtin via domain method)
            reference = next(c for c in domain.static_constraints if c.name == name)
            for state in states:
                assert (
                    check_state(parsed, state).ok
                    == check_state(reference, state).ok
                ), (name, state)

    def test_transaction_verdicts_agree_on_transitions(self, program, domain, sample_state):
        transitions = [
            (sample_state, domain.birthday.run(
                domain.marry.run(sample_state, "alice", "S"), "alice")),
            (sample_state, domain.fire.run(sample_state, "dan")),
            (sample_state, domain.set_salary.run(sample_state, "alice", 500)),
        ]
        for name in ("once-married", "skill-retention"):
            parsed = program.constraint(name)
            reference = next(
                c for c in domain.transaction_constraints if c.name == name
            )
            for before, after in transitions:
                assert (
                    check_transition(parsed, before, after).ok
                    == check_transition(reference, before, after).ok
                ), name


class TestParsedTransactionsMatchBuiltins:
    def test_cancel_project_equivalent(self, program, domain, sample_state):
        parsed = program.transactions["cancel-project"].run(sample_state, "net", 10)
        builtin = domain.cancel_project.run(sample_state, "net", 10)
        for rel in ("EMP", "PROJ", "ALLOC", "SKILL"):
            assert {t.values for t in parsed.relation(rel)} == {
                t.values for t in builtin.relation(rel)
            }, rel

    def test_simple_transactions_equivalent(self, program, domain, sample_state):
        pairs = [
            ("set-salary", domain.set_salary, ("alice", 321)),
            ("birthday", domain.birthday, ("bob",)),
            ("allocate", domain.allocate, ("bob", "ai", 1)),
        ]
        for name, builtin, args in pairs:
            parsed_after = program.transactions[name].run(sample_state, *args)
            builtin_after = builtin.run(sample_state, *args)
            assert parsed_after == builtin_after, name

    def test_engine_enforces_parsed_constraints(self):
        from repro.errors import ConstraintViolation
        from repro.engine import Database

        fresh = parse(EMPLOYEE_SOURCE)
        for c in fresh.constraints:
            fresh.schema.add_constraint(c)
        db = Database(fresh.schema, window=2)
        with pytest.raises(ConstraintViolation):
            db.execute(fresh.transactions["hire"], "solo", "cs", 10, 30, "S")
