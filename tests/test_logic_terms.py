"""The two-layer expression AST: layers, sort checking, traversal."""

import pytest

from repro.errors import SortError
from repro.logic import builder as b
from repro.logic import symbols as sym
from repro.logic.sorts import ATOM, STATE, tuple_sort
from repro.logic.terms import (
    App,
    AtomConst,
    ConstExpr,
    EvalObj,
    EvalState,
    Layer,
    RelConst,
    RelIdConst,
    Var,
    is_pure_fluent,
    join_layers,
)


class TestLayers:
    def test_fluent_var_layer(self):
        assert b.ftup_var("e", 5).layer is Layer.FLUENT

    def test_situational_var_layer(self):
        assert b.stup_var("e", 5).layer is Layer.SITUATIONAL

    def test_atom_const_is_either(self):
        assert b.atom(3).layer is Layer.EITHER

    def test_state_constant_is_situational(self):
        assert b.state_const("s0").layer is Layer.SITUATIONAL

    def test_rel_const_is_fluent(self):
        assert RelConst("EMP", 5).layer is Layer.FLUENT

    def test_rel_id_is_either(self):
        assert RelIdConst("EMP", 5).layer is Layer.EITHER

    def test_join_rejects_mixing(self):
        with pytest.raises(SortError):
            join_layers([Layer.FLUENT, Layer.SITUATIONAL], "ctx")

    def test_rigid_app_over_situational_args_is_situational(self):
        s = b.state_var("s")
        e = b.ftup_var("e", 5)
        age_at_s = b.at(s, b.attr("age", 5, 4, e))
        expr = b.plus(age_at_s, b.atom(1))
        assert expr.layer is Layer.SITUATIONAL

    def test_state_changing_over_situational_args_rejected(self):
        s = b.state_var("s")
        e = b.ftup_var("e", 5)
        with pytest.raises(SortError):
            b.insert(b.at(s, e), "EMP")

    def test_transition_var_flags(self):
        t = b.trans_var("t")
        assert t.is_transition_var and not t.is_state_var
        s = b.state_var("s")
        assert s.is_state_var and not s.is_transition_var


class TestSortChecking:
    def test_app_checks_arity(self):
        with pytest.raises(SortError):
            App(sym.PLUS, (b.atom(1),))

    def test_app_checks_sorts(self):
        with pytest.raises(SortError):
            App(sym.PLUS, (b.atom(1), b.ftup_var("e", 2)))

    def test_atom_const_rejects_negative(self):
        with pytest.raises(SortError):
            AtomConst(-1)

    def test_atom_const_rejects_bool(self):
        with pytest.raises(SortError):
            AtomConst(True)

    def test_eval_obj_requires_state(self):
        with pytest.raises(SortError):
            EvalObj(b.atom(1), b.ftup_var("e", 2))

    def test_eval_obj_requires_fluent_expr(self):
        s = b.state_var("s")
        with pytest.raises(SortError):
            EvalObj(s, b.stup_var("e", 2))

    def test_eval_obj_rejects_state_sorted_fluent(self):
        s = b.state_var("s")
        with pytest.raises(SortError):
            EvalObj(s, b.identity())

    def test_eval_state_requires_state_sorted_fluent(self):
        s = b.state_var("s")
        with pytest.raises(SortError):
            EvalState(s, b.ftup_var("e", 2))

    def test_eval_state_sort(self):
        s = b.state_var("s")
        assert EvalState(s, b.identity()).sort == STATE

    def test_atom_vars_may_be_rigid(self):
        """Atoms are rigid designators: EITHER layer is allowed for them."""
        assert Var("x", ATOM, Layer.EITHER).layer is Layer.EITHER

    def test_tuple_vars_cannot_be_either(self):
        with pytest.raises(SortError):
            Var("e", tuple_sort(2), Layer.EITHER)

    def test_state_vars_cannot_be_either(self):
        with pytest.raises(SortError):
            Var("s", STATE, Layer.EITHER)


class TestTraversal:
    def test_free_vars(self):
        e = b.ftup_var("e", 5)
        expr = b.plus(b.attr("salary", 5, 3, e), b.atom(1))
        assert expr.free_vars() == frozenset({e})

    def test_size_counts_nodes(self):
        expr = b.plus(b.atom(1), b.atom(2))
        assert expr.size() == 3

    def test_iter_subnodes_preorder(self):
        expr = b.plus(b.atom(1), b.atom(2))
        kinds = [type(n).__name__ for n in expr.iter_subnodes()]
        assert kinds == ["App", "AtomConst", "AtomConst"]

    def test_is_pure_fluent(self):
        e = b.ftup_var("e", 5)
        assert is_pure_fluent(b.attr("age", 5, 4, e))
        s = b.state_var("s")
        assert not is_pure_fluent(b.at(s, e))

    def test_with_children_rebuilds(self):
        expr = b.plus(b.atom(1), b.atom(2))
        rebuilt = expr.with_children((b.atom(3), b.atom(4)))
        assert rebuilt == b.plus(b.atom(3), b.atom(4))

    def test_const_expr_roundtrip(self):
        c = ConstExpr("s0", STATE)
        assert c.with_children(()) is c
        assert c.sort == STATE


class TestEquality:
    def test_structural_equality(self):
        assert b.plus(b.atom(1), b.atom(2)) == b.plus(b.atom(1), b.atom(2))

    def test_vars_differ_by_sort(self):
        assert Var("x", ATOM, Layer.FLUENT) != Var("x", tuple_sort(1), Layer.FLUENT)

    def test_vars_differ_by_layer(self):
        assert Var("x", tuple_sort(1), Layer.FLUENT) != Var(
            "x", tuple_sort(1), Layer.SITUATIONAL
        )

    def test_hashable(self):
        assert len({b.atom(1), b.atom(1), b.atom(2)}) == 2
