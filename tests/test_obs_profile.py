"""``Database.profile()``: per-transaction breakdowns and the exports."""

from __future__ import annotations

import json

import pytest

from repro import Database, Schema, transaction
from repro.logic import builder as b
from repro.obs import MetricsRegistry, Span, profile_from_json


@pytest.fixture()
def schema():
    s = Schema()
    s.add_relation("A", ("k", "v"))
    s.add_relation("B", ("k", "v"))
    return s


@pytest.fixture()
def programs():
    x, y = b.atom_var("x"), b.atom_var("y")
    t = b.ftup_var("t", 2)
    return {
        "put_a": transaction("put-a", (x, y), b.insert(b.mktuple(x, y), "A")),
        "copy": transaction(
            "copy-a-to-b",
            (),
            b.foreach(t, b.member(t, b.rel("A", 2)), b.insert(t, "B")),
        ),
    }


class TestProfileBlock:
    def test_traces_every_executed_transaction(self, schema, programs):
        db = Database(schema, window=2)
        with db.profile() as prof:
            db.execute(programs["put_a"], 1, 10)
            db.execute(programs["put_a"], 2, 20)
            db.execute(programs["copy"])
        txns = prof.transactions()
        assert [t.label for t in txns] == ["put-a", "put-a", "copy-a-to-b"]
        assert all(t.root.kind == "transaction" for t in txns)
        # The copy touched both relations; foreach iterated per A-tuple.
        copy = txns[2]
        assert copy.touched() == ("A", "B")
        iters = [s for s in copy.root.walk() if s.kind == "foreach-iter"]
        assert len(iters) == 2
        assert copy.step_count() >= 4  # txn + foreach + iters + actions

    def test_tracer_detached_after_block(self, schema, programs):
        db = Database(schema, window=2)
        with db.profile() as prof:
            db.execute(programs["put_a"], 1, 10)
        assert db.interpreter.tracer is None
        db.execute(programs["put_a"], 2, 20)  # untraced
        assert len(prof.transactions()) == 1

    def test_nested_profile_restores_previous_tracer(self, schema, programs):
        db = Database(schema, window=2)
        with db.profile() as outer:
            db.execute(programs["put_a"], 1, 10)
            outer_tracer = db.interpreter.tracer
            with db.profile() as inner:
                db.execute(programs["put_a"], 2, 20)
            assert db.interpreter.tracer is outer_tracer
            db.execute(programs["put_a"], 3, 30)
        assert len(outer.transactions()) == 2
        assert len(inner.transactions()) == 1

    def test_breakdown_aggregates_self_time(self, schema, programs):
        db = Database(schema, window=2)
        with db.profile() as prof:
            db.execute(programs["put_a"], 1, 10)
            db.execute(programs["put_a"], 2, 20)
        rows = dict(
            (key, (total, hits))
            for key, total, hits in prof.breakdown()
        )
        assert rows["action:insert2"][1] == 2
        assert rows["transaction:put-a"][1] == 2
        assert all(total >= 0.0 for total, _ in rows.values())

    def test_render_mentions_transactions_and_hotspots(self, schema, programs):
        db = Database(schema, window=2)
        with db.profile() as prof:
            db.execute(programs["put_a"], 1, 10)
        text = prof.render()
        assert "profile breakdown" in text
        assert "put-a" in text and "action:insert2" in text

    def test_flame_rendering_indents_children(self, schema, programs):
        db = Database(schema, window=2)
        with db.profile() as prof:
            db.execute(programs["copy"])
        (txn,) = prof.transactions()
        flame = txn.flame()
        lines = flame.splitlines()
        assert lines[0].startswith("transaction copy-a-to-b")
        assert any(line.startswith("  foreach ") for line in lines)

    def test_max_spans_flows_through(self, schema, programs):
        db = Database(schema, window=2)
        db.execute(programs["put_a"], 1, 10)
        db.execute(programs["put_a"], 2, 20)
        with db.profile(max_spans=2) as prof:
            db.execute(programs["copy"])
        assert prof.tracer.span_count == 2
        assert prof.tracer.dropped > 0
        assert "dropped" in prof.render()


class TestProfileExport:
    def test_json_round_trip(self, schema, programs):
        db = Database(schema, window=2)
        with db.profile() as prof:
            db.execute(programs["put_a"], 1, 10)
            db.execute(programs["copy"])
        doc = profile_from_json(prof.to_json())
        roots = doc["trace"]["roots"]
        assert [r.label for r in roots] == ["put-a", "copy-a-to-b"]
        assert all(isinstance(r, Span) for r in roots)
        # The rebuilt spans carry the same structure the live tracer saw.
        live = [s.label for root in prof.tracer.roots() for s in root.walk()]
        rebuilt = [s.label for root in roots for s in root.walk()]
        assert rebuilt == live
        assert doc["breakdown"] == json.loads(prof.to_json())["breakdown"]

    def test_exposition_includes_scheduler_metrics(self, schema, programs):
        db = Database(schema, window=2)
        with db.profile() as prof:
            with db.concurrent(workers=2, seed=7) as mgr:
                outcomes = mgr.run_all(
                    [(programs["put_a"], i, i) for i in range(6)]
                )
            assert all(o.ok for o in outcomes)
        text = prof.exposition()
        assert "repro_commits_total 6" in text
        assert 'repro_txn_latency_seconds{quantile="0.5"}' in text
        # Worker threads traced into the same profile.
        assert len(prof.transactions()) == 6

    def test_profile_without_metrics_exports_empty(self):
        from repro.obs import Profile, Tracer

        prof = Profile(Tracer())
        assert prof.exposition() == ""
        assert json.loads(prof.to_json())["metrics"] == {}

    def test_durable_database_reports_journal_metrics(
        self, schema, programs, tmp_path
    ):
        db = Database(schema, window=2)
        db.durable(tmp_path / "store", checkpoint_every=2)
        db.execute(programs["put_a"], 1, 10)
        db.execute(programs["put_a"], 2, 20)
        db.execute(programs["put_a"], 3, 30)
        db.close()
        assert db.metrics.counter("repro_journal_appends_total").value == 3
        assert db.metrics.histogram("repro_journal_append_seconds").count == 3
        assert db.metrics.counter("repro_checkpoints_total").value == 1
        assert db.metrics.histogram("repro_checkpoint_seconds").count == 1
        text = db.metrics.exposition()
        assert "repro_journal_appends_total 3" in text

    def test_from_store_attaches_registry(self, schema, programs, tmp_path):
        db = Database(schema, window=2)
        db.durable(tmp_path / "store")
        db.execute(programs["put_a"], 1, 10)
        db.close()
        db2, recovery = Database.from_store(schema, tmp_path / "store", window=2)
        assert recovery.seq == 1
        db2.execute(programs["put_a"], 2, 20)
        db2.close()
        assert db2.metrics.counter("repro_journal_appends_total").value == 1

    def test_database_owns_a_registry_by_default(self, schema):
        db = Database(schema, window=2)
        assert isinstance(db.metrics, MetricsRegistry)
        custom = MetricsRegistry()
        db2 = Database(schema, window=2, metrics=custom)
        assert db2.metrics is custom
