"""Static footprint analysis: mentions, widening, eligibility, blockers."""

from __future__ import annotations

import pytest

from repro.constraints.model import Constraint
from repro.db.schema import Schema
from repro.eval.footprint import Footprint, constraint_footprint
from repro.logic import builder as b


def cap_constraint(name: str, relation: str, arity: int, limit: int) -> Constraint:
    """``∀s: s::(size(relation) <= limit)`` — exact footprint {relation}."""
    s = b.state_var("s")
    return Constraint(
        name,
        b.forall(s, b.holds(s, b.le(b.size_of(b.rel(relation, arity)), b.atom(limit)))),
    )


@pytest.fixture()
def schema():
    sch = Schema()
    sch.add_relation("R", ("a",))
    sch.add_relation("S", ("x", "y"))
    sch.add_relation("T", ("p", "q"))
    return sch


class TestDirectMentions:
    def test_cap_constraint_mentions_only_its_relation(self, schema):
        fp = constraint_footprint(cap_constraint("cap", "R", 1, 10), schema)
        assert fp.eligible and not fp.universe
        assert fp.relations == frozenset({"R"})
        assert fp.arities == frozenset()

    def test_domain_static_constraints_are_bounded(self, domain):
        for c in (
            domain.every_employee_allocated(),
            domain.alloc_references_project(),
            domain.allocation_within_limit(),
        ):
            fp = constraint_footprint(c, domain.schema)
            assert fp.bounded, fp

    def test_every_employee_allocated_footprint(self, domain):
        fp = constraint_footprint(
            domain.every_employee_allocated(), domain.schema
        )
        # Mentions EMP and ALLOC directly; fluent tuple variables of arity 5
        # and 3 widen to every same-arity relation — which pulls in DEPT
        # (arity 3) but not PROJ (2) or SKILL (2).
        assert fp.relations == frozenset({"EMP", "ALLOC", "DEPT"})
        assert fp.arities == frozenset({3, 5})


class TestArityWidening:
    def test_fluent_quantifier_widens_by_arity(self, schema):
        s = b.state_var("s")
        e = b.ftup_var("e", 2)
        c = Constraint(
            "some-pair",
            b.forall(
                s,
                b.holds(s, b.forall(e, b.member(e, b.rel("S", 2)))),
            ),
        )
        fp = constraint_footprint(c, schema)
        # The fluent ∀e enumerates the full arity-2 active domain, so T is
        # in the footprint even though the formula never names it.
        assert fp.relations == frozenset({"S", "T"})
        assert fp.arities == frozenset({2})

    def test_blockers_catch_future_relations_of_widened_arity(self, schema):
        s = b.state_var("s")
        e = b.ftup_var("e", 2)
        c = Constraint(
            "some-pair",
            b.forall(s, b.holds(s, b.forall(e, b.member(e, b.rel("S", 2))))),
        )
        fp = constraint_footprint(c, schema)
        arities = {"R": 1, "S": 2, "T": 2, "NEW2": 2, "NEW9": 9}
        # A newly created arity-2 relation blocks (enumeration grows) ...
        assert fp.blockers({"NEW2"}, arities.get) == frozenset({"NEW2"})
        # ... but an arity-9 one cannot affect this constraint.
        assert fp.blockers({"NEW9"}, arities.get) == frozenset()

    def test_unknown_arity_blocks_conservatively(self, schema):
        fp = constraint_footprint(cap_constraint("cap", "R", 1, 10), schema)
        fp_widened = Footprint(
            constraint_name=fp.constraint_name,
            relations=fp.relations,
            arities=frozenset({1}),
            universe=False,
            eligible=True,
            reason="",
        )
        assert fp_widened.blockers({"MYSTERY"}, lambda name: None) == frozenset(
            {"MYSTERY"}
        )


class TestBlockers:
    def test_disjoint_touch_does_not_block(self, schema):
        fp = constraint_footprint(cap_constraint("cap", "R", 1, 10), schema)
        arity = {"R": 1, "S": 2, "T": 2}.get
        assert fp.blockers({"S", "T"}, arity) == frozenset()
        assert fp.blockers({"R", "S"}, arity) == frozenset({"R"})
        assert fp.blockers((), arity) == frozenset()

    def test_universe_blocks_on_any_touch_but_not_on_none(self, domain):
        s = b.state_var("s")
        s2 = b.state_var("s2")
        c = Constraint("frozen", b.forall([s, s2], b.eq(s, s2)))
        fp = constraint_footprint(c, domain.schema)
        assert fp.eligible and fp.universe and not fp.bounded
        assert fp.blockers({"PROJ"}, lambda n: 2) == frozenset({"PROJ"})
        assert fp.blockers((), lambda n: 2) == frozenset()

    def test_ineligible_blocks_even_with_empty_touch_set(self, domain):
        fp = constraint_footprint(domain.no_eternal_project(), domain.schema)
        assert not fp.eligible
        # blockers() for ineligible footprints returns the whole touched set
        # (and the checker refuses before asking when it is empty).
        assert fp.blockers({"PROJ"}, lambda n: 2) == frozenset({"PROJ"})


class TestEligibility:
    def test_existential_state_quantification_is_ineligible(self, domain):
        fp = constraint_footprint(domain.no_eternal_project(), domain.schema)
        assert not fp.eligible
        assert "existential" in fp.reason

    def test_transition_quantification_is_ineligible(self, domain):
        fp = constraint_footprint(domain.skill_retention(), domain.schema)
        assert not fp.eligible
        assert "transition" in fp.reason

    def test_state_changing_application_is_ineligible(self, domain):
        fp = constraint_footprint(
            domain.dept_deletion_precondition(), domain.schema
        )
        assert not fp.eligible
        assert "state-changing" in fp.reason

    def test_atom_variable_widens_to_universe(self, schema):
        s = b.state_var("s")
        n = b.atom_var("n")
        c = Constraint(
            "has-r",
            b.forall(
                [s, n],
                b.holds(s, b.member(b.mktuple(n), b.rel("R", 1))),
            ),
        )
        fp = constraint_footprint(c, schema)
        assert fp.eligible and fp.universe

    def test_situationally_bound_tuple_variable_widens_to_universe(self, schema):
        s = b.state_var("s")
        e = b.ftup_var("e", 2)
        # e is bound *outside* any w:: — the situational evaluator
        # enumerates it across all window states and dereferences by
        # identifier, so no relation footprint bounds it.
        c = Constraint(
            "stays",
            b.forall([s, e], b.holds(s, b.member(e, b.rel("S", 2)))),
        )
        fp = constraint_footprint(c, schema)
        assert fp.eligible and fp.universe
        assert "dereferences" in fp.reason

    def test_state_equality_widens_to_universe(self, schema):
        s = b.state_var("s")
        s2 = b.state_var("s2")
        c = Constraint("frozen", b.forall([s, s2], b.eq(s, s2)))
        fp = constraint_footprint(c, schema)
        assert fp.eligible and fp.universe
        assert "state equality" in fp.reason

    def test_all_domain_constraints_analyze_without_error(self, domain):
        for c in domain.all_constraints:
            fp = constraint_footprint(c, domain.schema)
            assert fp.constraint_name == c.name
            assert isinstance(str(fp), str)
