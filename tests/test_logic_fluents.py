"""Fluent combinators: composition, condition, iteration, set formers."""

import pytest

from repro.errors import SortError
from repro.logic import builder as b
from repro.logic.fluents import (
    CondExpr,
    CondFluent,
    Foreach,
    Identity,
    Seq,
    SetFormer,
    seq,
    seq_parts,
)
from repro.logic.sorts import STATE, set_sort
from repro.logic.terms import Layer, RelConst


def _ins(name="x"):
    return b.insert(b.mktuple(b.atom_var(name)), "R")


class TestComposition:
    def test_seq_sort_is_state(self):
        assert Seq(_ins("x"), _ins("y")).sort == STATE

    def test_seq_requires_state_sorts(self):
        with pytest.raises(SortError):
            Seq(b.atom(1), _ins())

    def test_seq_builder_drops_identities(self):
        assert seq(b.identity(), _ins(), b.identity()) == _ins()

    def test_seq_builder_empty_is_identity(self):
        assert seq() == Identity()

    def test_seq_parts_flattens(self):
        composite = seq(_ins("x"), _ins("y"), _ins("z"))
        assert len(seq_parts(composite)) == 3

    def test_seq_parts_of_identity_empty(self):
        assert seq_parts(Identity()) == []

    def test_identity_sort(self):
        assert Identity().sort == STATE
        assert Identity().layer is Layer.FLUENT


class TestCondFluent:
    def test_guard_must_be_fluent(self):
        s = b.state_var("s")
        e = b.ftup_var("e", 5)
        situational_guard = b.holds(s, b.member(e, RelConst("EMP", 5)))
        with pytest.raises(SortError):
            CondFluent(situational_guard, _ins(), Identity())

    def test_branches_must_be_state_sorted(self):
        guard = b.lt(b.atom(1), b.atom(2))
        with pytest.raises(SortError):
            CondFluent(guard, b.atom(1), Identity())

    def test_ifthen_defaults_else_to_identity(self):
        f = b.ifthen(b.lt(b.atom(1), b.atom(2)), _ins())
        assert f.else_branch == Identity()


class TestForeach:
    def test_binds_variable(self):
        a = b.ftup_var("a", 3)
        f = Foreach(a, b.member(a, RelConst("ALLOC", 3)), b.delete(a, "ALLOC"))
        assert f.free_vars() == frozenset()
        assert f.bound_vars() == (a,)

    def test_rejects_situational_binder(self):
        a = b.stup_var("a", 3)
        with pytest.raises(SortError):
            Foreach(a, b.true(), _ins())

    def test_rejects_state_sorted_binder(self):
        t = b.trans_var("t")
        with pytest.raises(SortError):
            Foreach(t, b.true(), _ins())

    def test_body_must_be_state_sorted(self):
        a = b.ftup_var("a", 3)
        with pytest.raises(SortError):
            Foreach(a, b.true(), b.atom(1))


class TestSetFormer:
    def test_sort_from_tuple_result(self):
        a = b.ftup_var("a", 3)
        f = SetFormer(a, (a,), b.member(a, RelConst("ALLOC", 3)))
        assert f.sort == set_sort(3)

    def test_atom_result_becomes_one_set(self):
        a = b.ftup_var("a", 3)
        f = b.setformer(b.attr("perc", 3, 3, a), a, b.member(a, RelConst("ALLOC", 3)))
        assert f.sort == set_sort(1)

    def test_must_bind_something(self):
        a = b.ftup_var("a", 3)
        with pytest.raises(SortError):
            SetFormer(a, (), b.true())

    def test_parameters_stay_free(self):
        a = b.ftup_var("a", 3)
        name = b.atom_var("n")
        f = b.setformer(
            b.attr("perc", 3, 3, a),
            a,
            b.land(
                b.member(a, RelConst("ALLOC", 3)),
                b.eq(b.attr("a-emp", 3, 1, a), name),
            ),
        )
        assert f.free_vars() == frozenset({name})


class TestCondExpr:
    def test_branch_sorts_must_match(self):
        with pytest.raises(SortError):
            CondExpr(b.true(), b.atom(1), b.ftup_var("e", 2))

    def test_ite_builder(self):
        f = b.ite(b.lt(b.atom(1), b.atom(2)), b.atom(1), b.atom(2))
        assert f.sort.is_atom

    def test_state_branches_rejected(self):
        with pytest.raises(SortError):
            CondExpr(b.true(), _ins(), _ins())
