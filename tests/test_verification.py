"""E5: transaction verification — Example 5's claims, mechanically."""

import pytest

from repro.verification import (
    Scenario,
    VCStatus,
    Verdict,
    Verifier,
    preservation_vc,
    verify_transaction,
)


@pytest.fixture()
def scenario(domain, sample_state):
    return Scenario(sample_state, ("net", 10))


class TestVCGeneration:
    def test_atomic_transaction_reduces(self, domain):
        vc = preservation_vc(domain.skill_retention(), domain.add_skill)
        assert vc.status is VCStatus.REDUCED

    def test_foreach_transaction_is_residual(self, domain):
        vc = preservation_vc(domain.skill_retention(), domain.set_salary)
        assert vc.status is VCStatus.RESIDUAL

    def test_cancel_project_is_residual(self, domain):
        vc = preservation_vc(domain.once_married(), domain.cancel_project)
        assert vc.status is VCStatus.RESIDUAL

    def test_params_generalized(self, domain):
        vc = preservation_vc(domain.once_married(), domain.hire)
        assert len(vc.generalized_params) == len(domain.hire.params)

    def test_static_constraint_vc(self, domain):
        vc = preservation_vc(domain.every_employee_allocated(), domain.allocate)
        assert vc.status is VCStatus.REDUCED


class TestExample5Claims:
    """The paper: cancel-project 'can be proved to preserve the validity of
    all transaction constraints in Examples 2 and 3 except that it may
    violate the one about salary modification if there are employees who
    work for projects besides p.  The validity of the first constraint in
    Example 4 [never-rehire] is also preserved since the transaction does
    not hire new employees.'"""

    def test_once_married_preserved(self, domain, scenario):
        result = Verifier().verify(domain.once_married(), domain.cancel_project, [scenario])
        assert result.preserved

    def test_skill_retention_preserved(self, domain, scenario):
        result = Verifier().verify(
            domain.skill_retention(), domain.cancel_project, [scenario]
        )
        assert result.preserved

    def test_salary_constraint_violated_with_shared_employees(self, domain, scenario):
        """carol works on 'ai' besides 'net': her salary drops with no dept
        change — the exact exception the paper predicts."""
        result = Verifier().verify(
            domain.salary_decrease_needs_dept_change(),
            domain.cancel_project,
            [scenario],
        )
        assert result.verdict is Verdict.VIOLATED
        assert result.counterexample is scenario

    def test_salary_constraint_ok_without_shared_employees(self, domain, sample_state):
        """Cancelling 'db' only touches alice (on ai too) ... pick a clean
        case: employees allocated solely to the cancelled project are
        deleted, not cut — no decrease happens."""
        s = domain.deallocate.run(sample_state, "carol", "net")
        s = domain.allocate.run(s, "carol", "ai", 50)
        # now 'net' has only dan (sole project) -> deletion, no salary cut
        result = Verifier().verify(
            domain.salary_decrease_needs_dept_change(),
            domain.cancel_project,
            [Scenario(s, ("net", 10))],
        )
        assert result.preserved

    def test_never_rehire_preserved(self, domain, scenario):
        result = Verifier().verify(domain.never_rehire(), domain.cancel_project, [scenario])
        assert result.preserved

    def test_project_deletion_cascades_preserved(self, domain, scenario):
        result = Verifier().verify(
            domain.project_deletion_cascades(), domain.cancel_project, [scenario]
        )
        assert result.preserved

    def test_report_over_battery(self, domain, scenario):
        battery = [
            domain.once_married(),
            domain.skill_retention(),
            domain.salary_decrease_needs_dept_change(),
            domain.never_rehire(),
        ]
        report = verify_transaction(domain.cancel_project, battery, [scenario])
        assert not report.all_preserved
        assert [r.constraint.name for r in report.violated()] == [
            "salary-decrease-needs-dept-change"
        ]
        assert report.by_name("once-married").preserved


class TestProofPath:
    def test_untouched_relation_proved(self, domain):
        """add-skill cannot affect once-married: the regressed constraint is
        provable by resolution (a genuine proof, no scenarios needed)."""
        result = Verifier().verify(domain.once_married(), domain.add_skill, [])
        assert result.verdict is Verdict.PROVED

    def test_insert_into_skill_preserves_retention(self, domain):
        result = Verifier().verify(domain.skill_retention(), domain.add_skill, [])
        assert result.verdict is Verdict.PROVED

    def test_unknown_without_scenarios(self, domain):
        result = Verifier().verify(
            domain.salary_decrease_needs_dept_change(), domain.cancel_project, []
        )
        assert result.verdict is Verdict.UNKNOWN

    def test_model_checking_complements_proof(self, domain, sample_state):
        """set-salary has a foreach: no proof, but scenarios decide."""
        good = Scenario(sample_state, ("alice", 500))
        result = Verifier().verify(
            domain.salary_decrease_needs_dept_change(), domain.set_salary, [good]
        )
        assert result.verdict is Verdict.MODEL_CHECKED
        bad = Scenario(sample_state, ("alice", 10))
        result2 = Verifier().verify(
            domain.salary_decrease_needs_dept_change(), domain.set_salary, [bad]
        )
        assert result2.verdict is Verdict.VIOLATED
