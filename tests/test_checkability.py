"""E2/E3: checkability analysis — the paper's verdicts, plus empirical
validation of declared windows."""

import pytest

from repro.constraints import Window, analyze, validate_window
from repro.db import History
from repro.constraints.checker import check_history


class TestSyntacticVerdicts:
    """Every checkability claim the paper makes, pinned."""

    def test_static_need_one_state(self, domain):
        for c in domain.static_constraints:
            assert analyze(c).window == 1, c.name

    def test_once_married_two_states(self, domain):
        report = analyze(domain.once_married())
        assert report.window == 2
        assert "never rehired" in report.justification

    def test_skill_retention_two_states(self, domain):
        assert analyze(domain.skill_retention()).window == 2

    def test_salary_constraint_three_states(self, domain):
        assert analyze(domain.salary_decrease_needs_dept_change()).window == 3

    def test_salary_neq_variant_full_history(self, domain):
        assert analyze(domain.salary_never_same()).window is Window.FULL_HISTORY

    def test_never_rehire_full_history(self, domain):
        report = analyze(domain.never_rehire())
        assert report.window is Window.FULL_HISTORY
        assert "FIRE" in report.justification or "encoding" in report.justification

    def test_fire_encoding_statically_checkable(self, domain):
        assert analyze(domain.fire_excludes_emp()).window == 1

    def test_invertibility_uncheckable(self, domain):
        report = analyze(domain.invertibility())
        assert report.window is Window.UNCHECKABLE
        assert not report.checkable

    def test_no_eternal_project_uncheckable(self, domain):
        assert analyze(domain.no_eternal_project()).window is Window.UNCHECKABLE

    def test_undeclared_transaction_constraint_defaults_to_two(self, domain):
        from dataclasses import replace

        c = replace(domain.skill_retention(), declared_window=None)
        assert analyze(c).window == 2

    def test_report_renders(self, domain):
        text = str(analyze(domain.once_married()))
        assert "once-married" in text and "2 state" in text


def _histories_violating_late(domain):
    """Histories where a never-rehire violation spans > 2 states."""
    s0 = domain.sample_state()
    s1 = domain.fire.run(s0, "dan")
    s2 = domain.birthday.run(s1, "alice")  # unrelated step widens the gap
    s3 = domain.hire.run(s2, "dan", "cs", 95, 31, "S")
    s4 = domain.allocate.run(s3, "dan", "db", 10)
    return [[s0, s1, s2, s3, s4]]


class TestEmpiricalValidation:
    def test_skill_retention_window_two_validates(self, domain):
        s0 = domain.sample_state()
        histories = []
        s1 = domain.add_skill.run(s0, "bob", 7)
        s2 = domain.birthday.run(s1, "bob")
        histories.append([s0, s1, s2])
        s1b = domain.fire.run(s0, "dan")
        histories.append([s0, s1b])
        result = validate_window(domain.skill_retention(), 2, histories)
        assert result.valid and result.trials == 2

    def test_never_rehire_window_two_unsound(self, domain):
        """The heart of Example 4: every 2-window passes while the complete
        history is violated — the window claim is refuted empirically."""
        result = validate_window(
            domain.never_rehire(), 2, _histories_violating_late(domain)
        )
        assert not result.valid
        assert "UNSOUND" in str(result)

    def test_full_history_catches_the_same_violation(self, domain):
        (states,) = _histories_violating_late(domain)
        h = History(window=None)
        h.start(states[0])
        for s in states[1:]:
            h.advance(s)
        assert not check_history(domain.never_rehire(), h).ok

    def test_salary_three_window_catches_two_hop_decrease(self, domain):
        s0 = domain.sample_state()
        s1 = domain.set_salary.run(s0, "alice", 100)
        s2 = domain.set_salary.run(s1, "alice", 80)
        c = domain.salary_decrease_needs_dept_change()
        result3 = validate_window(c, 3, [[s0, s1, s2]])
        # the 3-window checker itself flags the violation, so windows do NOT
        # all pass -> no disagreement recorded
        assert result3.valid

    def test_validation_summary_strings(self, domain):
        s0 = domain.sample_state()
        result = validate_window(domain.skill_retention(), 2, [[s0]])
        assert "agreed" in str(result)

    def test_why_example2_needs_the_no_rehire_assumption(self, domain):
        """The paper conditions Example 2's 2-state checkability on
        "employees cannot be rehired".  The mechanism: once-married tracks
        the employee *tuple*; a rehire creates a fresh tuple, so the
        married history of the person detaches from the new tuple and the
        constraint goes vacuous — under rehiring, no window (not even the
        complete history) recovers person-level tracking; the FIRE
        encoding, keyed by name, is the remedy."""
        from repro.constraints.checker import check_history
        from repro.db import History

        s0 = domain.sample_state()  # alice is married (M), age 35
        s1 = domain.fire.run(s0, "alice")
        s2 = domain.hire.run(s1, "alice", "cs", 100, 36, "S")  # older & single!
        h = History(window=None)
        h.start(s0)
        h.advance(s1, "fire")
        h.advance(s2, "rehire")
        # tuple-level tracking is blind to the person-level violation:
        assert check_history(domain.once_married(), h).ok
        # the name-keyed encoding is what catches the rehire itself:
        enc = domain.fire_encoding()
        tracked = enc.prepare_state(s0)
        tracked = enc.record(tracked, s1)
        from repro.db.values import DBTuple

        carried = enc.prepare_state(s2)
        for t in tracked.relation("FIRE"):
            carried, _ = carried.insert_tuple("FIRE", DBTuple(None, t.values))
        from repro.constraints.checker import check_state

        assert not check_state(enc.static_constraint(), carried).ok
