"""Regression: w::regress(p, T) must agree with (w;T)::p.

The key soundness property is tested both on hand-picked formulas and
property-style over random states — regression is the verifier's engine, so
its agreement with the operational semantics is load-bearing.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Schema, state_from_rows
from repro.logic import builder as b
from repro.theory.regression import NotRegressable, regress_expr, regress_formula
from repro.transactions import Env, evaluate, execute, satisfies


@pytest.fixture()
def schema():
    s = Schema()
    s.add_relation("R", ("n", "tag"))
    s.add_relation("Q", ("x",))
    return s


@pytest.fixture()
def state(schema):
    return state_from_rows(
        schema, {"R": [(1, "a"), (2, "b"), (3, "c")], "Q": [("k",)]}
    )


R = b.rel("R", 2)
RID = b.rel_id("R", 2)


def assert_regression_agrees(state, formula, step, env=None):
    env = env or Env.empty()
    regressed = regress_formula(formula, step)
    after = execute(state, step, env)
    assert satisfies(state, regressed, env) == satisfies(after, formula, env)


class TestInsertRegression:
    def test_membership_of_inserted(self, state):
        t = b.mktuple(b.atom(9), b.atom("z"))
        assert_regression_agrees(state, b.member(t, R), b.insert(t, RID))

    def test_membership_of_other(self, state):
        t = b.mktuple(b.atom(9), b.atom("z"))
        other = b.mktuple(b.atom(1), b.atom("a"))
        assert_regression_agrees(state, b.member(other, R), b.insert(t, RID))

    def test_negative_membership(self, state):
        t = b.mktuple(b.atom(9), b.atom("z"))
        assert_regression_agrees(state, b.lnot(b.member(t, R)), b.insert(t, RID))

    def test_other_relation_untouched(self, state):
        t = b.mktuple(b.atom(9), b.atom("z"))
        q = b.mktuple(b.atom("k"))
        assert_regression_agrees(state, b.member(q, b.rel("Q", 1)), b.insert(t, RID))

    def test_aggregate_over_inserted_relation(self, state):
        """sum over R after insert — exercises the with() wrapper."""
        t = b.ftup_var("t", 2)
        former = b.setformer(b.select(t, 1), t, b.member(t, R))
        formula = b.eq(b.sum_of(former), b.atom(15))
        step = b.insert(b.mktuple(b.atom(9), b.atom("z")), RID)
        assert_regression_agrees(state, formula, step)


class TestDeleteRegression:
    def test_membership_of_deleted(self, state):
        t = b.mktuple(b.atom(1), b.atom("a"))
        assert_regression_agrees(state, b.member(t, R), b.delete(t, RID))

    def test_membership_of_survivor(self, state):
        victim = b.mktuple(b.atom(1), b.atom("a"))
        survivor = b.mktuple(b.atom(2), b.atom("b"))
        assert_regression_agrees(state, b.member(survivor, R), b.delete(victim, RID))

    def test_quantified_formula(self, state):
        victim = b.mktuple(b.atom(1), b.atom("a"))
        t = b.ftup_var("t", 2)
        formula = b.forall(
            t, b.implies(b.member(t, R), b.gt(b.select(t, 1), b.atom(1)))
        )
        assert_regression_agrees(state, formula, b.delete(victim, RID))


class TestModifyRegression:
    def test_modified_attribute(self, state):
        t_var = b.ftup_var("t", 2)
        target = next(iter(state.relation("R")))
        env = Env({t_var: target})
        step = b.modify(t_var, 1, b.atom(42))
        formula = b.eq(b.select(t_var, 1), b.atom(42))
        assert_regression_agrees(state, formula, step, env)

    def test_other_attribute_frame(self, state):
        t_var = b.ftup_var("t", 2)
        target = next(iter(state.relation("R")))
        env = Env({t_var: target})
        step = b.modify(t_var, 1, b.atom(42))
        formula = b.eq(b.select(t_var, 2), b.atom(target.values[1]))
        assert_regression_agrees(state, formula, step, env)

    def test_other_tuple_frame(self, state):
        tuples = list(state.relation("R"))
        t1, t2 = b.ftup_var("t1", 2), b.ftup_var("t2", 2)
        env = Env({t1: tuples[0], t2: tuples[1]})
        step = b.modify(t2, 1, b.atom(42))
        formula = b.eq(b.select(t1, 1), b.atom(tuples[0].values[0]))
        assert_regression_agrees(state, formula, step, env)

    def test_quantified_bound_over_modified_relation(self, state):
        """forall t in R: n <= 50 — after modifying one tuple's n."""
        t_var = b.ftup_var("t", 2)
        target = next(iter(state.relation("R")))
        env = Env({t_var: target})
        step = b.modify(t_var, 1, b.atom(99))
        q = b.ftup_var("q", 2)
        formula = b.forall(
            q, b.implies(b.member(q, R), b.le(b.select(q, 1), b.atom(50)))
        )
        assert_regression_agrees(state, formula, step, env)

    @given(st.integers(0, 99), st.integers(1, 2))
    @settings(max_examples=40, deadline=None)
    def test_modify_agreement_random(self, value, pos, ):
        schema = Schema()
        schema.add_relation("R", ("n", "tag"))
        state = state_from_rows(schema, {"R": [(1, "a"), (2, "b")]})
        t_var = b.ftup_var("t", 2)
        target = next(iter(state.relation("R")))
        env = Env({t_var: target})
        v = value if pos == 1 else "zz"
        step = b.modify(t_var, pos, b.atom(v))
        for i in (1, 2):
            formula = b.eq(
                b.select(t_var, i),
                b.atom(v if i == pos else target.values[i - 1]),
            )
            assert_regression_agrees(state, formula, step, env)


class TestCompositeRegression:
    def test_seq(self, state):
        t1 = b.mktuple(b.atom(9), b.atom("z"))
        t2 = b.mktuple(b.atom(1), b.atom("a"))
        step = b.seq(b.insert(t1, RID), b.delete(t2, RID))
        formula = b.member(t1, R)
        assert_regression_agrees(state, formula, step)
        assert_regression_agrees(state, b.member(t2, R), step)

    def test_insert_then_delete_same_tuple(self, state):
        t = b.mktuple(b.atom(9), b.atom("z"))
        step = b.seq(b.insert(t, RID), b.delete(t, RID))
        assert_regression_agrees(state, b.member(t, R), step)

    def test_cond_fluent(self, state):
        t = b.mktuple(b.atom(9), b.atom("z"))
        q = b.ftup_var("q", 2)
        guard = b.exists(q, b.land(b.member(q, R), b.eq(b.select(q, 1), b.atom(1))))
        step = b.ifthen(guard, b.insert(t, RID), b.delete(t, RID))
        assert_regression_agrees(state, b.member(t, R), step)

    def test_identity(self, state):
        formula = b.member(b.mktuple(b.atom(1), b.atom("a")), R)
        assert regress_formula(formula, b.identity()) == formula

    def test_assign(self, state):
        former = b.setformer(
            b.ftup_var("t", 2), b.ftup_var("t", 2), b.member(b.ftup_var("t", 2), R)
        )
        step = b.assign(b.rel_id("R2", 2), former)
        target = b.mktuple(b.atom(1), b.atom("a"))
        formula = b.member(target, b.rel("R2", 2))
        regressed = regress_formula(formula, step)
        after = execute(state, step)
        assert satisfies(state, regressed) == satisfies(after, formula)


class TestNotRegressable:
    def test_foreach_raises(self):
        t = b.ftup_var("t", 2)
        step = b.foreach(t, b.member(t, R), b.delete(t, RID))
        with pytest.raises(NotRegressable):
            regress_formula(b.member(b.mktuple(b.atom(1), b.atom("a")), R), step)

    def test_transition_variable_raises(self):
        with pytest.raises(NotRegressable):
            regress_formula(b.true(), b.trans_var("t"))

    def test_regress_expr_foreach_raises(self):
        t = b.ftup_var("t", 2)
        step = b.foreach(t, b.member(t, R), b.delete(t, RID))
        with pytest.raises(NotRegressable):
            regress_expr(R, step)
