"""Generic schema-driven transaction builders."""

import pytest

from repro.db import Schema, state_from_rows
from repro.transactions.library import (
    clear_relation_transaction,
    conditional_transaction,
    delete_by_key_transaction,
    insert_transaction,
    null_transaction,
    update_by_key_transaction,
)


@pytest.fixture()
def schema():
    s = Schema()
    s.add_relation("ITEM", ("sku", "qty"))
    return s


@pytest.fixture()
def state(schema):
    return state_from_rows(schema, {"ITEM": [("a", 1), ("b", 2), ("a2", 3)]})


class TestGenericBuilders:
    def test_insert(self, schema, state):
        tx = insert_transaction(schema.relation("ITEM"))
        s2 = tx.run(state, "c", 9)
        assert ("c", 9) in {t.values for t in s2.relation("ITEM")}

    def test_delete_by_key(self, schema, state):
        tx = delete_by_key_transaction(schema.relation("ITEM"), "sku")
        s2 = tx.run(state, "a")
        assert {t.values[0] for t in s2.relation("ITEM")} == {"b", "a2"}

    def test_update_by_key(self, schema, state):
        tx = update_by_key_transaction(schema.relation("ITEM"), "sku", "qty")
        s2 = tx.run(state, "b", 99)
        assert ("b", 99) in {t.values for t in s2.relation("ITEM")}

    def test_clear(self, schema, state):
        tx = clear_relation_transaction(schema.relation("ITEM"))
        assert len(tx.run(state).relation("ITEM")) == 0

    def test_null_transaction_is_identity(self, schema, state):
        assert null_transaction().run(state) == state

    def test_conditional(self, schema, state):
        from repro.logic import builder as b

        rs = schema.relation("ITEM")
        t = rs.var("t")
        has_a = b.exists(
            t, b.land(b.member(t, rs.rel()), b.eq(rs.attr("sku", t), b.atom("a")))
        )
        tx = conditional_transaction(
            "add-if-a", (), has_a, b.insert(b.mktuple(b.atom("x"), b.atom(0)), rs.rid())
        )
        s2 = tx.run(state)
        assert ("x", 0) in {t.values for t in s2.relation("ITEM")}
        s3 = delete_by_key_transaction(rs, "sku").run(state, "a")
        assert tx.run(s3) == s3  # guard false: identity

    def test_names_follow_schema(self, schema):
        rs = schema.relation("ITEM")
        assert insert_transaction(rs).name == "insert-item"
        assert delete_by_key_transaction(rs, "sku").name == "delete-item-by-sku"
        assert update_by_key_transaction(rs, "sku", "qty").name == "set-item-qty"
