"""Session lifecycle edges: shutdown mid-flight, client-driven CANCEL,
poisoned connections, and abrupt disconnects.

The contract under test: an in-flight request **always** resolves with a
typed error — never a hang, never a bare ``ConnectionResetError`` — and a
sick connection takes down only itself.

Determinism comes from a gated program wrapper (the ``on_evaluated`` idiom
of the scheduler tests, applied at the program boundary): ``run`` parks on
an event *inside* the worker, so a request is verifiably in flight while
the test closes the server, cancels the request, or cuts the socket.  The
inner evaluation then runs under the request's budget, so a token cancelled
while parked surfaces as a typed :class:`Cancelled` outcome.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro import Client, Database, TransactionServer
from repro.errors import Cancelled, ReproError, SessionClosed
from repro.logic import builder as b
from repro.server.protocol import FrameDecoder, encode_message
from repro.transactions.program import query


class Gated:
    """A program whose evaluation parks until released.

    Duck-types :class:`DatabaseProgram` by delegation; only ``run`` is
    intercepted.  ``entered`` is set once a worker reaches the evaluation,
    ``release`` lets it proceed into the real (budget-metered) body.
    """

    def __init__(self, inner, name: str = "gated"):
        self.inner = inner
        self._name = name
        self.entered = threading.Event()
        self.release = threading.Event()

    def __getattr__(self, attr):
        return getattr(self.inner, attr)

    @property
    def name(self):
        return self._name

    def run(self, state, *args, interpreter=None):
        self.entered.set()
        assert self.release.wait(timeout=10.0), "gated program never released"
        return self.inner.run(state, *args, interpreter=interpreter)


def make_server(domain, gated, **kwargs):
    db = Database(domain.schema, initial=domain.sample_state())
    programs = [
        domain.hire,
        gated,
        query("headcount", (), b.size_of(b.rel("EMP", 5))),
    ]
    return TransactionServer(db, programs, workers=4, **kwargs)


@pytest.fixture()
def gated(domain):
    return Gated(domain.hire)


class TestShutdownMidFlight:
    def test_inflight_requests_resolve_with_typed_session_closed(
        self, domain, gated
    ):
        server = make_server(domain, gated)
        server.start()
        client = Client(*server.address)
        pending = client.submit("gated", "erin", "cs", 90, 25, "S")
        assert gated.entered.wait(5.0)

        closer = threading.Thread(target=server.close)
        closer.start()
        try:
            # The client is told *before* the evaluation winds down.
            with pytest.raises(SessionClosed, match="shutting down"):
                pending.result(timeout=5.0)
        finally:
            gated.release.set()
            closer.join(timeout=15.0)
        assert not closer.is_alive()

    def test_new_connections_after_close_are_typed_errors(self, domain, gated):
        server = make_server(domain, gated)
        server.start()
        gated.release.set()
        server.close()
        client = Client(*server.address, reconnect=False)
        with pytest.raises(SessionClosed, match="cannot reach"):
            client.connect()

    def test_close_is_idempotent_and_reentrant(self, domain, gated):
        server = make_server(domain, gated)
        server.start()
        server.close()
        server.close()  # no error, no hang


class TestCancel:
    def test_cancel_propagates_to_the_cancel_token(self, domain, gated):
        with make_server(domain, gated) as server:
            with Client(*server.address) as client:
                pending = client.submit("gated", "erin", "cs", 90, 25, "S")
                assert gated.entered.wait(5.0)
                # Still in flight server-side: cancel acknowledges True.
                assert pending.cancel() is True
                gated.release.set()
                # The inner evaluation observes the token at its first
                # budget checkpoint: a typed Cancelled, state unchanged.
                with pytest.raises(Cancelled, match="cancelled by client"):
                    pending.result(timeout=5.0)
                assert client.query("headcount") == 4

    def test_cancel_of_a_finished_request_reports_false(self, domain, gated):
        gated.release.set()
        with make_server(domain, gated) as server:
            with Client(*server.address) as client:
                result = client.execute("hire", "erin", "cs", 90, 25, "S")
                assert result.ok
                # That id is no longer in flight.
                assert client._cancel(2) is False


class TestPoisonedConnections:
    def test_garbage_frames_poison_only_their_connection(self, domain, gated):
        gated.release.set()
        with make_server(domain, gated) as server:
            with Client(*server.address) as client:
                assert client.query("headcount") == 4

                bad = socket.create_connection(server.address, timeout=5.0)
                try:
                    bad.sendall(b"\x00garbage that is definitely not a frame")
                    decoder = FrameDecoder()
                    replies = []
                    while True:
                        data = bad.recv(65536)
                        if not data:
                            break  # server hung up on the poisoned stream
                        replies.extend(decoder.feed(data))
                finally:
                    bad.close()
                [reply] = replies
                assert reply["type"] == "ERROR"
                assert reply["error"]["kind"] == "protocol-error"

                # The healthy connection never noticed.
                assert client.query("headcount") == 4
                assert (
                    server.database.metrics.counter(
                        "repro_server_protocol_errors_total"
                    ).value == 1
                )

    def test_client_raises_typed_error_on_server_poison_notice(
        self, domain, gated
    ):
        gated.release.set()
        with make_server(domain, gated) as server:
            client = Client(*server.address)
            client.connect()
            # Corrupt the stream from a live, handshaken client.
            client._sock.sendall(b"XX this is not a frame")
            with pytest.raises(ReproError):
                client.query("headcount")
            # The next request transparently reconnects.
            assert client.query("headcount") == 4
            client.close()

    def test_oversized_frame_is_refused(self, domain, gated):
        gated.release.set()
        with make_server(domain, gated, max_frame=1024) as server:
            sock = socket.create_connection(server.address, timeout=5.0)
            try:
                sock.sendall(
                    encode_message(
                        {"type": "HELLO", "id": 1, "version": 1,
                         "pad": "x" * 4096}
                    )
                )
                decoder = FrameDecoder()
                data = sock.recv(65536)
                [reply] = decoder.feed(data)
                assert reply["error"]["kind"] == "protocol-error"
            finally:
                sock.close()


class TestAbruptDisconnect:
    def test_client_vanishing_mid_flight_cancels_its_work(self, domain, gated):
        with make_server(domain, gated) as server:
            client = Client(*server.address)
            pending = client.submit("gated", "erin", "cs", 90, 25, "S")
            assert gated.entered.wait(5.0)
            token_holder = pending  # the request is parked in a worker
            client._sock.close()  # no CLOSE, no goodbye

            # Wait for the server to notice the dead socket and tear the
            # session down — teardown cancels the request's token — before
            # releasing the parked evaluation.
            deadline = time.monotonic() + 5.0
            gauge = server.database.metrics.gauge("repro_server_connections")
            while gauge.value > 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert gauge.value == 0
            gated.release.set()

            # The cancelled hire never commits; everyone else is served.
            with Client(*server.address) as other:
                assert other.query("headcount") == 4
            assert token_holder.request_id >= 1
