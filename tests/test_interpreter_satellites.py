"""Satellite coverage for the interpreter: deterministic enumeration order
(hash-seed independence) and the ``_touch`` read-reporting contract."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.concurrent import TrackingInterpreter
from repro.db import Schema, state_from_rows
from repro.errors import EvaluationError
from repro.logic import builder as b
from repro.obs import Tracer
from repro.transactions import Env, Interpreter


@pytest.fixture()
def schema():
    s = Schema()
    for name in ("A", "B", "C"):
        s.add_relation(name, ("k", "v"))
    return s


@pytest.fixture()
def state(schema):
    return state_from_rows(
        schema,
        {
            "A": [(3, "c"), (1, "a"), (2, "b")],
            "B": [(9, "z"), (4, "d")],
            "C": [],
        },
    )


# ---------------------------------------------------------------------------
# deterministic enumeration order
# ---------------------------------------------------------------------------

_SEED_SCRIPT = """
from repro.db import Schema, state_from_rows
from repro.logic import builder as b
from repro.obs import Tracer
from repro.storage import state_digest
from repro.transactions import Interpreter

schema = Schema()
for name in ("A", "B", "C"):
    schema.add_relation(name, ("k", "v"))
state = state_from_rows(schema, {
    "A": [(3, "c"), (1, "a"), (2, "b")],
    "B": [(2, "b"), (9, "z"), (4, "d")],
    "C": [],
})
t = b.ftup_var("t", 2)
program = b.foreach(
    t, b.member(t, b.union(b.rel("A", 2), b.rel("B", 2))), b.insert(t, "C")
)
tracer = Tracer()
result = Interpreter(tracer=tracer).run(state, program)
print(state_digest(result))
print("|".join(span.label for span in tracer.spans()))
"""


def _run_under_seed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = os.path.join(
        os.path.dirname(__file__), os.pardir, "src"
    )
    return subprocess.run(
        [sys.executable, "-c", _SEED_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    ).stdout


class TestEnumerationDeterminism:
    def test_same_run_under_two_hash_seeds(self):
        """The regression for hash-order-dependent iteration: the same
        program must produce byte-identical traces and final states under
        different ``PYTHONHASHSEED`` values."""
        first = _run_under_seed("0")
        second = _run_under_seed("4242")
        assert first == second
        assert first.strip()  # the script actually produced output

    def test_foreach_iterates_in_canonical_tuple_order(self, state):
        tracer = Tracer()
        t = b.ftup_var("t", 2)
        program = b.foreach(
            t,
            b.member(t, b.union(b.rel("A", 2), b.rel("B", 2))),
            b.insert(t, "C"),
        )
        Interpreter(tracer=tracer).run(state, program)
        iters = [
            s.label for s in tracer.spans() if s.kind == "foreach-iter"
        ]
        # Identified tuples enumerate by identifier, ascending — not by
        # set/dict iteration order.
        ids = [int(label.rsplit("#", 1)[1]) for label in iters]
        assert ids == sorted(ids) and len(ids) == 5

    def test_repeated_runs_are_identical(self, state):
        t = b.ftup_var("t", 2)
        program = b.foreach(
            t, b.member(t, b.rel("A", 2)), b.delete(t, "A")
        )

        def labels():
            tracer = Tracer()
            Interpreter(tracer=tracer).run(state, program)
            return [s.label for s in tracer.spans()]

        assert labels() == labels()


# ---------------------------------------------------------------------------
# the _touch contract
# ---------------------------------------------------------------------------


class TestTouchContract:
    """Every mutating action must report the relations its outcome read,
    even when the state comes back unchanged — otherwise the optimistic
    validator would pass a transaction whose (empty) footprint hides a
    real dependency."""

    def test_insert_touches_target(self, state):
        tracker = TrackingInterpreter()
        tracker.run(
            state, b.insert(b.mktuple(b.atom(7), b.atom("q")), "A")
        )
        rw = tracker.read_write_set()
        assert "A" in rw.reads and rw.writes == {"A"}

    def test_noop_insert_still_reads_target(self, state):
        # (1, "a") is already in A: set semantics make this the identity,
        # so the write set is empty — but the outcome depended on A.
        tracker = TrackingInterpreter()
        result = tracker.run(
            state, b.insert(b.mktuple(b.atom(1), b.atom("a")), "A")
        )
        rw = tracker.read_write_set()
        assert result is state
        assert rw.writes == frozenset()
        assert "A" in rw.reads

    def test_noop_delete_still_reads_target(self, state):
        tracker = TrackingInterpreter()
        result = tracker.run(
            state, b.delete(b.mktuple(b.atom(77), b.atom("nope")), "A")
        )
        rw = tracker.read_write_set()
        assert result is state
        assert rw.writes == frozenset()
        assert "A" in rw.reads

    def test_delete_touches_target(self, state):
        tracker = TrackingInterpreter()
        tracker.run(state, b.delete(b.mktuple(b.atom(1), b.atom("a")), "A"))
        rw = tracker.read_write_set()
        assert "A" in rw.reads and rw.writes == {"A"}

    def test_modify_touches_owning_relation(self, state):
        victim = next(iter(state.relation("A")))
        t = b.ftup_var("t", 2)
        tracker = TrackingInterpreter()
        tracker.run(state, b.modify(t, 2, b.atom("zz")), Env({t: victim}))
        rw = tracker.read_write_set()
        assert "A" in rw.reads and rw.writes == {"A"}

    def test_modify_of_dead_tuple_reads_everything(self, state):
        # Identifier 1 lives in A; delete it first, then try to modify it.
        # Locating (and failing to locate) the owner depends on every
        # relation's content, so the footprint must cover them all.
        victim = next(iter(state.relation("A")))
        shrunk = state.delete_tuple("A", victim)
        t = b.ftup_var("t", 2)
        tracker = TrackingInterpreter()
        with pytest.raises(EvaluationError):
            tracker.run(shrunk, b.modify(t, 2, b.atom("zz")), Env({t: victim}))
        assert {"A", "B", "C"} <= tracker.read_write_set().reads

    def test_assign_touches_target(self, state):
        tracker = TrackingInterpreter()
        tracker.run(state, b.assign("A", b.rel("B", 2)))
        rw = tracker.read_write_set()
        assert {"A", "B"} <= rw.reads
        assert "A" in rw.writes

    def test_tracker_and_tracer_see_the_same_touches(self, state):
        tracer = Tracer()
        tracker = TrackingInterpreter(tracer=tracer)
        tracker.run(state, b.delete(b.mktuple(b.atom(1), b.atom("a")), "A"))
        traced = set()
        for span in tracer.spans():
            traced.update(span.touched)
        assert traced == tracker.read_write_set().reads
