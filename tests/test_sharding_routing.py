"""Placement planning and footprint routing for the sharded database."""

from __future__ import annotations

import pytest

from repro.db.schema import Schema
from repro.domains import make_domain
from repro.errors import ShardError
from repro.eval.footprint import program_footprint
from repro.logic import builder as b
from repro.obs.metrics import MetricsRegistry
from repro.sharding import ShardedDatabase, plan_placement
from repro.transactions.program import query, transaction


def disjoint_schema(stripes: int = 4) -> Schema:
    schema = Schema()
    for i in range(stripes):
        schema.add_relation(f"R{i}", ("k", "v"))
    return schema


x, y = b.atom_var("x"), b.atom_var("y")


def put(i: int):
    return transaction(
        f"put-R{i}", (x, y), b.insert(b.mktuple(x, y), f"R{i}")
    )


def size(i: int):
    return query(f"size-R{i}", (), b.size_of(b.rel(f"R{i}", 2)))


class TestProgramFootprint:
    def test_insert_program_is_bounded_to_its_relation(self):
        fp = program_footprint(put(0), disjoint_schema())
        assert fp.bounded
        assert set(fp.relations) == {"R0"}

    def test_state_changing_symbols_do_not_blind_the_analysis(self):
        """Transaction bodies ARE state-changing applications; the program
        analysis must not inherit the constraint analysis's refusal."""
        d = make_domain()
        fp = program_footprint(d.hire, d.schema)
        assert fp.eligible
        assert "EMP" in fp.relations

    def test_quantified_tuple_variable_widens_to_its_arity(self):
        schema = disjoint_schema()
        t = b.ftup_var("t", 2)
        sweep = transaction(
            "sweep",
            (),
            b.foreach(t, b.member(t, b.rel("R0", 2)), b.insert(t, "R1")),
        )
        fp = program_footprint(sweep, schema)
        assert 2 in fp.arities
        # Arity closure pulls in every binary relation of the schema.
        assert set(fp.relations) == {"R0", "R1", "R2", "R3"}


class TestPlacement:
    def test_all_relations_placed_deterministically(self):
        schema = disjoint_schema(6)
        a = plan_placement(schema, 3)
        c = plan_placement(schema, 3)
        assert a.placement == c.placement
        assert set(a.placement) == set(schema.relations)
        assert set(a.placement.values()) <= set(range(3))

    def test_constraint_footprints_are_co_located(self):
        d = make_domain()
        d.install_constraints()
        plan = plan_placement(d.schema, 4)
        for c in d.schema.constraints:
            home = plan.constraint_home[c.name]
            assert 0 <= home < 4

    def test_override_pins_relation(self):
        schema = disjoint_schema(4)
        plan = plan_placement(schema, 2, overrides={"R2": 1})
        assert plan.placement["R2"] == 1

    def test_override_out_of_range_rejected(self):
        with pytest.raises(ShardError):
            plan_placement(disjoint_schema(), 2, overrides={"R0": 5})

    def test_override_splitting_a_cluster_rejected(self):
        """Two relations welded together by a constraint footprint cannot
        be pinned to different shards — that would split the constraint's
        evidence."""
        d = make_domain()
        d.install_constraints()
        plan = plan_placement(d.schema, 2)
        clustered = next(c for c in plan.clusters if len(c) >= 2)
        a, c = sorted(clustered)[:2]
        with pytest.raises(ShardError):
            plan_placement(d.schema, 2, overrides={a: 0, c: 1})

    def test_shard_of_hash_routes_unknown_names(self):
        plan = plan_placement(disjoint_schema(), 4)
        assert 0 <= plan.shard_of("NEVER_DECLARED") < 4
        # Stable across calls.
        assert plan.shard_of("NEVER_DECLARED") == plan.shard_of(
            "NEVER_DECLARED"
        )


class TestRouting:
    def test_single_shard_commit_touches_no_coordinator(self):
        metrics = MetricsRegistry()
        sdb = ShardedDatabase(disjoint_schema(), shards=4, metrics=metrics)
        for i in range(4):
            sdb.execute(put(i), i, i)
        fams = metrics.families()
        prepares = sum(
            int(inst.value)
            for _, inst in fams.get("repro_shard_prepares_total", ())
        )
        decisions = sum(
            int(inst.value)
            for _, inst in fams.get("repro_shard_decisions_total", ())
        )
        singles = sum(
            int(inst.value)
            for labels, inst in fams.get("repro_shard_commits_total", ())
            if dict(labels).get("mode") == "single"
        )
        assert prepares == 0
        assert decisions == 0
        assert singles == 4
        assert sdb.stats()["single_shard_commits"] == 4
        assert sdb.stats()["cross_shard_commits"] == 0
        sdb.close()

    def test_cross_shard_commit_prepares_every_writer(self):
        metrics = MetricsRegistry()
        schema = disjoint_schema()
        sdb = ShardedDatabase(schema, shards=4, metrics=metrics)
        pair = transaction(
            "pair",
            (x, y),
            b.seq(
                b.insert(b.mktuple(x, y), "R0"),
                b.insert(b.mktuple(x, y), "R1"),
            ),
        )
        fp = program_footprint(pair, schema)
        participants = sdb.plan.participants(fp)
        assert len(participants) == 2
        sdb.execute(pair, 1, 1)
        fams = metrics.families()
        prepares = sum(
            int(inst.value)
            for _, inst in fams.get("repro_shard_prepares_total", ())
        )
        assert prepares == 2
        assert sdb.stats()["cross_shard_commits"] == 1
        sdb.close()

    def test_results_identical_to_unsharded(self):
        schema = disjoint_schema()
        sdb = ShardedDatabase(schema, shards=3)
        from repro.engine import Database

        db = Database(disjoint_schema())
        for i in range(12):
            stripe = i % 4
            sdb.execute(put(stripe), i, i * 10)
            db.execute(put(stripe), i, i * 10)
        for i in range(4):
            assert sdb.query(size(i)) == db.query(size(i))
        sdb.close()

    def test_tuple_ids_never_collide_across_shards(self):
        sdb = ShardedDatabase(disjoint_schema(), shards=4)
        for i in range(40):
            sdb.execute(put(i % 4), i, i)
        state = sdb.combined_state()
        tids = [
            tid
            for rel in state.relations.values()
            for tid in rel.tuples
        ]
        assert len(tids) == len(set(tids))
        sdb.close()

    def test_block_exhaustion_rolls_to_a_fresh_block(self):
        from repro.sharding.sharded import ALLOC_BLOCK

        sdb = ShardedDatabase(disjoint_schema(), shards=2)
        n = ALLOC_BLOCK + 8
        for i in range(n):
            sdb.execute(put(0), i, i)
        assert sdb.query(size(0)) == n
        state = sdb.combined_state()
        tids = [
            tid for rel in state.relations.values() for tid in rel.tuples
        ]
        assert len(tids) == len(set(tids))
        sdb.close()

    def test_run_batch_preserves_request_order(self):
        sdb = ShardedDatabase(disjoint_schema(), shards=4)
        requests = [
            (put(i % 4), (i, i), f"tx-{i}", None) for i in range(16)
        ]
        outcomes = sdb.run_batch(requests)
        assert [o.label for o in outcomes] == [f"tx-{i}" for i in range(16)]
        assert all(o.ok for o in outcomes)
        for i in range(4):
            assert sdb.query(size(i)) == 4
        sdb.close()

    def test_constraint_enforced_on_owning_shard(self):
        schema = disjoint_schema(2)
        from repro.constraints.model import Constraint

        s = b.state_var("s")
        cap = Constraint(
            "r0-capacity",
            b.forall(
                s,
                b.holds(
                    s, b.le(b.size_of(b.rel("R0", 2)), b.atom(2))
                ),
            ),
            description="R0 holds at most two rows",
            declared_window=1,
        )
        schema.add_constraint(cap)
        sdb = ShardedDatabase(schema, shards=2)
        sdb.execute(put(0), 1, 1)
        sdb.execute(put(0), 2, 2)
        from repro.errors import ConstraintViolation

        with pytest.raises(ConstraintViolation):
            sdb.execute(put(0), 3, 3)
        # The violation rolled back: nothing half-applied anywhere.
        assert sdb.query(size(0)) == 2
        sdb.close()
