"""The resolution prover: clausification, saturation, answers, tableau."""

import pytest

from repro.errors import ProofError
from repro.logic import builder as b
from repro.logic.formulas import Eq, Exists, Not, Or, Pred
from repro.logic.symbols import PredicateSymbol
from repro.logic.sorts import ATOM
from repro.logic.terms import ConstExpr, Layer
from repro.prover import (
    Prover,
    Tableau,
    clausify,
    clausify_negated,
    nnf,
    prove,
    prove_goal,
    prove_with_answers,
    skolemize,
)


P = PredicateSymbol("p", (ATOM,))
Q = PredicateSymbol("q", (ATOM,))
R = PredicateSymbol("r", (ATOM, ATOM))


def p(x):
    return Pred(P, (x,))


def q(x):
    return Pred(Q, (x,))


def r(x, y):
    return Pred(R, (x, y))


class TestNNF:
    def test_pushes_negation_through_implication(self):
        x = b.atom_var("x")
        f = Not(b.implies(p(x), q(x)))
        g = nnf(f)
        # ¬(p -> q) == p & ¬q
        assert g == b.land(p(x), Not(q(x)))

    def test_quantifier_duality(self):
        x = b.atom_var("x")
        f = Not(b.forall(x, p(x)))
        g = nnf(f)
        from repro.logic.formulas import Exists

        assert isinstance(g, Exists)
        assert isinstance(g.body, Not)

    def test_double_negation(self):
        x = b.atom_var("x")
        assert nnf(Not(Not(p(x)))) == p(x)


class TestSkolemization:
    def test_outer_existential_becomes_constant(self):
        x = b.atom_var("x")
        f = nnf(b.exists(x, p(x)))
        g = skolemize(f)
        assert isinstance(g, Pred)
        assert isinstance(g.args[0], ConstExpr)

    def test_existential_under_universal_becomes_function(self):
        x, y = b.atom_var("x"), b.atom_var("y")
        f = nnf(b.forall(x, b.exists(y, r(x, y))))
        g = skolemize(f)
        assert isinstance(g, Pred)
        from repro.logic.terms import App

        assert isinstance(g.args[1], App)
        assert g.args[1].symbol.kind.value == "skolem"

    def test_universals_freed(self):
        x = b.atom_var("x")
        f = nnf(b.forall(x, p(x)))
        g = skolemize(f)
        assert len(g.free_vars()) == 1


class TestClausification:
    def test_implication_clause(self):
        x = b.atom_var("x")
        clauses = clausify(b.forall(x, b.implies(p(x), q(x))))
        assert len(clauses) == 1
        assert len(clauses[0].literals) == 2

    def test_conjunction_splits(self):
        x = b.atom_var("x")
        clauses = clausify(b.forall(x, b.land(p(x), q(x))))
        assert len(clauses) == 2

    def test_tautologies_dropped(self):
        x = b.atom_var("x")
        clauses = clausify(b.forall(x, b.lor(p(x), Not(p(x)))))
        assert clauses == []

    def test_negated_goal(self):
        x = b.atom_var("x")
        clauses = clausify_negated(b.exists(x, p(x)))
        (c,) = clauses
        assert not c.literals[0].positive


class TestResolutionProofs:
    def test_modus_ponens(self):
        a = b.atom(1)
        x = b.atom_var("x")
        result = prove([p(a), b.forall(x, b.implies(p(x), q(x)))], q(a))
        assert result.proved

    def test_chained_implications(self):
        a = b.atom(1)
        x = b.atom_var("x")
        s = PredicateSymbol("s", (ATOM,))
        axioms = [
            p(a),
            b.forall(x, b.implies(p(x), q(x))),
            b.forall(x, b.implies(q(x), Pred(s, (x,)))),
        ]
        result = prove(axioms, Pred(s, (a,)))
        assert result.proved

    def test_unprovable_goal_saturates(self):
        a = b.atom(1)
        result = prove([p(a)], q(a))
        assert not result.proved
        assert result.reason in ("saturated", "step limit", "clause limit")

    def test_ground_arithmetic_discharged(self):
        x = b.atom_var("x")
        goal = b.exists(x, b.land(p(x), b.lt(x, b.atom(10))))
        result = prove([p(b.atom(3))], goal)
        assert result.proved

    def test_contradictory_axioms_refuted(self):
        a = b.atom(1)
        result = prove([p(a), Not(p(a))], q(b.atom(2)))
        assert result.proved  # ex falso

    def test_equality_paramodulation(self):
        f = b.plus(b.atom_var("x"), b.atom(0))
        x = b.atom_var("x")
        axioms = [
            b.forall(x, Eq(b.plus(x, b.atom(0)), x)),
            p(b.plus(b.atom(5), b.atom(0))),
        ]
        # ground simplification folds 5+0 anyway; force a symbolic case via
        # an uninterpreted constant
        c = ConstExpr("c", ATOM)
        axioms2 = [b.forall(x, Eq(b.plus(x, b.atom(0)), x)), p(b.plus(c, b.atom(0)))]
        result = prove(axioms2, p(c))
        assert result.proved

    def test_resolution_with_variables_both_sides(self):
        x, y = b.atom_var("x"), b.atom_var("y")
        axioms = [
            b.forall([x, y], b.implies(r(x, y), r(y, x))),
            r(b.atom(1), b.atom(2)),
        ]
        result = prove(axioms, r(b.atom(2), b.atom(1)))
        assert result.proved


class TestAnswers:
    def test_witness_extracted(self):
        x = b.atom_var("x")
        result = prove_with_answers([p(b.atom(7))], b.exists(x, p(x)))
        assert result.proved
        assert result.witness("x") == b.atom(7)

    def test_witness_through_implication(self):
        x = b.atom_var("x")
        axioms = [q(b.atom(3)), b.forall(x, b.implies(q(x), p(x)))]
        result = prove_with_answers(axioms, b.exists(x, p(x)))
        assert result.proved
        assert result.witness("x") == b.atom(3)

    def test_non_existential_goal_rejected(self):
        with pytest.raises(ProofError):
            prove_with_answers([], p(b.atom(1)))


class TestTableau:
    def test_assert_goal_interface(self):
        a = b.atom(1)
        x = b.atom_var("x")
        t = Tableau()
        t.assert_(p(a), "fact")
        t.assert_(b.forall(x, b.implies(p(x), q(x))), "rule")
        t.goal(q(a), "target")
        result = t.prove()
        assert result.proved

    def test_goal_with_outputs(self):
        x = b.atom_var("x")
        t = Tableau()
        t.assert_(p(b.atom(9)))
        t.goal(b.exists(x, p(x)))
        result = t.prove()
        assert result.proved
        assert result.witness("x") == b.atom(9)

    def test_no_goal_rejected(self):
        t = Tableau()
        t.assert_(p(b.atom(1)))
        with pytest.raises(ProofError):
            t.prove()

    def test_prove_goal_helper(self):
        assert prove_goal(p(b.atom(1)), [p(b.atom(1))]).proved

    def test_rows_render(self):
        t = Tableau()
        t.assert_(p(b.atom(1)), "fact")
        t.goal(p(b.atom(1)))
        assert "assert" in str(t) and "goal" in str(t)


class TestLimits:
    def test_step_limit_respected(self):
        x, y = b.atom_var("x"), b.atom_var("y")
        # transitivity with no base facts: saturates or hits limits quickly
        grow = b.forall([x, y], b.implies(r(x, y), r(y, x)))
        result = prove([grow, r(b.atom(1), b.atom(2))], q(b.atom(9)),
                       Prover(max_steps=5))
        assert not result.proved

    def test_timeout_configured(self):
        result = prove([p(b.atom(1))], q(b.atom(1)), Prover(timeout_seconds=0.001))
        assert not result.proved
