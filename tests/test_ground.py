"""Ground simplification: the executable arithmetic/set theory."""

from repro.logic import builder as b
from repro.logic.formulas import Eq, FalseF, Implies, Not, TrueF
from repro.theory.ground import simplify, simplify_expr


class TestExpressionFolding:
    def test_arithmetic_folds(self):
        assert simplify_expr(b.plus(b.atom(2), b.atom(3))) == b.atom(5)

    def test_truncated_subtraction(self):
        assert simplify_expr(b.minus(b.atom(2), b.atom(5))) == b.atom(0)

    def test_nested_folding(self):
        expr = b.times(b.plus(b.atom(1), b.atom(2)), b.atom(4))
        assert simplify_expr(expr) == b.atom(12)

    def test_variables_block_folding(self):
        x = b.atom_var("x")
        expr = b.plus(x, b.atom(0))
        assert simplify_expr(expr) == expr

    def test_partial_folding_inside(self):
        x = b.atom_var("x")
        expr = b.plus(x, b.plus(b.atom(1), b.atom(2)))
        assert simplify_expr(expr) == b.plus(x, b.atom(3))


class TestFormulaSimplification:
    def test_ground_comparison_decides(self):
        assert isinstance(simplify(b.lt(b.atom(1), b.atom(2))), TrueF)
        assert isinstance(simplify(b.ge(b.atom(1), b.atom(2))), FalseF)

    def test_ground_equality_decides(self):
        assert isinstance(simplify(Eq(b.atom(3), b.atom(3))), TrueF)
        assert isinstance(simplify(Eq(b.atom("a"), b.atom("b"))), FalseF)

    def test_reflexive_equality(self):
        x = b.atom_var("x")
        assert isinstance(simplify(Eq(x, x)), TrueF)

    def test_boolean_unit_laws(self):
        p = b.lt(b.atom_var("x"), b.atom(2))
        assert simplify(b.land(b.true(), p)) == p
        assert isinstance(simplify(b.land(b.false(), p)), FalseF)
        assert isinstance(simplify(b.lor(b.true(), p)), TrueF)
        assert simplify(b.lor(b.false(), p)) == p

    def test_implication_laws(self):
        p = b.lt(b.atom_var("x"), b.atom(2))
        assert isinstance(simplify(Implies(b.false(), p)), TrueF)
        assert simplify(Implies(b.true(), p)) == p
        assert simplify(Implies(p, b.false())) == Not(p)

    def test_double_negation(self):
        p = b.lt(b.atom_var("x"), b.atom(2))
        assert simplify(Not(Not(p))) == p

    def test_iff_laws(self):
        p = b.lt(b.atom_var("x"), b.atom(2))
        assert simplify(b.iff(p, b.true())) == p
        assert simplify(b.iff(b.false(), p)) == Not(p)

    def test_comparison_folds_through_arithmetic(self):
        f = b.lt(b.plus(b.atom(1), b.atom(1)), b.plus(b.atom(1), b.atom(2)))
        assert isinstance(simplify(f), TrueF)

    def test_quantified_bodies_simplified(self):
        x = b.atom_var("x")
        f = b.forall(x, b.implies(b.true(), b.lt(x, b.atom(5))))
        result = simplify(f)
        from repro.logic.formulas import Forall

        assert isinstance(result, Forall)
        assert result.body == b.lt(x, b.atom(5))
