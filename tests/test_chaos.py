"""The chaos harness: deterministic fault plans and the soak acceptance.

The acceptance claim (ISSUE 5): >= 200 randomized faulted transactions
across >= 5 seeds end with a serializable commit log, a final state
equivalent to the unfaulted serial replay, and zero unhandled (untyped)
exceptions.
"""

from __future__ import annotations

import pytest

from repro.testing import ChaosConfig, ChaosInjector, run_soak
from repro import Database, Schema, TransactionStatus, transaction
from repro.errors import ReproError
from repro.logic import builder as b

SOAK_SEEDS = (1, 2, 3, 4, 5)
SOAK_TRANSACTIONS = 48  # 5 seeds x 48 = 240 faulted transactions (>= 200)


def tiny_db():
    schema = Schema()
    schema.add_relation("A", ("k", "v"))
    return Database(schema, window=2)


class TestDeterminism:
    def test_plans_are_a_function_of_seed_and_index(self):
        a = ChaosInjector(tiny_db(), seed=7)
        b_ = ChaosInjector(tiny_db(), seed=7)
        other = ChaosInjector(tiny_db(), seed=8)
        plans_a = [a.plan_for(i) for i in range(50)]
        plans_b = [b_.plan_for(i) for i in range(50)]
        plans_other = [other.plan_for(i) for i in range(50)]
        assert plans_a == plans_b
        assert plans_a != plans_other

    def test_plans_do_not_depend_on_draw_order(self):
        chaos = ChaosInjector(tiny_db(), seed=3)
        late_first = chaos.plan_for(40)
        assert chaos.plan_for(0) == ChaosInjector(
            tiny_db(), seed=3
        ).plan_for(0)
        assert chaos.plan_for(40) == late_first

    def test_soak_reports_are_reproducible(self):
        first = run_soak(11, transactions=16, workers=2)
        second = run_soak(11, transactions=16, workers=2)
        assert first.injected == second.injected
        assert first.ok and second.ok


class TestInjection:
    def test_spurious_conflicts_force_retries_but_converge(self):
        db = tiny_db()
        x, y = b.atom_var("x"), b.atom_var("y")
        put = transaction("put", (x, y), b.insert(b.mktuple(x, y), "A"))
        config = ChaosConfig(
            stall_rate=0.0, conflict_rate=1.0, max_spurious=2,
            squeeze_rate=0.0, deadline_rate=0.0,
        )
        chaos = ChaosInjector(db, seed=5, config=config)
        with chaos.concurrent(workers=2, seed=5) as mgr:
            futures = [chaos.submit(mgr, i, put, i, i) for i in range(8)]
            outcomes = [f.result() for f in futures]
        assert all(o.ok for o in outcomes)
        assert any(o.attempts > 1 for o in outcomes)  # faults really landed
        assert mgr.verify_serializable()
        # Injected phantom conflicts are visible in the outcome evidence.
        assert any(
            "<chaos>" in clash
            for o in outcomes
            for clash in o.conflicts
        )

    def test_budget_squeezes_abort_typed(self):
        db = tiny_db()
        x, y = b.atom_var("x"), b.atom_var("y")
        put = transaction("put", (x, y), b.insert(b.mktuple(x, y), "A"))
        config = ChaosConfig(
            stall_rate=0.0, conflict_rate=0.0, deadline_rate=0.0,
            squeeze_rate=1.0, squeeze_steps=(1, 1),  # guaranteed near-miss
        )
        chaos = ChaosInjector(db, seed=6, config=config)
        with chaos.concurrent(workers=2) as mgr:
            outcomes = [
                chaos.submit(mgr, i, put, i, i).result() for i in range(4)
            ]
        assert all(
            o.status is TransactionStatus.ABORTED for o in outcomes
        )
        assert all(isinstance(o.error, ReproError) for o in outcomes)
        assert mgr.verify_serializable()  # empty log replays trivially


class TestSoakAcceptance:
    @pytest.mark.parametrize("seed", SOAK_SEEDS)
    def test_soak_contract_holds_per_seed(self, seed):
        report = run_soak(seed, transactions=SOAK_TRANSACTIONS, workers=4)
        assert report.untyped_errors == []
        assert report.serializable, report.to_json()
        assert report.replay_equivalent, report.to_json()
        assert report.wrong_answers == 0
        assert report.transactions == SOAK_TRANSACTIONS
        assert report.committed + report.aborted + report.failed == (
            report.transactions
        )
        # The harness is not a placebo: faults were actually injected.
        assert sum(report.injected.values()) > 0
        # Poisoning (if any entry was poisoned) was detected, never served.
        if report.injected.get("cache_poisonings"):
            assert report.poison_detected >= 1
        assert report.ok

    def test_soak_totals_meet_the_acceptance_floor(self):
        assert len(SOAK_SEEDS) >= 5
        assert len(SOAK_SEEDS) * SOAK_TRANSACTIONS >= 200

    def test_report_serializes_to_json(self):
        report = run_soak(99, transactions=8, workers=2)
        doc = report.to_doc()
        assert doc["seed"] == 99 and "ok" in doc
        assert isinstance(report.to_json(), str)
