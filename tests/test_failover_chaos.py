"""The failover chaos soak: kill a primary at every 2PC point, promote,
replay the zombie, audit.  The contract is in
:mod:`repro.testing.chaos_sharding`."""

from __future__ import annotations

import os

import pytest

from repro.testing.chaos_sharding import (
    CRASH_POINTS,
    HEAL_MODES,
    FailoverChaosConfig,
    FailoverChaosReport,
    run_failover_soak,
)


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_failover_soak_holds_the_contract(seed, tmp_path):
    report = run_failover_soak(
        seed, str(tmp_path / "db"), rounds=10,
        config=FailoverChaosConfig(kill_rate=0.85),
    )
    assert report.ok, report.to_json()
    # The soak must actually exercise failover, not vacuously pass.
    assert report.kills > 0
    assert report.promotions == report.kills
    assert report.zombie_writes > 0
    assert report.zombie_writes == report.zombie_fenced
    assert report.committed_single > 0


def test_soak_is_deterministic_per_seed(tmp_path):
    a = run_failover_soak(7, str(tmp_path / "a"), rounds=6)
    b = run_failover_soak(7, str(tmp_path / "b"), rounds=6)
    assert a.to_doc() == b.to_doc()
    assert a.heal_modes_used == b.heal_modes_used


def test_every_kill_point_and_heal_mode_is_reachable(tmp_path):
    """Across a few seeds the soak visits all three heal interleavings;
    the kill points draw uniformly from the full 2PC window."""
    modes = set()
    for seed in (1, 2, 3):
        report = run_failover_soak(
            seed, str(tmp_path / f"s{seed}"), rounds=10,
            config=FailoverChaosConfig(kill_rate=0.9),
        )
        assert report.ok, report.to_json()
        modes.update(report.heal_modes_used)
    assert modes == set(HEAL_MODES)
    assert len(CRASH_POINTS) == 6


def test_report_roundtrips_to_json(tmp_path):
    report = run_failover_soak(5, str(tmp_path / "db"), rounds=4)
    doc = report.to_doc()
    assert doc["ok"] == report.ok
    assert isinstance(report.to_json(), str)
    assert isinstance(report, FailoverChaosReport)


def test_refused_transfers_never_land(tmp_path):
    """A ShardUnavailable refusal means durably not-committed: the audit
    (exact per-stripe counts) would flag any landed refusal as a wrong
    answer, so a green report with refusals recorded is the witness."""
    report = run_failover_soak(
        13, str(tmp_path / "db"), rounds=12,
        config=FailoverChaosConfig(kill_rate=1.0),
    )
    assert report.ok, report.to_json()
    assert report.unavailable_refusals > 0
    assert report.wrong_answers == 0
    assert report.atomicity_violations == 0
