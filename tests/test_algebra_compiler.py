"""The algebra compiler: which formulas compile, into what shapes, and
exactly why the rest are refused.

The compilable fragment is deliberately narrow (membership-narrowed
conjunctive chains with trailing quantifier sequences, union
disjunctions, and foreach domains), because everything the compiler
accepts must be *touch-exact* against the tree walk — every
``Incompilable`` reason below marks a shape where exactness would be
expensive or impossible to guarantee, so the planner silently falls back
instead.
"""

from __future__ import annotations

import pytest

from repro.algebra import (
    Arith,
    ChainQuery,
    Cmp,
    Disj,
    ForallQuery,
    Incompilable,
    RelQuery,
    SetOpQuery,
    compile_exists,
    compile_forall,
    compile_foreach_domain,
    compile_set_expr,
    compile_set_former,
)
from repro.domains import make_domain
from repro.logic import builder as b


@pytest.fixture()
def d():
    return make_domain()


def alloc_of(d, a, name_expr):
    return b.land(
        b.member(a, d.alloc.rel()),
        b.eq(d.alloc.attr("a-emp", a), name_expr),
    )


class TestCompilableShapes:
    def test_single_level_set_former(self, d):
        e = d.emp.var("e")
        former = b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.eq(d.emp.attr("e-dept", e), b.atom("cs")),
            ),
        )
        q = compile_set_former(former)
        assert isinstance(q, ChainQuery) and q.kind == "setformer"
        assert [(lv.rel, lv.slot) for lv in q.levels] == [("EMP", 0)]
        assert q.levels[0].group_end == 0
        assert len(q.preds) == 1 and q.preds[0].eff_level == 0
        assert q.sub is None
        assert q.result is not None and not q.result.whole
        assert q.result.element_arity == 1

    def test_two_level_join_shares_one_group(self, d):
        e, a = d.emp.var("e"), d.alloc.var("a")
        former = b.setformer(
            d.emp.attr("e-name", e),
            [e, a],
            b.land(
                b.member(e, d.emp.rel()),
                b.member(a, d.alloc.rel()),
                b.eq(d.alloc.attr("a-emp", a), d.emp.attr("e-name", e)),
            ),
        )
        q = compile_set_former(former)
        assert [lv.rel for lv in q.levels] == ["EMP", "ALLOC"]
        # Set-former levels share one scope group: the join predicate is
        # only checked at the leaf, but the domains narrow unconditionally.
        assert [lv.group_end for lv in q.levels] == [1, 1]
        assert q.preds[0].eff_level == 1

    def test_trailing_exists_flattens_into_its_own_group(self, d):
        e, a = d.emp.var("e"), d.alloc.var("a")
        former = b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.exists(a, alloc_of(d, a, d.emp.attr("e-name", e))),
            ),
        )
        q = compile_set_former(former)
        assert [lv.rel for lv in q.levels] == ["EMP", "ALLOC"]
        # The inner exists opens a new group: its domain only narrows for
        # candidates that survive the outer conjunction.
        assert [lv.group_end for lv in q.levels] == [0, 1]

    def test_trailing_not_exists_becomes_anti_join(self, d):
        e, a = d.emp.var("e"), d.alloc.var("a")
        former = b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.lnot(b.exists(a, alloc_of(d, a, d.emp.attr("e-name", e)))),
            ),
        )
        q = compile_set_former(former)
        assert [lv.rel for lv in q.levels] == ["EMP"]
        assert q.sub is not None and q.sub.level.rel == "ALLOC"

    def test_exists_compiles_to_boolean_chain(self, d):
        a = d.alloc.var("a")
        q = compile_exists(b.exists(a, alloc_of(d, a, b.atom("alice"))))
        assert isinstance(q, ChainQuery) and q.kind == "exists"
        assert q.result is None

    def test_guarded_forall_with_exists_body(self, d):
        e, a = d.emp.var("e"), d.alloc.var("a")
        f = b.forall(
            e,
            b.implies(
                b.member(e, d.emp.rel()),
                b.exists(a, alloc_of(d, a, d.emp.attr("e-name", e))),
            ),
        )
        q = compile_forall(f)
        assert isinstance(q, ForallQuery)
        assert (q.rel, q.arity, q.negated) == ("EMP", 5, False)
        assert q.body_level is not None and q.body_level.rel == "ALLOC"

    def test_arithmetic_predicate_compiles(self, d):
        e = d.emp.var("e")
        former = b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.le(
                    b.plus(d.emp.attr("salary", e), b.atom(1)), b.atom(100)
                ),
            ),
        )
        q = compile_set_former(former)
        assert len(q.preds) == 1
        p = q.preds[0].pred
        assert isinstance(p, Cmp) and p.op == "le"
        assert isinstance(p.lhs, Arith) and p.lhs.op == "+"

    def test_pure_or_compiles_to_disjunction_predicate(self, d):
        e = d.emp.var("e")
        former = b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.lor(
                    b.eq(d.emp.attr("e-dept", e), b.atom("cs")),
                    b.eq(d.emp.attr("e-dept", e), b.atom("math")),
                ),
            ),
        )
        q = compile_set_former(former)
        assert len(q.preds) == 1
        p = q.preds[0].pred
        assert isinstance(p, Disj) and len(p.branches) == 2
        assert all(isinstance(c, Cmp) for br in p.branches for c in br)

    def test_trailing_or_with_exists_compiles_to_union_branches(self, d):
        e, a = d.emp.var("e"), d.alloc.var("a")
        former = b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.lor(
                    b.eq(d.emp.attr("e-dept", e), b.atom("cs")),
                    b.exists(a, alloc_of(d, a, d.emp.attr("e-name", e))),
                ),
            ),
        )
        q = compile_set_former(former)
        assert [lv.rel for lv in q.levels] == ["EMP"]
        assert q.sub is None and len(q.alts) == 2
        pure, quant = q.alts
        assert pure.level is None and len(pure.preds) == 1
        assert quant.level is not None and quant.level.rel == "ALLOC"
        assert not quant.negated

    def test_union_branch_with_not_exists(self, d):
        e, a = d.emp.var("e"), d.alloc.var("a")
        former = b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.lor(
                    b.eq(d.emp.attr("e-dept", e), b.atom("cs")),
                    b.lnot(
                        b.exists(a, alloc_of(d, a, d.emp.attr("e-name", e)))
                    ),
                ),
            ),
        )
        q = compile_set_former(former)
        assert len(q.alts) == 2 and q.alts[1].negated

    def test_multiple_trailing_exists_each_open_a_group(self, d):
        e = d.emp.var("e")
        a, a2 = d.alloc.var("a"), d.alloc.var("a2")
        former = b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.exists(a, alloc_of(d, a, d.emp.attr("e-name", e))),
                b.exists(a2, alloc_of(d, a2, d.emp.attr("e-name", e))),
            ),
        )
        q = compile_set_former(former)
        assert [lv.rel for lv in q.levels] == ["EMP", "ALLOC", "ALLOC"]
        assert [lv.group_end for lv in q.levels] == [0, 1, 2]

    def test_trailing_exists_then_not_exists(self, d):
        e = d.emp.var("e")
        a, a2 = d.alloc.var("a"), d.alloc.var("a2")
        former = b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.exists(a, alloc_of(d, a, d.emp.attr("e-name", e))),
                b.lnot(b.exists(a2, alloc_of(d, a2, b.atom("nobody")))),
            ),
        )
        q = compile_set_former(former)
        assert [lv.rel for lv in q.levels] == ["EMP", "ALLOC"]
        assert q.sub is not None and q.sub.level.rel == "ALLOC"
        assert q.sub.level.slot == 2

    def test_foreach_domain_compiles(self, d):
        e = d.emp.var("e")
        fe = b.foreach(
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.eq(d.emp.attr("e-dept", e), b.atom("cs")),
            ),
            b.identity(),
        )
        q = compile_foreach_domain(fe)
        assert isinstance(q, ChainQuery) and q.kind == "foreach"
        assert [lv.rel for lv in q.levels] == ["EMP"]
        assert q.result is not None and q.result.whole
        assert q.result.element_arity == e.sort.arity

    def test_relation_and_set_op_children(self, d):
        q = compile_set_expr(b.rel("EMP", 5))
        assert isinstance(q, RelQuery) and (q.rel, q.arity) == ("EMP", 5)
        u = compile_set_expr(b.union(b.rel("SKILL", 2), b.rel("PROJ", 2)))
        assert isinstance(u, SetOpQuery) and u.mode == "union"
        assert isinstance(u.left, RelQuery) and isinstance(u.right, RelQuery)


class TestIncompilableReasons:
    """Each refusal reason, pinned — these are the fragment's edges."""

    def refuses(self, fn, node, fragment):
        with pytest.raises(Incompilable) as exc:
            fn(node)
        assert fragment in exc.value.reason, exc.value.reason

    def test_bound_variable_not_tuple_sorted(self, d):
        x = b.atom_var("x")
        self.refuses(
            compile_exists,
            b.exists(x, b.eq(x, b.atom(1))),
            "not tuple-sorted",
        )

    def test_missing_membership(self, d):
        e = d.emp.var("e")
        self.refuses(
            compile_exists,
            b.exists(e, b.eq(d.emp.attr("e-dept", e), b.atom("cs"))),
            "exactly one membership",
        )

    def test_ambiguous_double_membership(self, d):
        e = d.emp.var("e")
        self.refuses(
            compile_exists,
            b.exists(
                e, b.land(b.member(e, d.emp.rel()), b.member(e, d.emp.rel()))
            ),
            "exactly one membership",
        )

    def test_membership_over_outer_variable(self, d):
        e, e2 = d.emp.var("e"), d.emp.var("e2")
        former = b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.exists(e2, b.member(e, d.emp.rel())),
            ),
        )
        self.refuses(compile_set_former, former, "membership")

    def test_quantified_conjunct_must_be_last(self, d):
        e, a = d.emp.var("e"), d.alloc.var("a")
        former = b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.exists(a, alloc_of(d, a, d.emp.attr("e-name", e))),
                b.eq(d.emp.attr("e-dept", e), b.atom("cs")),
            ),
        )
        self.refuses(compile_set_former, former, "not last")

    def test_nested_quantifier_inside_not_exists(self, d):
        e, a, a2 = d.emp.var("e"), d.alloc.var("a"), d.alloc.var("a2")
        former = b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.lnot(
                    b.exists(
                        a,
                        b.land(
                            b.member(a, d.alloc.rel()),
                            b.exists(a2, b.member(a2, d.alloc.rel())),
                        ),
                    )
                ),
            ),
        )
        self.refuses(compile_set_former, former, "not-exists")

    def test_forall_without_guard_implication(self, d):
        e = d.emp.var("e")
        self.refuses(
            compile_forall,
            b.forall(e, b.member(e, d.emp.rel())),
            "not guarded",
        )

    def test_forall_guard_membership_must_come_first(self, d):
        """The tree walk short-circuits the guard conjunction per
        candidate, so a leading value predicate can hide the membership
        read entirely — touch-exactness demands membership first."""
        e, a = d.emp.var("e"), d.alloc.var("a")
        f = b.forall(
            e,
            b.implies(
                b.land(
                    b.eq(d.emp.attr("e-dept", e), b.atom("cs")),
                    b.member(e, d.emp.rel()),
                ),
                b.exists(a, alloc_of(d, a, d.emp.attr("e-name", e))),
            ),
        )
        self.refuses(compile_forall, f, "first conjunct")

    def test_rebinding_of_a_bound_variable(self, d):
        """A nested exists that re-binds an outer variable shadows it in
        the tree walk; the flat slot model cannot express that."""
        e, a = d.emp.var("e"), d.alloc.var("a")
        former = b.setformer(
            d.emp.attr("e-name", e),
            [e, a],
            b.land(
                b.member(e, d.emp.rel()),
                b.member(a, d.alloc.rel()),
                b.exists(a, b.member(a, d.alloc.rel())),
            ),
        )
        self.refuses(compile_set_former, former, "rebinding")

    def test_union_disjunction_must_be_last(self, d):
        e, a = d.emp.var("e"), d.alloc.var("a")
        former = b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.lor(
                    b.exists(a, alloc_of(d, a, d.emp.attr("e-name", e))),
                    b.eq(d.emp.attr("e-dept", e), b.atom("cs")),
                ),
                b.eq(d.emp.attr("e-dept", e), b.atom("cs")),
            ),
        )
        self.refuses(compile_set_former, former, "not the last")

    def test_union_disjunction_after_quantified_conjunct(self, d):
        e, a, a2 = d.emp.var("e"), d.alloc.var("a"), d.alloc.var("a2")
        former = b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.exists(a, alloc_of(d, a, d.emp.attr("e-name", e))),
                b.lor(
                    b.exists(a2, alloc_of(d, a2, d.emp.attr("e-name", e))),
                    b.eq(d.emp.attr("e-dept", e), b.atom("cs")),
                ),
            ),
        )
        self.refuses(
            compile_set_former, former, "after a quantified conjunct"
        )

    def test_union_branch_quantifier_must_end_its_disjunct(self, d):
        e, a = d.emp.var("e"), d.alloc.var("a")
        former = b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.lor(
                    b.land(
                        b.exists(a, alloc_of(d, a, d.emp.attr("e-name", e))),
                        b.eq(d.emp.attr("e-dept", e), b.atom("cs")),
                    ),
                    b.eq(d.emp.attr("e-dept", e), b.atom("math")),
                ),
            ),
        )
        self.refuses(compile_set_former, former, "not last")

    def test_or_swallowed_membership_falls_back(self, d):
        """``member(e, EMP) or P`` can no longer narrow the domain — the
        tree walk would enumerate the whole arity class, a different
        touch regime, so the compiler refuses."""
        e = d.emp.var("e")
        former = b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.lor(
                b.member(e, d.emp.rel()),
                b.eq(d.emp.attr("e-dept", e), b.atom("cs")),
            ),
        )
        self.refuses(compile_set_former, former, "exactly one membership")

    def test_non_set_expression(self, d):
        self.refuses(compile_set_expr, b.atom(3), "not a compilable")
