"""Sorts: the five families of Section 2 and their invariants."""

import pytest

from repro.errors import SortError
from repro.logic.sorts import (
    ATOM,
    BOOL,
    STATE,
    Sort,
    SortKind,
    require_object,
    require_sort,
    require_state,
    set_id_sort,
    set_sort,
    tuple_id_sort,
    tuple_sort,
)


class TestSortFamilies:
    def test_state_atom_bool_are_distinct(self):
        assert len({STATE, ATOM, BOOL}) == 3

    def test_tuple_sorts_indexed_by_arity(self):
        assert tuple_sort(2) == tuple_sort(2)
        assert tuple_sort(2) != tuple_sort(3)

    def test_set_sort_element(self):
        assert set_sort(3).element_sort() == tuple_sort(3)

    def test_element_sort_of_non_set_fails(self):
        with pytest.raises(SortError):
            tuple_sort(2).element_sort()

    def test_identifier_sorts(self):
        assert tuple_id_sort(2).is_identifier
        assert set_id_sort(2).is_identifier
        assert tuple_id_sort(2) != set_id_sort(2)

    def test_zero_arity_tuple_allowed(self):
        assert tuple_sort(0).arity == 0

    def test_negative_arity_rejected(self):
        with pytest.raises(SortError):
            Sort(SortKind.TUPLE, -1)

    def test_scalar_sorts_reject_arity(self):
        with pytest.raises(SortError):
            Sort(SortKind.STATE, 2)


class TestObjectSorts:
    """Definition 3: object-sorted programs are queries, state-sorted ones
    transactions."""

    def test_state_is_not_object(self):
        assert not STATE.is_object

    def test_bool_is_not_object(self):
        assert not BOOL.is_object

    def test_atoms_tuples_sets_ids_are_object(self):
        for sort in (ATOM, tuple_sort(1), set_sort(2), tuple_id_sort(1), set_id_sort(3)):
            assert sort.is_object


class TestRequireHelpers:
    def test_require_sort_passes(self):
        require_sort(ATOM, ATOM, "ctx")

    def test_require_sort_fails(self):
        with pytest.raises(SortError, match="ctx"):
            require_sort(ATOM, STATE, "ctx")

    def test_require_state(self):
        require_state(STATE, "ctx")
        with pytest.raises(SortError):
            require_state(ATOM, "ctx")

    def test_require_object(self):
        require_object(ATOM, "ctx")
        with pytest.raises(SortError):
            require_object(STATE, "ctx")

    def test_str_rendering(self):
        assert str(STATE) == "state"
        assert str(tuple_sort(5)) == "tup(5)"
        assert str(set_sort(2)) == "set(2)"
