"""WAL-shipped read replicas: staleness bounds, re-basing, atomicity."""

from __future__ import annotations

import pytest

from repro.db.schema import Schema
from repro.engine import Database
from repro.errors import ReplicaLagExceeded
from repro.logic import builder as b
from repro.sharding import Replica, ShardedDatabase, TwoPhaseFaults
from repro.transactions.program import query, transaction

x, y = b.atom_var("x"), b.atom_var("y")
put = transaction("put", (x, y), b.insert(b.mktuple(x, y), "KV"))
n_rows = query("n-rows", (), b.size_of(b.rel("KV", 2)))


def kv_schema() -> Schema:
    schema = Schema()
    schema.add_relation("KV", ("k", "v"))
    return schema


def primary(path, **kwargs) -> Database:
    db = Database(kv_schema())
    db.durable(str(path), **kwargs)
    return db


class TestTailing:
    def test_replica_catches_up_on_poll(self, tmp_path):
        db = primary(tmp_path)
        for i in range(3):
            db.execute(put, i, i)
        replica = Replica(str(tmp_path))
        assert replica.lag() == 0
        assert replica.query(n_rows) == 3
        # New primary commits appear after the next poll, not before.
        db.execute(put, 9, 9)
        assert replica.lag() == 1
        assert replica.query(n_rows) == 4  # query() polls first

    def test_stale_reads_within_bound_are_served(self, tmp_path):
        db = primary(tmp_path)
        db.execute(put, 1, 1)
        replica = Replica(str(tmp_path), max_lag=1024)
        assert replica.query(n_rows) == 1

    def test_lag_bound_refusal_is_typed_and_carries_watermarks(
        self, tmp_path
    ):
        """A record the replica cannot yet apply (a sequence gap, as left
        by in-flight shipping) is durable lag a poll cannot clear: queries
        with a tight bound must refuse, typed, with both watermarks."""
        from repro.storage.journal import Journal, JournalRecord
        from repro.storage.store import JOURNAL_NAME

        db = primary(tmp_path)
        db.execute(put, 0, 0)
        replica = Replica(str(tmp_path))
        assert replica.query(n_rows) == 1

        gap = JournalRecord(
            seq=replica.applied_seq + 5,
            label="shipped-ahead",
            program=None,
            args=(),
            snapshot_version=None,
            delta={},
            post_digest="",
            kind="commit",
            txid=None,
        )
        writer = Journal(tmp_path / JOURNAL_NAME)
        writer.append(gap)
        writer.close()

        with pytest.raises(ReplicaLagExceeded) as excinfo:
            replica.query(n_rows, max_lag=0)
        err = excinfo.value
        assert err.max_lag == 0
        assert err.primary - err.applied >= 1
        assert str(err.primary - err.applied) in str(err)
        # A looser bound still serves the consistent prefix.
        assert replica.query(n_rows, max_lag=8) == 1

    def test_max_lag_zero_serves_when_fully_caught_up(self, tmp_path):
        db = primary(tmp_path)
        db.execute(put, 1, 1)
        replica = Replica(str(tmp_path), max_lag=0)
        assert replica.query(n_rows) == 1


class TestRebase:
    def test_replica_rebase_after_checkpoint_truncation(self, tmp_path):
        """A replica that falls behind a checkpoint-truncated journal must
        re-base from the newest snapshot instead of serving a gap."""
        db = primary(tmp_path, checkpoint_every=4)
        db.execute(put, 0, 0)
        replica = Replica(str(tmp_path))
        assert replica.query(n_rows) == 1
        # Drive far past several checkpoints so old journal prefixes the
        # replica never saw are truncated away.
        for i in range(1, 20):
            db.execute(put, i, i)
        assert replica.query(n_rows) == 20

    def test_fresh_replica_starts_from_snapshot(self, tmp_path):
        db = primary(tmp_path, checkpoint_every=4)
        for i in range(10):
            db.execute(put, i, i)
        replica = Replica(str(tmp_path))
        assert replica.query(n_rows) == 10


class TestShardReplica:
    def test_replica_tails_one_shard_of_a_sharded_database(self, tmp_path):
        schema = Schema()
        schema.add_relation("A", ("k", "v"))
        schema.add_relation("B", ("k", "v"))
        sdb = ShardedDatabase(
            schema, shards=2, path=str(tmp_path),
            placement={"A": 0, "B": 1},
        )
        put_a = transaction("put-a", (x, y), b.insert(b.mktuple(x, y), "A"))
        n_a = query("n-a", (), b.size_of(b.rel("A", 2)))
        for i in range(4):
            sdb.execute(put_a, i, i)
        shard = sdb.plan.shard_of("A")
        replica = Replica(str(tmp_path / f"shard-{shard}"))
        assert replica.query(n_a) == 4
        sdb.close()

    def test_replica_never_serves_an_unresolved_prepare(self, tmp_path):
        """A pending PREPARE is not a commit: the replica must keep serving
        the pre-transaction state until the outcome record arrives."""
        schema = Schema()
        schema.add_relation("A", ("k", "v"))
        schema.add_relation("B", ("k", "v"))
        sdb = ShardedDatabase(
            schema, shards=2, path=str(tmp_path),
            placement={"A": 0, "B": 1},
        )
        both = transaction(
            "both",
            (x, y),
            b.seq(
                b.insert(b.mktuple(x, y), "A"),
                b.insert(b.mktuple(x, y), "B"),
            ),
        )
        n_a = query("n-a", (), b.size_of(b.rel("A", 2)))
        shard = sdb.plan.shard_of("A")

        from repro.errors import InDoubt

        sdb.faults = TwoPhaseFaults(crash_at="before-decision")
        with pytest.raises(InDoubt):
            sdb.execute(both, 1, 1)
        sdb.close()

        # The shard journal now ends in a PREPARE with no outcome.
        replica = Replica(str(tmp_path / f"shard-{shard}"))
        assert replica.query(n_a) == 0

        sdb2, _ = ShardedDatabase.recover(
            schema, str(tmp_path), placement={"A": 0, "B": 1}
        )
        # Recovery aborted it (presumed abort); the outcome record tells
        # the replica to drop the stashed prepare.
        assert replica.query(n_a) == 0
        sdb2.execute(both, 2, 2)
        assert replica.query(n_a) == 1
        sdb2.close()

    def test_second_replica_rebases_across_promotion_truncation(
        self, tmp_path
    ):
        """A follower that polls while a sibling's promotion checkpoints
        (truncating the journal into the *new* epoch) must re-base cleanly
        from the promotion snapshot — and must never serve the
        pre-promotion PREPARE it had stashed."""
        schema = Schema()
        schema.add_relation("A", ("k", "v"))
        schema.add_relation("B", ("k", "v"))
        sdb = ShardedDatabase(
            schema, shards=2, path=str(tmp_path),
            placement={"A": 0, "B": 1},
        )
        both = transaction(
            "both",
            (x, y),
            b.seq(
                b.insert(b.mktuple(x, y), "A"),
                b.insert(b.mktuple(x, y), "B"),
            ),
        )
        n_a = query("n-a", (), b.size_of(b.rel("A", 2)))
        shard = sdb.plan.shard_of("A")
        sdb.execute(both, 1, 1)

        follower = Replica(str(tmp_path / f"shard-{shard}"))
        assert follower.query(n_a) == 1

        from repro.errors import InDoubt

        sdb.faults = TwoPhaseFaults(crash_at="before-decision")
        with pytest.raises(InDoubt):
            sdb.execute(both, 2, 2)
        sdb.close()

        follower.poll()  # the follower stashes the dangling PREPARE
        assert follower.pending()

        # A sibling replica promotes: fence, drain, presumed abort,
        # checkpoint — the journal is truncated into the new epoch.
        promotion = Replica(str(tmp_path / f"shard-{shard}")).promote()
        assert promotion.epoch == 2
        promotion.store.log_commit(
            promotion.state, promotion.state,
            seq=promotion.seq + 1, label="post-promotion",
        )

        # The racing follower's next poll re-bases from the promotion
        # snapshot; the stashed pre-promotion prepare is gone, never
        # served, and the aborted write never appears.
        assert follower.query(n_a) == 1
        assert not follower.pending()
        assert follower.journal_epoch == promotion.epoch
        promotion.store.close()

    def test_replica_applies_committed_two_phase_outcome(self, tmp_path):
        schema = Schema()
        schema.add_relation("A", ("k", "v"))
        schema.add_relation("B", ("k", "v"))
        sdb = ShardedDatabase(
            schema, shards=2, path=str(tmp_path),
            placement={"A": 0, "B": 1},
        )
        both = transaction(
            "both",
            (x, y),
            b.seq(
                b.insert(b.mktuple(x, y), "A"),
                b.insert(b.mktuple(x, y), "B"),
            ),
        )
        n_a = query("n-a", (), b.size_of(b.rel("A", 2)))
        shard = sdb.plan.shard_of("A")
        replica = Replica(str(tmp_path / f"shard-{shard}"))
        sdb.execute(both, 1, 1)
        sdb.execute(both, 2, 2)
        assert replica.query(n_a) == 2
        sdb.close()
