"""The query planner end to end: answers, plan caching, fallbacks,
statistics maintenance, explain rendering, verify/quarantine, and the
engine/server wiring.

The planner's contract is the accelerator contract from DESIGN.md §7:
identical observable behavior to the tree walk — same values, same
canonical ordering, same error classes — with ``verify=True`` turning
any lapse into :class:`PlannerMismatch` and ``quarantine=True`` into a
one-way degradation back to the tree walk.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import Database, PlannerMismatch, query
from repro.domains import make_domain
from repro.eval.quarantine import QuarantineWarning
from repro.logic import builder as b


@pytest.fixture()
def domain():
    return make_domain()


def fresh_db(domain, **kwargs):
    return Database(domain.schema, initial=domain.sample_state())


def names_in_dept(d, dept):
    e = d.emp.var("e")
    return query(
        f"names-in-{dept}",
        (),
        b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.eq(d.emp.attr("e-dept", e), b.atom(dept)),
            ),
        ),
    )


def allocated_names(d):
    e, a = d.emp.var("e"), d.alloc.var("a")
    return query(
        "allocated-names",
        (),
        b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.exists(
                    a,
                    b.land(
                        b.member(a, d.alloc.rel()),
                        b.eq(
                            d.alloc.attr("a-emp", a), d.emp.attr("e-name", e)
                        ),
                    ),
                ),
            ),
        ),
    )


class TestAnswers:
    def test_planned_answers_equal_tree_walk(self, domain):
        queries = [
            names_in_dept(domain, "cs"),
            allocated_names(domain),
            query("headcount", (), b.size_of(b.rel("EMP", 5))),
            query(
                "total-perc",
                (),
                b.sum_of(
                    b.setformer(
                        domain.alloc.attr("perc", domain.alloc.var("a")),
                        domain.alloc.var("a"),
                        b.member(domain.alloc.var("a"), domain.alloc.rel()),
                    )
                ),
            ),
        ]
        plain = fresh_db(domain)
        planned = fresh_db(domain)
        planner = planned.enable_planner()
        for q in queries:
            expected = plain.query(q)
            got = planned.query(q)
            assert type(got) is type(expected)
            # TupleSet equality includes representative order: the
            # executor must reproduce the tree walk's canonical sort.
            assert got == expected, q.name
        assert planner.exec_count >= len(queries)
        assert planner.mismatch_count == 0

    def test_constraint_checking_verdicts_survive_planning(self, domain):
        domain.install_constraints()
        planned = Database(domain.schema, initial=domain.sample_state())
        planned.enable_planner(verify=True)
        # hire violates every-employee-allocated; transfer preserves it.
        with pytest.raises(repro.ConstraintViolation):
            planned.execute(domain.hire, "erin", "cs", 90, 25, "S")
        planned.execute(domain.create_project, "apollo", 10)

    def test_plan_cache_compiles_once(self, domain):
        db = fresh_db(domain)
        planner = db.enable_planner()
        q = names_in_dept(domain, "cs")
        db.query(q)
        db.query(q)
        db.query(q)
        assert planner.compiled_count == 1
        assert planner.exec_count == 3

    def test_inexpressible_query_falls_back_silently(self, domain):
        db = fresh_db(domain)
        planner = db.enable_planner(verify=True)
        e = domain.emp.var("e")
        # No membership conjunct: the tree walk enumerates the full arity
        # class, a touch regime the compiler refuses to replicate.
        unnarrowed = query(
            "unnarrowed",
            (),
            b.setformer(
                domain.emp.attr("e-name", e),
                e,
                b.eq(domain.emp.attr("e-dept", e), b.atom("cs")),
            ),
        )
        plain = fresh_db(domain)
        assert db.query(unnarrowed) == plain.query(unnarrowed)
        assert planner.exec_count == 0

    def test_arithmetic_condition_now_plans(self, domain):
        """Arithmetic comparisons are inside the widened fragment: they
        compile to post-join filters instead of forcing a fallback."""
        db = fresh_db(domain)
        planner = db.enable_planner(verify=True)
        e = domain.emp.var("e")
        arithmetic = query(
            "arith",
            (),
            b.setformer(
                domain.emp.attr("e-name", e),
                e,
                b.land(
                    b.member(e, domain.emp.rel()),
                    b.le(
                        b.plus(domain.emp.attr("salary", e), b.atom(0)),
                        b.atom(1000),
                    ),
                ),
            ),
        )
        plain = fresh_db(domain)
        assert db.query(arithmetic) == plain.query(arithmetic)
        assert planner.exec_count == 1
        assert planner.mismatch_count == 0

    def test_budget_metering_still_bites_under_planning(self, domain):
        """The executor ticks the same budget seam, so a fuel limit that
        stops the tree walk stops the planned run too."""
        from repro.transactions.budget import Budget

        q = allocated_names(domain)
        db = fresh_db(domain)
        planner = db.enable_planner()
        with pytest.raises(repro.BudgetExceeded):
            db.query(q, budget=Budget(max_steps=2))
        assert db.query(q, budget=Budget(max_steps=10_000)) is not None
        assert planner.exec_count >= 1


def union_names(d):
    """Employees in cs, or with an allocation — a union plan."""
    e, a = d.emp.var("e"), d.alloc.var("a")
    return query(
        "cs-or-allocated",
        (),
        b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.lor(
                    b.eq(d.emp.attr("e-dept", e), b.atom("cs")),
                    b.exists(
                        a,
                        b.land(
                            b.member(a, d.alloc.rel()),
                            b.eq(
                                d.alloc.attr("a-emp", a),
                                d.emp.attr("e-name", e),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )


class TestWidenedFragment:
    def test_union_query_plans_and_verifies(self, domain):
        db = fresh_db(domain)
        planner = db.enable_planner(verify=True)
        plain = fresh_db(domain)
        q = union_names(domain)
        assert db.query(q) == plain.query(q)
        assert planner.exec_count == 1
        assert planner.mismatch_count == 0

    def test_multi_conjunct_exists_chain_plans(self, domain):
        e = domain.emp.var("e")
        a, s = domain.alloc.var("a"), domain.skill.var("s")
        q = query(
            "allocated-and-skilled",
            (),
            b.setformer(
                domain.emp.attr("e-name", e),
                e,
                b.land(
                    b.member(e, domain.emp.rel()),
                    b.exists(
                        a,
                        b.land(
                            b.member(a, domain.alloc.rel()),
                            b.eq(
                                domain.alloc.attr("a-emp", a),
                                domain.emp.attr("e-name", e),
                            ),
                        ),
                    ),
                    b.exists(
                        s,
                        b.land(
                            b.member(s, domain.skill.rel()),
                            b.eq(
                                domain.skill.attr("s-emp", s),
                                domain.emp.attr("e-name", e),
                            ),
                        ),
                    ),
                ),
            ),
        )
        db = fresh_db(domain)
        planner = db.enable_planner(verify=True)
        plain = fresh_db(domain)
        assert db.query(q) == plain.query(q)
        assert planner.exec_count == 1
        assert planner.mismatch_count == 0

    def test_foreach_transaction_runs_through_planner(self, domain):
        """``set-status`` iterates a foreach whose domain now plans; the
        committed state must match the tree walk's exactly."""
        db = fresh_db(domain)
        planner = db.enable_planner(verify=True)
        plain = fresh_db(domain)
        db.execute(domain.marry, "bob", "M")
        plain.execute(domain.marry, "bob", "M")
        assert db.current.relations["EMP"] == plain.current.relations["EMP"]
        assert planner.exec_count >= 1
        assert planner.mismatch_count == 0


class TestNegativeCache:
    def inexpressible(self, domain):
        e = domain.emp.var("e")
        return query(
            "unnarrowed-neg",
            (),
            b.setformer(
                domain.emp.attr("e-name", e),
                e,
                b.eq(domain.emp.attr("e-dept", e), b.atom("cs")),
            ),
        )

    def negative_entries(self, planner):
        return [v for v in planner._plans.values() if isinstance(v, str)]

    def test_register_encoding_invalidates_negative_cache(self, domain):
        db = fresh_db(domain)
        planner = db.enable_planner()
        db.query(self.inexpressible(domain))
        assert len(self.negative_entries(planner)) == 1
        db.register_encoding(domain.fire_encoding())
        assert self.negative_entries(planner) == []

    def test_structural_commit_invalidates_negative_cache(self, domain):
        from repro import transaction

        db = fresh_db(domain)
        planner = db.enable_planner()
        db.query(self.inexpressible(domain))
        fallbacks = planner.fallback_count
        assert len(self.negative_entries(planner)) == 1
        # A commit that creates a relation is structural; the refusal may
        # no longer hold, so the reason cache is dropped and the next
        # evaluation re-attempts compilation.
        db.execute(transaction("copy-emp", (), b.assign("EMP2", b.rel("EMP", 5))))
        assert self.negative_entries(planner) == []
        db.query(self.inexpressible(domain))
        assert planner.fallback_count == fallbacks + 1

    def test_non_structural_commit_keeps_negative_cache(self, domain):
        db = fresh_db(domain)
        planner = db.enable_planner()
        db.query(self.inexpressible(domain))
        db.execute(domain.create_project, "apollo", 25)
        assert len(self.negative_entries(planner)) == 1


class TestExplain:
    def test_explain_renders_the_physical_plan(self, domain):
        db = fresh_db(domain)
        planner = db.enable_planner()
        plan = planner.plan(allocated_names(domain).body, db.current)
        text = plan.explain()
        assert "Scan" in text
        assert "EMP" in text and "ALLOC" in text
        assert "rows" in text  # cardinality annotations

    def test_explain_renders_a_union_plan(self, domain):
        db = fresh_db(domain)
        planner = db.enable_planner()
        plan = planner.plan(union_names(domain).body, db.current)
        text = plan.explain()
        assert "Union" in text
        assert "SemiJoin" in text
        assert "ALLOC" in text

    def test_plan_error_on_inexpressible_node(self, domain):
        db = fresh_db(domain)
        planner = db.enable_planner()
        with pytest.raises(repro.PlanError) as exc:
            planner.plan(b.atom(3), db.current)
        assert exc.value.reason


class TestStats:
    def test_stats_maintained_incrementally_through_commits(self, domain):
        db = fresh_db(domain)
        planner = db.enable_planner()
        before = planner.stats.row_estimate("PROJ")
        commits_before = planner.stats.commits_observed
        db.execute(domain.create_project, "apollo", 25)
        assert planner.stats.row_estimate("PROJ") == before + 1
        assert planner.stats.commits_observed == commits_before + 1

    def test_replaced_relation_gets_fresh_stats(self, domain):
        """A commit that drops and re-creates a relation must not leave
        the predecessor's row count or NDV cache behind: the greedy join
        order would keep ranking a dead relation's statistics."""
        from repro import transaction

        db = fresh_db(domain)
        planner = db.enable_planner()
        # Populate the NDV cache for ALLOC, then replace it wholesale.
        planner.stats.distinct(db.current, "ALLOC", 1)
        assert "ALLOC" in planner.stats._ndv
        db.execute(
            transaction(
                "reset-alloc",
                (),
                b.assign("ALLOC", b.diff(b.rel("ALLOC", 3), b.rel("ALLOC", 3))),
            )
        )
        assert planner.stats.row_estimate("ALLOC") == 0
        assert "ALLOC" not in planner.stats._ndv
        # Re-register: stats start from the fresh (empty) relation, and a
        # lazily recomputed NDV reflects the new contents only.
        db.execute(domain.allocate, "alice", "db", 10)
        assert planner.stats.row_estimate("ALLOC") == 1
        assert planner.stats.distinct(db.current, "ALLOC", 1) == 1

    def test_failed_commit_does_not_move_stats(self, domain):
        domain.install_constraints()
        db = Database(domain.schema, initial=domain.sample_state())
        planner = db.enable_planner()
        before = planner.stats.row_estimate("EMP")
        ok, _ = db.try_execute(domain.hire, "erin", "cs", 90, 25, "S")
        assert not ok
        assert planner.stats.row_estimate("EMP") == before


class TestVerifyAndQuarantine:
    def test_verify_raises_planner_mismatch_on_corruption(self, domain):
        db = fresh_db(domain)
        planner = db.enable_planner(verify=True)
        planner._chaos_corrupt = True
        with pytest.raises(PlannerMismatch):
            db.query(query("headcount", (), b.size_of(b.rel("EMP", 5))))

    def test_quarantine_returns_truth_and_disables_planner(self, domain):
        db = fresh_db(domain)
        planner = db.enable_planner(quarantine=True)
        planner._chaos_corrupt = True
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            answer = db.query(
                query("headcount", (), b.size_of(b.rel("EMP", 5)))
            )
        assert answer == 4  # the oracle's answer, not the corrupted one
        assert not planner.enabled
        quarantines = [
            w for w in caught if issubclass(w.category, QuarantineWarning)
        ]
        assert len(quarantines) == 1
        assert quarantines[0].message.component == "planner"
        # Subsequent queries take the tree walk; no further planner execs.
        execs = planner.exec_count
        db.query(query("headcount2", (), b.size_of(b.rel("EMP", 5))))
        assert planner.exec_count == execs

    def test_quarantine_increments_metric(self, domain):
        db = fresh_db(domain)
        planner = db.enable_planner(quarantine=True)
        planner._chaos_corrupt = True
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            db.query(query("headcount", (), b.size_of(b.rel("EMP", 5))))
        counter = db.metrics.get(
            "repro_quarantined_total", component="planner"
        )
        assert counter is not None and counter.value == 1


class TestWiring:
    def test_package_root_exports(self):
        for name in ("QueryPlanner", "Plan", "PlanError", "PlannerMismatch"):
            assert hasattr(repro, name)
            assert name in repro.__all__

    def test_enable_planner_survives_tracking_wrap(self, domain):
        from repro.concurrent.tracking import TrackingInterpreter

        db = fresh_db(domain)
        db.enable_planner()
        tracking = TrackingInterpreter.wrapping(db.interpreter)
        assert tracking.planner is db._planner

    def test_server_planner_flag(self, domain):
        from repro.server import TransactionServer

        db = fresh_db(domain)
        TransactionServer(db, planner=True)
        assert db._planner is not None
        assert db._planner.verify  # quarantine implies verify: safe config
