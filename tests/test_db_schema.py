"""Relation schemas and the schema triple."""

import pytest

from repro.errors import SchemaError, SortError
from repro.db import RelationSchema, Schema
from repro.logic import builder as b
from repro.logic.sorts import set_id_sort, set_sort


class TestRelationSchema:
    def test_arity(self):
        rs = RelationSchema("EMP", ("e-name", "salary"))
        assert rs.arity == 2

    def test_attr_index_one_based(self):
        rs = RelationSchema("EMP", ("e-name", "salary"))
        assert rs.attr_index("e-name") == 1
        assert rs.attr_index("salary") == 2

    def test_unknown_attribute(self):
        rs = RelationSchema("EMP", ("e-name",))
        with pytest.raises(SchemaError, match="salary"):
            rs.attr_index("salary")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("EMP", ("a", "a"))

    def test_empty_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("EMP", ())

    def test_rel_and_rid_sorts(self):
        rs = RelationSchema("EMP", ("a", "b"))
        assert rs.rel().sort == set_sort(2)
        assert rs.rid().sort == set_id_sort(2)

    def test_attr_builder(self):
        rs = RelationSchema("EMP", ("e-name", "salary"))
        e = rs.var("e")
        expr = rs.attr("salary", e)
        assert expr.symbol.index == 2

    def test_var_builders(self):
        rs = RelationSchema("EMP", ("a", "b"))
        assert rs.var("e").sort == rs.svar("e").sort
        assert rs.var("e").layer != rs.svar("e").layer


class TestSchema:
    def test_add_and_lookup(self):
        s = Schema()
        s.add_relation("R", ("a",))
        assert s.relation("R").arity == 1
        assert "R" in s and "T" not in s

    def test_duplicate_relation_rejected(self):
        s = Schema()
        s.add_relation("R", ("a",))
        with pytest.raises(SchemaError):
            s.add_relation("R", ("b",))

    def test_unknown_relation(self):
        with pytest.raises(SchemaError):
            Schema().relation("R")

    def test_constraints_registry(self):
        from repro.constraints import constraint

        s = Schema()
        sv = b.state_var("s")
        c = constraint("always", b.forall(sv, b.holds(sv, b.true())))
        s.add_constraint(c)
        assert s.constraint("always") is c
        with pytest.raises(SchemaError):
            s.add_constraint(c)

    def test_unknown_constraint(self):
        with pytest.raises(SchemaError):
            Schema().constraint("nope")

    def test_arity_of(self):
        s = Schema()
        s.add_relation("R", ("a", "b", "c"))
        assert s.arity_of("R") == 3
