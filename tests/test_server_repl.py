"""The interactive REPL: statement parsing, continuation, tabular
rendering, meta commands, and error display.

Parsing and formatting are pure functions tested directly; the loop is
driven through a stub client (no sockets) plus one end-to-end walkthrough
against a real server — the same script shape ``examples/
transaction_server.py`` runs in CI.
"""

from __future__ import annotations

import io

import pytest

from repro import Client, Database, TransactionServer
from repro.db.values import DBTuple, TupleSet
from repro.errors import ConstraintViolation, ParseError
from repro.logic import builder as b
from repro.server.client import ExecuteResult
from repro.server.repl import (
    Repl,
    format_table,
    format_value,
    parse_statement,
    run_repl,
    statement_complete,
)
from repro.transactions.program import query


class TestStatementCompletion:
    @pytest.mark.parametrize(
        "text",
        [
            "headcount()",
            "hire(erin, cs, 90, 25, S)",
            "\\programs",
            "hire(erin,\n     cs, 90,\n     25, S)",
            "hire('a (tricky) name', cs, 1, 2, S)",
        ],
    )
    def test_complete(self, text):
        assert statement_complete(text)

    @pytest.mark.parametrize(
        "text",
        [
            "hire(erin,",
            "hire(erin, cs,\n     90,",
            "headcount() \\",
            "hire('unterminated",
            "hire(nested(deeply",
        ],
    )
    def test_incomplete(self, text):
        assert not statement_complete(text)

    @pytest.mark.parametrize(
        "text",
        [
            # Escaped quote does not close the string early.
            "hire('it\\'s fine', cs, 1, 2, S)",
            'hire("she said \\"hi\\"", cs, 1, 2, S)',
            # Comments are text to end of line, unbalanced parens and all.
            "headcount()  # todo: rename (someday",
            "hire(erin, cs, 1, 2, S) # trailing ) paren",
            # A backslash ending the line inside a string is data, and the
            # statement is complete once the quote closes.
            "hire('ends with \\\\', cs, 1, 2, S)",
        ],
    )
    def test_complete_edge_cases(self, text):
        assert statement_complete(text)

    @pytest.mark.parametrize(
        "text",
        [
            # The escaped quote leaves the literal open.
            "hire('oops\\'",
            # The open paren before the comment still needs closing.
            "hire(erin  # comment",
            # A '#' inside a string is not a comment: quote stays open.
            "hire('anchor #",
        ],
    )
    def test_incomplete_edge_cases(self, text):
        assert not statement_complete(text)


class TestParsing:
    def test_words_numbers_and_strings(self):
        name, args = parse_statement("hire(erin, cs, 90, -3, 'S M')")
        assert name == "hire"
        assert args == ["erin", "cs", 90, -3, "S M"]

    def test_quoted_digits_stay_strings(self):
        _, args = parse_statement("lookup('42')")
        assert args == ["42"]

    def test_no_arguments(self):
        assert parse_statement("headcount()") == ("headcount", [])
        assert parse_statement("headcount") == ("headcount", [])

    def test_multi_line_continuations_collapse(self):
        name, args = parse_statement("hire(erin,\n     cs, 90,\n     25, S)")
        assert (name, args) == ("hire", ["erin", "cs", 90, 25, "S"])

    def test_backslash_continuation(self):
        name, args = parse_statement("hire(erin, \\\ncs, 1, 2, S)")
        assert (name, args) == ("hire", ["erin", "cs", 1, 2, "S"])

    def test_unterminated_string_is_a_parse_error(self):
        with pytest.raises(ParseError, match="unterminated string"):
            parse_statement("hire('oops)")

    def test_unterminated_arguments_are_a_parse_error(self):
        with pytest.raises(ParseError, match="unterminated argument"):
            parse_statement("hire(erin")

    def test_garbage_is_a_parse_error(self):
        with pytest.raises(ParseError):
            parse_statement("!!!")

    def test_escaped_quotes_reach_the_argument(self):
        _, args = parse_statement("hire('it\\'s fine', cs, 1, 2, S)")
        assert args == ["it's fine", "cs", 1, 2, "S"]

    def test_comment_after_statement_is_dropped(self):
        name, args = parse_statement("hire(erin, cs, 1, 2, S)  # onboard")
        assert (name, args) == ("hire", ["erin", "cs", 1, 2, "S"])

    def test_hash_inside_string_is_kept(self):
        _, args = parse_statement("lookup('item #7')")
        assert args == ["item #7"]

    def test_backslash_inside_string_is_not_a_continuation(self):
        _, args = parse_statement("lookup('a\\\\')")
        assert args == ["a\\"]


class TestFormatting:
    def test_table_aligns_columns(self):
        text = format_table(
            ["name", "salary"], [["alice", 120], ["bo", 7]]
        )
        lines = text.splitlines()
        assert lines[0] == "name   salary"
        assert lines[1] == "-----  ------"
        assert lines[2] == "alice  120"
        assert lines[3] == "bo     7"

    def test_tuple_set_renders_with_tids_and_count(self):
        ts = TupleSet.of(2, [DBTuple(2, ("b", 2)), DBTuple(1, ("a", 1))])
        text = format_value(ts)
        assert "tid" in text.splitlines()[0]
        # Sorted by tuple identifier.
        assert text.splitlines()[2].startswith("1")
        assert text.endswith("(2 tuples)")

    def test_single_tuple_renders_as_one_row(self):
        text = format_value(DBTuple(9, ("alice", "cs")))
        assert len(text.splitlines()) == 3
        assert "alice" in text

    def test_atoms_render_plainly(self):
        assert format_value(7) == "7"
        assert format_value("cs") == "cs"


class StubClient:
    """A catalog and canned responses — no sockets."""

    def __init__(self):
        self.programs = {
            "hire": {"kind": "transaction", "params": ["name", "dept"]},
            "headcount": {"kind": "query", "params": []},
        }
        self.relations = {"EMP": ["e-name", "e-dept"]}
        self.calls: list = []

    def execute(self, name, *args):
        self.calls.append(("execute", name, args))
        if args and args[0] == "badname":
            raise ConstraintViolation("salary-cap", "refused")
        return ExecuteResult(label=name, attempts=1, seq=len(self.calls))

    def query(self, name, *args):
        self.calls.append(("query", name, args))
        return 42


class TestLoop:
    def run(self, lines):
        stub = StubClient()
        out = io.StringIO()
        run_repl(stub, lines, out=out)
        return stub, out.getvalue()

    def test_dispatches_by_catalog_kind(self):
        stub, output = self.run(["hire(erin, cs)", "headcount()"])
        assert stub.calls == [
            ("execute", "hire", ("erin", "cs")),
            ("query", "headcount", ()),
        ]
        assert "committed hire" in output
        assert "42" in output

    def test_multi_line_statements_buffer_until_complete(self):
        stub, output = self.run(["hire(erin,", "     cs)"])
        assert stub.calls == [("execute", "hire", ("erin", "cs"))]

    def test_unknown_program_is_reported_not_raised(self):
        stub, output = self.run(["promote(alice)"])
        assert stub.calls == []
        assert "unknown program 'promote'" in output

    def test_typed_errors_render_with_their_class(self):
        _, output = self.run(["hire(badname, cs)"])
        assert "error [ConstraintViolation]" in output

    def test_meta_commands(self):
        _, output = self.run(["\\programs", "\\relations", "\\help", "\\nope"])
        assert "hire" in output and "transaction" in output
        assert "EMP" in output and "e-name" in output
        assert "continuation" in output
        assert "unknown meta command" in output

    def test_quit_stops_the_loop(self):
        stub, output = self.run(["\\quit", "headcount()"])
        assert stub.calls == []
        assert output.strip().endswith("bye")

    def test_blank_lines_are_ignored(self):
        stub, _ = self.run(["", "   ", "headcount()"])
        assert stub.calls == [("query", "headcount", ())]


class TestEndToEnd:
    def test_walkthrough_against_a_live_server(self, domain):
        db = Database(domain.schema, initial=domain.sample_state())
        programs = [
            domain.hire,
            query("headcount", (), b.size_of(b.rel("EMP", 5))),
            query("employees", (), b.rel("EMP", 5)),
        ]
        with TransactionServer(db, programs) as server:
            with Client(*server.address) as client:
                out = io.StringIO()
                repl = run_repl(
                    client,
                    [
                        "hire(erin,",
                        "     cs, 90,",
                        "     25, S)",
                        "headcount()",
                        "employees()",
                        "\\quit",
                    ],
                    out=out,
                )
                assert repl.done
        text = out.getvalue()
        assert "committed hire" in text
        assert "\n5\n" in text  # four employees plus erin
        assert "erin" in text and "(5 tuples)" in text
        assert text.rstrip().endswith("bye")
