"""The metrics surface: instruments, the registry, and both exports."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0

    def test_goes_negative(self):
        g = Gauge()
        g.dec(3)
        assert g.value == -3.0


class TestHistogram:
    def test_empty_window_quantiles_are_zero(self):
        h = Histogram()
        assert h.count == 0 and h.sum == 0.0
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert h.percentile(q) == 0.0
        doc = h.to_doc()
        assert doc["min"] == 0.0 and doc["max"] == 0.0

    def test_single_sample_is_every_quantile(self):
        h = Histogram()
        h.observe(0.25)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.percentile(q) == 0.25

    def test_two_samples_split_nearest_rank(self):
        h = Histogram()
        h.observe(10.0)
        h.observe(2.0)
        # Nearest-rank rounds up: rank(0.5, 2) = 1 → the smaller sample.
        assert h.percentile(0.5) == 2.0
        assert h.percentile(0.51) == 10.0
        assert h.count == 2 and h.sum == 12.0

    def test_window_bounds_quantiles_but_not_count(self):
        h = Histogram(window=4)
        for v in range(1, 11):  # 1..10; window keeps 7, 8, 9, 10
            h.observe(float(v))
        assert h.count == 10
        assert h.sum == 55.0
        assert h.percentile(0.0) == 7.0
        assert h.percentile(1.0) == 10.0
        # min/max stay exact over the full stream.
        doc = h.to_doc()
        assert doc["min"] == 1.0 and doc["max"] == 10.0

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            Histogram(window=0)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("hits") is reg.counter("hits")
        reg.counter("hits").inc()
        assert reg.counter("hits").value == 1.0

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        reg.counter("conflicts", relation="A").inc(3)
        reg.counter("conflicts", relation="B").inc(1)
        assert reg.counter("conflicts", relation="A").value == 3.0
        assert reg.counter("conflicts", relation="B").value == 1.0
        # Label order is irrelevant: keyed by the sorted label set.
        reg.counter("multi", a=1, b=2).inc()
        assert reg.counter("multi", b=2, a=1).value == 1.0

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("latency")
        with pytest.raises(ValueError):
            reg.histogram("latency")

    def test_get_returns_none_for_absent(self):
        reg = MetricsRegistry()
        assert reg.get("nope") is None
        reg.gauge("depth").set(4)
        assert reg.get("depth").value == 4.0
        assert reg.get("depth", shard="x") is None

    def test_families_sorted_by_name_then_labels(self):
        reg = MetricsRegistry()
        reg.counter("z_total")
        reg.counter("a_total", relation="B")
        reg.counter("a_total", relation="A")
        fams = reg.families()
        assert list(fams) == ["a_total", "z_total"]
        assert [dict(labels) for labels, _ in fams["a_total"]] == [
            {"relation": "A"},
            {"relation": "B"},
        ]

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("hits", "help text").inc(7)
        reg.histogram("lat").observe(0.5)
        doc = json.loads(reg.to_json())
        assert doc["hits"]["kind"] == "counter"
        assert doc["hits"]["help"] == "help text"
        assert doc["hits"]["series"][0]["value"] == 7.0
        assert doc["lat"]["series"][0]["quantiles"]["p50"] == 0.5

    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_commits_total", "transactions committed").inc(3)
        reg.counter("repro_conf_total", relation="EMP").inc()
        h = reg.histogram("repro_lat_seconds", "latency")
        h.observe(1.0)
        h.observe(3.0)
        text = reg.exposition()
        assert "# HELP repro_commits_total transactions committed" in text
        assert "# TYPE repro_commits_total counter" in text
        assert "repro_commits_total 3" in text
        assert 'repro_conf_total{relation="EMP"} 1' in text
        # Histograms render as summaries with quantile labels.
        assert "# TYPE repro_lat_seconds summary" in text
        assert 'repro_lat_seconds{quantile="0.5"} 1' in text
        assert 'repro_lat_seconds{quantile="0.99"} 3' in text
        assert "repro_lat_seconds_sum 4" in text
        assert "repro_lat_seconds_count 2" in text
        assert text.endswith("\n")

    def test_empty_registry_exports_cleanly(self):
        reg = MetricsRegistry()
        assert reg.exposition() == ""
        assert reg.to_doc() == {}
        assert reg.summary() == ""

    def test_summary_filters_by_name(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(2)
        reg.histogram("lat").observe(0.1)
        assert reg.summary(["hits"]) == "hits=2"
        assert "lat:n=1" in reg.summary()

    def test_concurrent_updates_do_not_lose_counts(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(500):
                reg.counter("spins").inc()
                reg.histogram("h").observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("spins").value == 4000.0
        assert reg.histogram("h").count == 4000
