"""Property-based tests on the logic machinery itself.

Random term/formula generators drive invariants of substitution,
unification, matching, alpha-equivalence, and ground simplification —
the foundations everything else trusts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import builder as b
from repro.logic.formulas import Eq, Formula, Not
from repro.logic.substitution import Substitution, fresh_var
from repro.logic.terms import AtomConst, Expr, Var
from repro.logic.unify import alpha_equal, match, unify
from repro.theory.ground import simplify, simplify_expr


VAR_NAMES = ["x", "y", "z"]


@st.composite
def atom_exprs(draw, depth=2):
    """Random atom-sorted expressions over variables x, y, z."""
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return b.atom(draw(st.integers(0, 9)))
        return b.atom_var(draw(st.sampled_from(VAR_NAMES)))
    op = draw(st.sampled_from([b.plus, b.minus, b.times]))
    return op(draw(atom_exprs(depth - 1)), draw(atom_exprs(depth - 1)))


@st.composite
def comparisons(draw):
    op = draw(st.sampled_from([b.lt, b.le, b.gt, b.ge, Eq]))
    return op(draw(atom_exprs()), draw(atom_exprs()))


@st.composite
def ground_substitutions(draw):
    chosen = draw(st.lists(st.sampled_from(VAR_NAMES), unique=True))
    return Substitution(
        {b.atom_var(name): b.atom(draw(st.integers(0, 9))) for name in chosen}
    )


class TestSubstitutionProperties:
    @given(atom_exprs(), ground_substitutions())
    @settings(max_examples=100, deadline=None)
    def test_ground_substitution_removes_domain_vars(self, expr, subst):
        result = subst.apply(expr)
        assert not (result.free_vars() & subst.domain())

    @given(atom_exprs(), ground_substitutions())
    @settings(max_examples=100, deadline=None)
    def test_idempotent_for_ground_ranges(self, expr, subst):
        once = subst.apply(expr)
        twice = subst.apply(once)
        assert once == twice

    @given(atom_exprs())
    @settings(max_examples=50, deadline=None)
    def test_empty_substitution_identity(self, expr):
        assert Substitution({}).apply(expr) is expr

    @given(atom_exprs())
    @settings(max_examples=50, deadline=None)
    def test_renaming_preserves_structure(self, expr):
        renaming = Substitution(
            {v: fresh_var(v) for v in expr.free_vars()}
        )
        renamed = renaming.apply(expr)
        assert renamed.size() == expr.size()


class TestUnificationProperties:
    @given(atom_exprs(), atom_exprs())
    @settings(max_examples=150, deadline=None)
    def test_unifier_actually_unifies(self, left, right):
        mgu = unify(left, right)
        if mgu is not None:
            assert mgu.apply(left) == mgu.apply(right)

    @given(atom_exprs())
    @settings(max_examples=50, deadline=None)
    def test_self_unification(self, expr):
        mgu = unify(expr, expr)
        assert mgu is not None
        assert mgu.apply(expr) == expr

    @given(atom_exprs(), ground_substitutions())
    @settings(max_examples=100, deadline=None)
    def test_match_recovers_instance(self, pattern, subst):
        instance = subst.apply(pattern)
        found = match(pattern, instance)
        assert found is not None
        assert found.apply(pattern) == instance

    @given(comparisons())
    @settings(max_examples=50, deadline=None)
    def test_alpha_equal_reflexive(self, formula):
        assert alpha_equal(formula, formula)

    @given(atom_exprs(), atom_exprs())
    @settings(max_examples=100, deadline=None)
    def test_unify_symmetric(self, left, right):
        forward = unify(left, right)
        backward = unify(right, left)
        assert (forward is None) == (backward is None)


class TestGroundSimplificationProperties:
    @given(atom_exprs(), ground_substitutions())
    @settings(max_examples=150, deadline=None)
    def test_simplification_sound_on_ground_terms(self, expr, subst):
        """Folding a fully ground term agrees with the interpreter."""
        full = Substitution(
            {v: b.atom(0) for v in expr.free_vars() - subst.domain()}
        )
        ground = full.apply(subst.apply(expr))
        folded = simplify_expr(ground)
        assert isinstance(folded, AtomConst)
        from repro.db import Schema, initial_state
        from repro.transactions import evaluate

        schema = Schema()
        schema.add_relation("DUMMY", ("a",))
        state = initial_state(schema)
        assert evaluate(state, ground) == folded.value

    @given(comparisons(), ground_substitutions())
    @settings(max_examples=150, deadline=None)
    def test_formula_simplification_sound(self, formula, subst):
        from repro.logic.formulas import FalseF, TrueF

        full = Substitution(
            {v: b.atom(1) for v in formula.free_vars() - subst.domain()}
        )
        ground = full.apply(subst.apply(formula))
        verdict = simplify(ground)
        assert isinstance(verdict, (TrueF, FalseF))
        from repro.db import Schema, initial_state
        from repro.transactions import satisfies

        schema = Schema()
        schema.add_relation("DUMMY", ("a",))
        state = initial_state(schema)
        assert satisfies(state, ground) == isinstance(verdict, TrueF)

    @given(comparisons())
    @settings(max_examples=50, deadline=None)
    def test_double_negation_eliminated(self, formula):
        result = simplify(Not(Not(formula)))
        assert result == simplify(formula)
