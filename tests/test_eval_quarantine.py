"""Graceful degradation of the evaluation accelerators (quarantine mode).

A corrupted cache entry or an unsound incremental skip must not fail the
user's commit when ``quarantine=True``: the faulty component disables
itself (warning + metric) and the engine falls back to full evaluation.
Without quarantine, verify mode must keep raising — the correctness
harness stays strict.
"""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro import Database, Schema, transaction
from repro.constraints.model import Constraint
from repro.db.state import state_from_rows
from repro.eval.cache import CacheMismatch, QueryCache
from repro.eval.incremental import IncrementalChecker, IncrementalMismatch
from repro.eval.quarantine import QuarantineWarning
from repro.logic import builder as b
from repro.transactions.program import query


@pytest.fixture()
def schema():
    s = Schema()
    s.add_relation("A", ("k", "v"))
    s.add_relation("B", ("k", "v"))
    return s


@pytest.fixture()
def db(schema):
    return Database(schema, window=2)


def put(rel: str):
    x, y = b.atom_var("x"), b.atom_var("y")
    return transaction(f"put-{rel}", (x, y), b.insert(b.mktuple(x, y), rel))


def poison_entry(cache: QueryCache) -> int:
    """White-box: flip every cached value; returns how many lied."""
    flipped = 0
    for key, entry in list(cache._entries.items()):
        wrong = entry.value + 1 if isinstance(entry.value, int) else None
        cache._entries[key] = dataclasses.replace(entry, value=wrong)
        flipped += 1
    return flipped


class TestCacheQuarantine:
    def test_poisoned_hit_quarantines_and_returns_fresh_value(self, db):
        cache = db.enable_query_cache(quarantine=True)
        size_a = query("size-a", (), b.size_of(b.rel("A", 2)))
        assert db.query(size_a) == 0  # miss fills the entry
        assert poison_entry(cache) == 1
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert db.query(size_a) == 0  # the truth, not the poison
        quarantines = [
            w for w in caught if issubclass(w.category, QuarantineWarning)
        ]
        assert len(quarantines) == 1
        assert "query-cache" in str(quarantines[0].message)
        assert not cache.enabled
        assert len(cache) == 0  # table flushed on quarantine
        metric = db.metrics.get(
            "repro_quarantined_total", component="query-cache"
        )
        assert metric is not None and metric.value == 1

    def test_quarantined_cache_keeps_answering_without_caching(self, db):
        cache = db.enable_query_cache(quarantine=True)
        size_a = query("size-a", (), b.size_of(b.rel("A", 2)))
        db.query(size_a)
        poison_entry(cache)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            db.query(size_a)  # trips quarantine
        hits_before = cache.stats.hits
        db.execute(put("A"), 1, 1)
        assert db.query(size_a) == 1
        assert db.query(size_a) == 1
        assert cache.stats.hits == hits_before  # bypassed, not consulted
        assert len(cache) == 0

    def test_quarantine_implies_verify(self):
        cache = QueryCache(quarantine=True)
        assert cache.verify

    def test_without_quarantine_verify_still_raises(self, db):
        cache = db.enable_query_cache(verify=True)
        size_a = query("size-a", (), b.size_of(b.rel("A", 2)))
        db.query(size_a)
        poison_entry(cache)
        with pytest.raises(CacheMismatch):
            db.query(size_a)


class TestIncrementalQuarantine:
    def build_db_with_unsound_skip(self, schema, *, quarantine: bool):
        """An engine whose incremental analysis is (artificially) wrong:
        the footprint cache is poisoned so a constraint over A appears to
        have an empty footprint — every A-commit then licenses an unsound
        skip."""
        s = b.state_var("s")
        t = b.ftup_var("t", 2)
        empty_a = Constraint(
            "a-stays-empty",
            b.forall(
                s, b.holds(s, b.lnot(b.exists(t, b.member(t, b.rel("A", 2)))))
            ),
            declared_window=1,
        )
        schema.add_constraint(empty_a)
        db = Database(schema, window=2)
        checker = db.enable_incremental(quarantine=quarantine)
        fp = checker.footprint(empty_a)
        poisoned = dataclasses.replace(
            fp, relations=frozenset(), arities=frozenset()
        )
        checker._footprints[id(empty_a)] = poisoned
        return db, checker, empty_a

    def seed_validity(self, db):
        """One B-commit runs the full check and installs the constraint in
        the valid set (A still empty, so it passes)."""
        db.execute(put("B"), 1, 1)

    def test_unsound_skip_raises_without_quarantine(self, schema):
        db, checker, _ = self.build_db_with_unsound_skip(
            schema, quarantine=False
        )
        checker.verify = True
        self.seed_validity(db)
        with pytest.raises(IncrementalMismatch):
            db.execute(put("A"), 1, 1)

    def test_unsound_skip_quarantines_and_commit_gets_true_verdict(
        self, schema
    ):
        from repro.errors import ConstraintViolation

        db, checker, _ = self.build_db_with_unsound_skip(
            schema, quarantine=True
        )
        self.seed_validity(db)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            # The skip was licensed unsoundly; quarantine falls back to the
            # full check, which correctly REJECTS the commit.
            with pytest.raises(ConstraintViolation):
                db.execute(put("A"), 1, 1)
        quarantines = [
            w for w in caught if issubclass(w.category, QuarantineWarning)
        ]
        assert len(quarantines) == 1
        assert "incremental-checker" in str(quarantines[0].message)
        assert not checker.enabled
        metric = db.metrics.get(
            "repro_quarantined_total", component="incremental-checker"
        )
        assert metric.value == 1
        # A was rolled back: the database is still consistent.
        assert len(db.current.relation("A")) == 0

    def test_quarantined_checker_licenses_nothing(self, schema):
        db, checker, _ = self.build_db_with_unsound_skip(
            schema, quarantine=True
        )
        self.seed_validity(db)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            try:
                db.execute(put("A"), 1, 1)
            except Exception:
                pass
        checked_before = checker.stats.checked
        self.seed_validity(db)  # another B-commit
        assert checker.stats.checked == checked_before + 1  # full check ran
        assert checker.stats.skipped == 0

    def test_quarantine_implies_verify_on_checker(self, schema):
        checker = IncrementalChecker(schema, quarantine=True)
        assert checker.verify
