"""The optimistic scheduler: tracking, validation, retry, log, and stats.

Deterministic suite — interleavings are forced with events through the
``on_evaluated`` instrumentation seam, never with sleeps.
"""

from __future__ import annotations

import threading

import pytest

from repro import (
    Database,
    RetryExhausted,
    RetryPolicy,
    Schema,
    TransactionStatus,
    transaction,
)
from repro.concurrent import (
    Deadline,
    TrackingInterpreter,
    quantile,
    written_relations,
)
from repro.db.state import state_from_rows
from repro.logic import builder as b
from repro.transactions.program import query


@pytest.fixture()
def schema():
    s = Schema()
    s.add_relation("A", ("k", "v"))
    s.add_relation("B", ("k", "v"))
    return s


@pytest.fixture()
def programs():
    x, y = b.atom_var("x"), b.atom_var("y")
    return {
        "put_a": transaction("put-a", (x, y), b.insert(b.mktuple(x, y), "A")),
        "put_b": transaction("put-b", (x, y), b.insert(b.mktuple(x, y), "B")),
        "move": transaction(
            "move",
            (x, y),
            b.seq(b.delete(b.mktuple(x, y), "A"), b.insert(b.mktuple(x, y), "B")),
        ),
    }


@pytest.fixture()
def db(schema):
    return Database(schema, window=2)


# ---------------------------------------------------------------------------
# Tracking
# ---------------------------------------------------------------------------


class TestTracking:
    def test_insert_records_write(self, db, programs):
        tracker = TrackingInterpreter()
        programs["put_a"].run(db.current, 1, 2, interpreter=tracker)
        rw = tracker.read_write_set()
        assert rw.writes == {"A"}
        assert "B" not in rw.footprint

    def test_query_records_read_not_write(self, schema):
        state = state_from_rows(schema, {"A": [(1, 2)]})
        tracker = TrackingInterpreter()
        size_a = query("size-a", (), b.size_of(b.rel("A", 2)))
        assert size_a.query(state, interpreter=tracker) == 1
        rw = tracker.read_write_set()
        assert rw.reads == {"A"} and rw.writes == frozenset()

    def test_formula_evaluation_records_read(self, schema):
        state = state_from_rows(schema, {"A": [(1, 2)]})
        tracker = TrackingInterpreter()
        t = b.ftup_var("t", 2)
        tracker.eval_formula(state, b.exists(t, b.member(t, b.rel("A", 2))))
        assert "A" in tracker.read_write_set().reads

    def test_move_records_both_relations(self, schema, programs):
        state = state_from_rows(schema, {"A": [(1, 1)]})
        tracker = TrackingInterpreter()
        programs["move"].run(state, 1, 1, interpreter=tracker)
        assert tracker.read_write_set().writes == {"A", "B"}

    def test_written_relations_is_identity_diff(self, schema):
        state = state_from_rows(schema, {"A": [(1, 2)], "B": [(3, 4)]})
        from repro.db.values import DBTuple

        after, _ = state.insert_tuple("A", DBTuple(None, (5, 6)))
        assert written_relations(state, after) == {"A"}
        assert written_relations(state, state) == frozenset()

    def test_reset_clears_footprint(self, db, programs):
        tracker = TrackingInterpreter()
        programs["put_a"].run(db.current, 1, 2, interpreter=tracker)
        tracker.reset()
        assert tracker.read_write_set().footprint == frozenset()

    def test_mentioned_relations_static_hint(self, programs):
        assert programs["move"].mentioned_relations() == {"A", "B"}
        assert programs["put_a"].mentioned_relations() == {"A"}


# ---------------------------------------------------------------------------
# Retry policy / deadline
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay=0.001, multiplier=2.0, max_delay=0.004, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.001)
        assert policy.delay(2) == pytest.approx(0.002)
        assert policy.delay(3) == pytest.approx(0.004)
        assert policy.delay(10) == pytest.approx(0.004)  # capped

    def test_jitter_bounds(self):
        import random

        policy = RetryPolicy(base_delay=0.01, jitter=0.5)
        rng = random.Random(42)
        for attempt in range(1, 6):
            d = policy.delay(attempt, rng)
            assert 0 < d <= policy.max_delay

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_deadline_expiry(self):
        assert not Deadline.after(60).expired()
        assert Deadline.after(-1).expired()


# ---------------------------------------------------------------------------
# Forced conflicts (deterministic, event-gated)
# ---------------------------------------------------------------------------


class TestConflictRetry:
    def test_forced_conflict_is_detected_retried_and_committed(self, db, programs):
        """The acceptance scenario: a read/write conflict is detected, the
        victim retries under backoff, commits, and the conflict is recorded
        in the commit log."""
        evaluated = threading.Event()
        release = threading.Event()

        def gate(attempt: int) -> None:
            if attempt == 1:
                evaluated.set()
                assert release.wait(10)

        with db.concurrent(
            workers=2, retry=RetryPolicy(base_delay=0.0001, jitter=0.0)
        ) as mgr:
            victim = mgr.submit(
                programs["put_a"], 1, 1, label="victim", on_evaluated=gate
            )
            assert evaluated.wait(10)
            # While the victim holds its snapshot, a winner commits to A.
            winner = mgr.submit(programs["put_a"], 2, 2, label="winner").result()
            assert winner.ok and winner.attempts == 1
            release.set()
            outcome = victim.result()

        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.conflicts == (frozenset({"A"}),)
        record = mgr.log[-1]
        assert record.label == "victim" and record.retried
        assert record.conflicts == (frozenset({"A"}),)
        assert mgr.log.serial_order() == ("winner", "victim")
        assert len(db.current.relation("A")) == 2

        snap = mgr.stats.snapshot()
        assert snap.commits == 2 and snap.conflicts == 1 and snap.retries == 1
        assert snap.conflict_rate == pytest.approx(1 / 3)

    def test_disjoint_footprints_do_not_conflict(self, db, programs):
        evaluated = threading.Event()
        release = threading.Event()

        def gate(attempt: int) -> None:
            if attempt == 1:
                evaluated.set()
                assert release.wait(10)

        with db.concurrent(workers=2) as mgr:
            held = mgr.submit(programs["put_a"], 1, 1, on_evaluated=gate)
            assert evaluated.wait(10)
            other = mgr.submit(programs["put_b"], 2, 2).result()
            assert other.ok
            release.set()
            outcome = held.result()
        # B's commit happened inside A-writer's window, but footprints are
        # disjoint: no conflict, single attempt.
        assert outcome.ok and outcome.attempts == 1 and not outcome.conflicts

    def test_retry_exhaustion_aborts(self, db, programs):
        counter = {"n": 0}

        def always_beaten(attempt: int) -> None:
            # Each attempt, a fresh winner commits to A before validation.
            counter["n"] += 1
            mgr.submit(
                programs["put_a"], 100 + counter["n"], 0, label="winner"
            ).result()

        mgr = db.concurrent(
            workers=2, retry=RetryPolicy(max_attempts=2, base_delay=0.0001)
        )
        with mgr:
            outcome = mgr.submit(
                programs["put_a"], 1, 1, label="victim", on_evaluated=always_beaten
            ).result()

        assert outcome.status is TransactionStatus.ABORTED
        assert outcome.attempts == 2
        assert isinstance(outcome.error, RetryExhausted)
        assert outcome.error.relations == {"A"}
        assert mgr.stats.snapshot().aborts == 1
        # The victim never committed: only winners are in the log.
        assert all(r.label == "winner" for r in mgr.log)

    def test_failed_transaction_is_not_retried(self, db):
        x = b.atom_var("x")
        t = b.ftup_var("t", 2)
        guarded = transaction(
            "guarded",
            (x,),
            b.insert(b.mktuple(x, x), "A"),
            precondition=b.exists(t, b.member(t, b.rel("B", 2))),
        )
        with db.concurrent(workers=2) as mgr:
            outcome = mgr.submit(guarded, 1).result()
        assert outcome.status is TransactionStatus.FAILED
        assert outcome.attempts == 1
        assert mgr.stats.snapshot().failures == 1

    def test_constraint_violation_fails_and_rolls_back(self, schema, programs):
        from repro.constraints.model import Constraint

        s = b.state_var("s")
        t = b.ftup_var("t", 2)
        empty_a = Constraint(
            "a-stays-empty",
            b.forall(s, b.holds(s, b.lnot(b.exists(t, b.member(t, b.rel("A", 2)))))),
            declared_window=1,
        )
        schema.add_constraint(empty_a)
        db = Database(schema, window=2)
        before = db.current
        with db.concurrent(workers=2) as mgr:
            bad = mgr.submit(programs["put_a"], 1, 1).result()
            good = mgr.submit(programs["put_b"], 1, 1).result()
        assert bad.status is TransactionStatus.FAILED
        assert good.ok
        assert len(db.current.relation("A")) == 0
        assert len(mgr.log) == 1
        assert good.record.constraint_results == (("a-stays-empty", True),)
        assert before != db.current  # B advanced

    def test_deadline_bounds_retries(self, db, programs):
        def always_beaten(attempt: int) -> None:
            mgr.submit(programs["put_a"], 100 + attempt, 0).result()

        mgr = db.concurrent(
            workers=2, retry=RetryPolicy(max_attempts=1000, base_delay=0.0001)
        )
        with mgr:
            outcome = mgr.submit(
                programs["put_a"], 1, 1,
                deadline=Deadline.after(-1.0),  # already expired
                on_evaluated=always_beaten,
            ).result()
        assert outcome.status is TransactionStatus.ABORTED
        assert outcome.attempts == 1


# ---------------------------------------------------------------------------
# Commit log
# ---------------------------------------------------------------------------


class TestCommitLog:
    def test_replay_reconstructs_final_state(self, db, programs):
        with db.concurrent(workers=4, seed=3) as mgr:
            mgr.run_all([(programs["put_a"], i, i) for i in range(6)])
            mgr.run_all([(programs["move"], 2, 2), (programs["put_b"], 9, 9)])
            assert mgr.verify_serializable()
        assert len(mgr.log) == 8
        assert {r.seq for r in mgr.log} == set(range(1, 9))

    def test_log_graph_is_the_winning_path(self, db, programs):
        with db.concurrent(workers=2) as mgr:
            mgr.execute(programs["put_a"], 1, 1)
            mgr.execute(programs["put_b"], 2, 2)
        graph = mgr.log.to_graph(mgr.initial)
        assert len(graph) == 3  # initial + 2 commits
        assert graph.edge_count() == 2

    def test_records_carry_footprints_and_versions(self, db, programs):
        with db.concurrent(workers=1) as mgr:
            mgr.execute(programs["put_a"], 1, 1)
            mgr.execute(programs["put_b"], 2, 2)
        first, second = mgr.log.records()
        assert first.write_set == {"A"} and first.snapshot_version == 0
        assert second.write_set == {"B"} and second.snapshot_version == 1
        assert first.latency >= 0.0


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------


class TestStats:
    def test_quantile_nearest_rank(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert quantile(values, 0.5) == 3.0
        assert quantile(values, 0.95) == 5.0
        assert quantile(values, 0.0) == 1.0
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_snapshot_of_idle_manager(self, db):
        with db.concurrent(workers=1) as mgr:
            snap = mgr.stats.snapshot()
        assert snap.commits == 0 and snap.conflict_rate == 0.0
        assert "commits=0" in snap.summary()

    def test_latency_quantiles_populated(self, db, programs):
        with db.concurrent(workers=2) as mgr:
            mgr.run_all([(programs["put_a"], i, i) for i in range(5)])
        snap = mgr.stats.snapshot()
        assert snap.commits == 5
        assert 0 < snap.p50_latency <= snap.p95_latency


# ---------------------------------------------------------------------------
# Integration with engine features
# ---------------------------------------------------------------------------


class TestEngineIntegration:
    def test_closed_manager_rejects_submissions(self, db, programs):
        from repro import ReproError, SchedulerClosed

        mgr = db.concurrent(workers=1)
        mgr.close()
        with pytest.raises(SchedulerClosed):
            mgr.submit(programs["put_a"], 1, 1)
        # The typed error is still catchable under the old contract.
        with pytest.raises(ReproError):
            mgr.submit(programs["put_a"], 1, 1)

    def test_history_window_maintained_under_concurrency(self, db, programs):
        with db.concurrent(workers=4, seed=5) as mgr:
            mgr.run_all([(programs["put_a"], i, i) for i in range(7)])
        assert len(db.history) == 2  # window=2
        assert len(db.records) == 7

    def test_encoding_writes_join_committed_write_sets(self, programs):
        """A history encoding's log relation is written at commit time; the
        effective write set recorded for validation must include it."""
        from repro.constraints.history import HistoryEncoding
        from repro.db.schema import RelationSchema

        schema = Schema()
        schema.add_relation("A", ("k", "v"))
        schema.add_relation("B", ("k", "v"))
        db = Database(schema, window=2)
        db.register_encoding(
            HistoryEncoding(RelationSchema("A", ("k", "v")), "GONE", "k")
        )
        x, y = b.atom_var("x"), b.atom_var("y")
        rm = transaction("rm", (x, y), b.delete(b.mktuple(x, y), "A"))
        with db.concurrent(workers=1) as mgr:
            mgr.execute(programs["put_a"], 1, 1)
            out = mgr.execute(rm, 1, 1)
        assert out.ok
        assert "GONE" in out.record.write_set
        assert len(db.current.relation("GONE")) == 1


# ---------------------------------------------------------------------------
# Resource governance (budget threading, jitter, lifecycle)
# ---------------------------------------------------------------------------


class TestGovernance:
    def test_deadline_interrupts_evaluation_not_just_retries(self, schema):
        """Regression for the deadline-only-between-retries gap: a single
        long evaluation (a foreach over thousands of tuples) must be
        aborted *mid-attempt* by the submission deadline, with a typed
        error, well before the evaluation would finish on its own."""
        import time

        from repro import BudgetExceeded, ResourceError

        state = state_from_rows(
            schema, {"A": [(i, i) for i in range(30_000)]}
        )
        db = Database(schema, window=2, initial=state)
        t = b.ftup_var("t", 2)
        long_sweep = transaction(
            "long-sweep",
            (),
            b.foreach(t, b.member(t, b.rel("A", 2)), b.insert(t, "B")),
        )
        with db.concurrent(workers=1) as mgr:
            started = time.perf_counter()
            outcome = mgr.submit(long_sweep, deadline=0.2).result()
            elapsed = time.perf_counter() - started
        assert outcome.status is TransactionStatus.ABORTED
        assert isinstance(outcome.error, BudgetExceeded)
        assert isinstance(outcome.error, ResourceError)
        assert outcome.error.resource == "deadline"
        assert elapsed < 1.0, f"deadline abort took {elapsed:.2f}s"
        assert len(db.current.relation("B")) == 0  # nothing leaked

    def test_budget_template_governs_every_submission(self, db, programs):
        from repro import Budget, BudgetExceeded

        with db.concurrent(workers=1, budget=Budget(max_steps=1)) as mgr:
            outcome = mgr.submit(programs["put_a"], 1, 1).result()
        assert outcome.status is TransactionStatus.ABORTED
        assert isinstance(outcome.error, BudgetExceeded)

    def test_per_submission_budget_overrides_template(self, db, programs):
        from repro import Budget

        with db.concurrent(workers=1, budget=Budget(max_steps=1)) as mgr:
            outcome = mgr.submit(
                programs["put_a"], 1, 1, budget=Budget(max_steps=10_000)
            ).result()
        assert outcome.ok

    def test_full_jitter_spreads_delays(self):
        """Full jitter draws from [0, d); partial jitter keeps a floor.
        With a fixed-seed RNG the spread is deterministic and must cover
        most of the interval."""
        import random

        full = RetryPolicy(
            base_delay=0.01, multiplier=1.0, max_delay=0.01,
            jitter_mode="full",
        )
        rng = random.Random(42)
        draws = [full.delay(1, rng) for _ in range(200)]
        assert all(0.0 <= d < 0.01 for d in draws)
        assert min(draws) < 0.002, "full jitter must reach near zero"
        assert max(draws) > 0.008, "full jitter must reach near the cap"
        # Partial jitter with the same policy shape never goes below the
        # (1 - jitter) floor.
        partial = RetryPolicy(
            base_delay=0.01, multiplier=1.0, max_delay=0.01,
            jitter=0.5, jitter_mode="partial",
        )
        rng = random.Random(42)
        assert all(
            partial.delay(1, rng) >= 0.005 - 1e-12 for _ in range(200)
        )

    def test_jitter_mode_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter_mode="gaussian")

    def test_close_without_wait_with_in_flight_task(self, db, programs):
        """close(wait=False) returns immediately; the in-flight task still
        completes and commits (the pool drains, it is not killed)."""
        release = threading.Event()
        parked = threading.Event()

        def gate(attempt: int) -> None:
            parked.set()
            assert release.wait(10)

        mgr = db.concurrent(workers=1)
        fut = mgr.submit(programs["put_a"], 1, 1, on_evaluated=gate)
        assert parked.wait(10)
        mgr.close(wait=False)  # must not block on the parked worker
        release.set()
        outcome = fut.result(timeout=10)
        assert outcome.ok
        assert mgr.verify_serializable()

    def test_submit_after_close_without_wait_is_typed(self, db, programs):
        from repro import SchedulerClosed

        mgr = db.concurrent(workers=1)
        mgr.close(wait=False)
        with pytest.raises(SchedulerClosed):
            mgr.submit(programs["put_a"], 1, 1)
