"""The paper's closing extension: verification × validation.

"Transaction verification can be combined with constraint validation to
make more constraints checkable with less amount of history maintained,
which leads to more knowledgable database systems."
"""

import pytest

from repro.engine import Database


@pytest.fixture()
def db(domain):
    domain.schema.add_constraint(domain.once_married())
    domain.schema.add_constraint(domain.skill_retention())
    return Database(domain.schema, window=2, initial=domain.sample_state())


class TestTrust:
    def test_verify_and_trust_on_provable_pair(self, domain, db):
        assert db.verify_and_trust(domain.once_married(), domain.add_skill)
        db.execute(domain.add_skill, "alice", 7)
        record = db.records[-1]
        skipped_names = {s.constraint.name for s in record.skipped}
        assert "once-married" in skipped_names
        checked_names = {r.constraint.name for r in record.results}
        assert "once-married" not in checked_names

    def test_untrusted_pairs_still_checked(self, domain, db):
        db.verify_and_trust(domain.once_married(), domain.add_skill)
        db.execute(domain.birthday, "alice")  # a different transaction
        record = db.records[-1]
        assert "once-married" in {r.constraint.name for r in record.results}

    def test_model_checked_verdict_not_auto_trusted(self, domain, db):
        """cancel-project has a foreach: only model-checkable, so
        verify_and_trust declines (scenario coverage is the caller's call)."""
        from repro.verification import Scenario

        scenario = Scenario(domain.sample_state(), ("net", 10))
        assert not db.verify_and_trust(
            domain.skill_retention(), domain.cancel_project, [scenario]
        )

    def test_explicit_trust_accepted(self, domain, db):
        db.trust("skill-retention", "cancel-project")
        db.execute(domain.cancel_project, "net", 10)
        record = db.records[-1]
        assert "skill-retention" in {s.constraint.name for s in record.skipped}

    def test_trusted_check_reduces_work(self, domain, db):
        """The point of the extension: fewer runtime checks per execution."""
        before = db.verify_and_trust(domain.once_married(), domain.add_skill)
        assert before
        db.execute(domain.add_skill, "bob", 3)
        with_trust = len(db.records[-1].results)

        db2 = Database(domain.schema, window=2, initial=domain.sample_state())
        db2.execute(domain.add_skill, "bob", 3)
        without_trust = len(db2.records[-1].results)
        assert with_trust < without_trust
