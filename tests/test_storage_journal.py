"""Journal framing, defensive scanning, and atomic snapshots."""

from __future__ import annotations

import os

import pytest

from repro.errors import ReproError
from repro.storage.journal import (
    FILE_MAGIC,
    Journal,
    JournalRecord,
    encode_frame,
    read_journal,
    scan_journal,
)
from repro.storage.snapshot import (
    load_snapshot,
    snapshot_filename,
    snapshot_seq,
    write_snapshot,
)


def record(seq: int, label: str = "t") -> JournalRecord:
    return JournalRecord(
        seq=seq,
        label=label,
        program=label,
        args=(seq,),
        snapshot_version=seq - 1,
        delta={"next_tid": seq + 1, "created": [], "dropped": [], "changes": {}},
        post_digest="0" * 64,
    )


@pytest.fixture()
def journal_path(tmp_path):
    return tmp_path / "wal.log"


class TestJournalAppendScan:
    def test_roundtrip(self, journal_path):
        j = Journal(journal_path)
        for i in range(1, 4):
            j.append(record(i))
        j.close()
        scan = read_journal(journal_path)
        assert scan.clean and [r.seq for r in scan.records] == [1, 2, 3]
        assert scan.records[0].args == (1,)
        assert len(scan.boundaries) == 4  # header + three frames

    def test_missing_file_is_empty_clean(self, tmp_path):
        scan = read_journal(tmp_path / "absent.log")
        assert scan.clean and scan.records == ()

    def test_zero_length_file_is_empty_clean(self, journal_path):
        # The writer creates the file before the header reaches disk; a
        # crash in that window leaves 0 bytes — an empty journal, not a
        # torn one.
        journal_path.write_bytes(b"")
        scan = read_journal(journal_path)
        assert scan.clean and scan.records == ()
        assert scan.valid_bytes == 0
        assert scan_journal(b"").clean

    def test_partial_header_is_torn(self, journal_path):
        # One byte up to magic-minus-one is a torn header, never clean.
        for n in range(1, len(FILE_MAGIC)):
            assert not scan_journal(FILE_MAGIC[:n]).clean

    def test_header_only_is_clean(self, journal_path):
        scan = scan_journal(FILE_MAGIC)
        assert scan.clean and scan.records == ()
        assert scan.boundaries == (len(FILE_MAGIC),)

    def test_append_records_metrics(self, journal_path):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        j = Journal(journal_path, metrics=registry)
        for i in range(1, 4):
            j.append(record(i))
        j.close()
        assert registry.counter("repro_journal_appends_total").value == 3
        assert registry.histogram("repro_journal_append_seconds").count == 3
        assert registry.histogram("repro_journal_fsync_seconds").count == 3
        # sync="os" skips the fsync timer but still times the append.
        registry2 = MetricsRegistry()
        path2 = journal_path.parent / "os.log"
        j2 = Journal(path2, sync="os", metrics=registry2)
        j2.append(record(1))
        j2.close()
        assert registry2.histogram("repro_journal_append_seconds").count == 1
        assert registry2.get("repro_journal_fsync_seconds") is None

    def test_sync_policy_validated(self, journal_path):
        with pytest.raises(ReproError):
            Journal(journal_path, sync="fsync-sometimes")

    def test_torn_header_stops_cleanly(self, journal_path):
        j = Journal(journal_path)
        j.append(record(1))
        j.close()
        data = journal_path.read_bytes() + b"RJ\x00"
        scan = scan_journal(data)
        assert not scan.clean and len(scan.records) == 1
        assert "torn" in scan.reason

    def test_torn_payload_stops_cleanly(self, journal_path):
        j = Journal(journal_path)
        j.append(record(1))
        j.append(record(2))
        j.close()
        data = journal_path.read_bytes()
        scan = scan_journal(data[:-5])
        assert not scan.clean and [r.seq for r in scan.records] == [1]
        assert scan.valid_bytes == scan.boundaries[-1]

    def test_crc_mismatch_stops(self, journal_path):
        j = Journal(journal_path)
        j.append(record(1))
        j.close()
        data = bytearray(journal_path.read_bytes())
        data[-1] ^= 0xFF  # damage the last payload byte
        scan = scan_journal(bytes(data))
        assert not scan.clean and scan.records == ()
        assert "CRC" in scan.reason

    def test_bad_file_magic(self):
        scan = scan_journal(b"NOTAWAL123" + encode_frame(record(1)))
        assert not scan.clean and scan.records == ()

    def test_garbage_after_good_frames(self, journal_path):
        j = Journal(journal_path)
        j.append(record(1))
        j.close()
        blob = journal_path.read_bytes() + b"\x00" * 64
        scan = scan_journal(blob)
        assert [r.seq for r in scan.records] == [1] and not scan.clean

    def test_replace_with_truncates(self, journal_path):
        j = Journal(journal_path)
        for i in range(1, 6):
            j.append(record(i))
        j.replace_with(tuple(r for r in read_journal(journal_path).records if r.seq > 3))
        scan = read_journal(journal_path)
        assert scan.clean and [r.seq for r in scan.records] == [4, 5]
        # The writer still appends correctly after a rewrite.
        j.append(record(6))
        j.close()
        assert [r.seq for r in read_journal(journal_path).records] == [4, 5, 6]

    def test_reopen_appends_without_duplicate_header(self, journal_path):
        j = Journal(journal_path)
        j.append(record(1))
        j.close()
        j2 = Journal(journal_path)
        j2.append(record(2))
        j2.close()
        data = journal_path.read_bytes()
        assert data.count(FILE_MAGIC) == 1
        assert [r.seq for r in read_journal(journal_path).records] == [1, 2]


class TestSnapshots:
    def test_roundtrip(self, tmp_path, tiny_state):
        path = tmp_path / snapshot_filename(7)
        write_snapshot(path, 7, tiny_state)
        seq, state = load_snapshot(path)
        assert seq == 7 and state == tiny_state
        assert state.next_tid == tiny_state.next_tid

    def test_filename_seq_roundtrip(self):
        assert snapshot_seq(snapshot_filename(123)) == 123
        assert snapshot_seq("wal.log") is None
        assert snapshot_seq("snap-xyz.ckpt") is None

    def test_corrupt_snapshot_loads_as_none(self, tmp_path, tiny_state):
        path = tmp_path / snapshot_filename(1)
        write_snapshot(path, 1, tiny_state)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x40
        path.write_bytes(bytes(data))
        assert load_snapshot(path) is None

    def test_truncated_snapshot_loads_as_none(self, tmp_path, tiny_state):
        path = tmp_path / snapshot_filename(1)
        write_snapshot(path, 1, tiny_state)
        path.write_bytes(path.read_bytes()[:-3])
        assert load_snapshot(path) is None

    def test_write_is_atomic_no_stray_tmp(self, tmp_path, tiny_state):
        write_snapshot(tmp_path / snapshot_filename(2), 2, tiny_state)
        assert [f for f in os.listdir(tmp_path) if f.endswith(".tmp")] == []
