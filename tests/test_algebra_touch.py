"""Touch-equivalence: the planner must report *exactly* the relation
read set the tree walk would, on every shape — including the empty-domain
and all-rows-filtered corners where a naive executor over- or
under-touches.

Why this is load-bearing (DESIGN.md §7.6): the read set feeds the
:class:`QueryCache` invalidation digest and the optimistic scheduler's
conflict validation.  An under-touch means a cached answer survives a
commit that should have killed it (a wrong answer later); an over-touch
means spurious invalidations and conflicts (correct but slow, and a
different digest — so cache keys stop matching across planner on/off).
"""

from __future__ import annotations

import pytest

from repro import Database, query
from repro.concurrent.tracking import TrackingInterpreter
from repro.db.state import state_from_rows
from repro.domains import make_domain
from repro.logic import builder as b


@pytest.fixture()
def d():
    return make_domain()


def state_with(d, **rows):
    """Sample-state shape with selected relations overridden (e.g. empty)."""
    base = {
        "EMP": [
            ("alice", "cs", 100, 30, "S"),
            ("bob", "math", 90, 40, "M"),
        ],
        "DEPT": [("cs", "alice", "b1")],
        "PROJ": [("apollo", 100)],
        "ALLOC": [("alice", "apollo", 60)],
        "SKILL": [("alice", 1)],
    }
    base.update(rows)
    return state_from_rows(d.schema, base)


def reads_of(d, state, node, *, planner, is_formula=False):
    db = Database(d.schema, initial=state)
    if planner:
        db.enable_planner()
    tracking = TrackingInterpreter.wrapping(db.interpreter)
    if is_formula:
        tracking.eval_formula(db.current, node)
    else:
        tracking.eval_object(db.current, node)
    return frozenset(tracking.reads)


def assert_same_reads(d, state, node, *, is_formula=False):
    slow = reads_of(d, state, node, planner=False, is_formula=is_formula)
    fast = reads_of(d, state, node, planner=True, is_formula=is_formula)
    assert fast == slow, f"planner reads {fast}, tree walk reads {slow}"
    return slow


def join_former(d):
    e, a = d.emp.var("e"), d.alloc.var("a")
    return b.setformer(
        d.emp.attr("e-name", e),
        [e, a],
        b.land(
            b.member(e, d.emp.rel()),
            b.member(a, d.alloc.rel()),
            b.eq(d.alloc.attr("a-emp", a), d.emp.attr("e-name", e)),
        ),
    )


def exists_former(d, negate=False):
    e, a = d.emp.var("e"), d.alloc.var("a")
    inner = b.exists(
        a,
        b.land(
            b.member(a, d.alloc.rel()),
            b.eq(d.alloc.attr("a-emp", a), d.emp.attr("e-name", e)),
        ),
    )
    return b.setformer(
        d.emp.attr("e-name", e),
        e,
        b.land(b.member(e, d.emp.rel()), b.lnot(inner) if negate else inner),
    )


def allocated_forall(d):
    e, a = d.emp.var("e"), d.alloc.var("a")
    return b.forall(
        e,
        b.implies(
            b.member(e, d.emp.rel()),
            b.exists(
                a,
                b.land(
                    b.member(a, d.alloc.rel()),
                    b.eq(d.alloc.attr("a-emp", a), d.emp.attr("e-name", e)),
                ),
            ),
        ),
    )


class TestSetFormers:
    def test_join_touches_both_relations(self, d):
        reads = assert_same_reads(d, state_with(d), join_former(d))
        assert {"EMP", "ALLOC"} <= reads

    def test_empty_first_level_skips_second(self, d):
        """Tree-walk enumeration never reaches ALLOC when EMP is empty;
        the planner must not touch it either."""
        reads = assert_same_reads(d, state_with(d, EMP=[]), join_former(d))
        assert "ALLOC" not in reads

    def test_set_former_group_touches_even_when_preds_fail(self, d):
        """Within one set-former group, domains narrow unconditionally:
        ALLOC is read even when no EMP row can ever join."""
        state = state_with(d, ALLOC=[("nobody", "apollo", 60)])
        reads = assert_same_reads(d, state, join_former(d))
        assert {"EMP", "ALLOC"} <= reads

    def test_nested_exists_gates_on_surviving_prefix(self, d):
        """The inner exists domain narrows per *surviving* outer row: when
        a predicate kills every outer candidate, ALLOC stays untouched."""
        e, a = d.emp.var("e"), d.alloc.var("a")
        former = b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.eq(d.emp.attr("e-dept", e), b.atom("no-such-dept")),
                b.exists(
                    a,
                    b.land(
                        b.member(a, d.alloc.rel()),
                        b.eq(
                            d.alloc.attr("a-emp", a), d.emp.attr("e-name", e)
                        ),
                    ),
                ),
            ),
        )
        reads = assert_same_reads(d, state_with(d), former)
        assert "ALLOC" not in reads

    def test_nested_exists_touches_when_prefix_survives(self, d):
        reads = assert_same_reads(d, state_with(d), exists_former(d))
        assert {"EMP", "ALLOC"} <= reads

    def test_not_exists_anti_join(self, d):
        assert_same_reads(d, state_with(d), exists_former(d, negate=True))
        assert_same_reads(
            d, state_with(d, ALLOC=[]), exists_former(d, negate=True)
        )


def union_former(d, quantified_first=False):
    """``member(e, EMP) ∧ (e-dept = cs ∨ ∃a alloc-of(e))`` — or flipped."""
    e, a = d.emp.var("e"), d.alloc.var("a")
    pure = b.eq(d.emp.attr("e-dept", e), b.atom("cs"))
    quant = b.exists(
        a,
        b.land(
            b.member(a, d.alloc.rel()),
            b.eq(d.alloc.attr("a-emp", a), d.emp.attr("e-name", e)),
        ),
    )
    disjunction = (
        b.lor(quant, pure) if quantified_first else b.lor(pure, quant)
    )
    return b.setformer(
        d.emp.attr("e-name", e),
        e,
        b.land(b.member(e, d.emp.rel()), disjunction),
    )


class TestUnionPlans:
    """Branch gating mirrors the tree walk's ``any`` short-circuit: a
    later branch's inner relation narrows only for rows every earlier
    branch rejected."""

    def test_union_touches_both_when_some_row_needs_second_branch(self, d):
        # bob is in math, so the exists branch runs for him.
        reads = assert_same_reads(d, state_with(d), union_former(d))
        assert {"EMP", "ALLOC"} <= reads

    def test_second_branch_skipped_when_first_accepts_every_row(self, d):
        state = state_with(d, EMP=[("alice", "cs", 100, 30, "S")])
        reads = assert_same_reads(d, state, union_former(d))
        assert "ALLOC" not in reads

    def test_quantified_first_branch_always_runs(self, d):
        state = state_with(d, EMP=[("alice", "cs", 100, 30, "S")])
        reads = assert_same_reads(
            d, state, union_former(d, quantified_first=True)
        )
        assert "ALLOC" in reads

    def test_empty_outer_skips_every_branch(self, d):
        reads = assert_same_reads(d, state_with(d, EMP=[]), union_former(d))
        assert "ALLOC" not in reads

    def test_negated_union_branch(self, d):
        e, a = d.emp.var("e"), d.alloc.var("a")
        former = b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.lor(
                    b.eq(d.emp.attr("e-dept", e), b.atom("cs")),
                    b.lnot(
                        b.exists(
                            a,
                            b.land(
                                b.member(a, d.alloc.rel()),
                                b.eq(
                                    d.alloc.attr("a-emp", a),
                                    d.emp.attr("e-name", e),
                                ),
                            ),
                        )
                    ),
                ),
            ),
        )
        assert_same_reads(d, state_with(d), former)
        assert_same_reads(d, state_with(d, ALLOC=[]), former)


class TestMultiConjunctChains:
    def chain(self, d):
        e = d.emp.var("e")
        a, s = d.alloc.var("a"), d.skill.var("s")
        return b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.exists(
                    a,
                    b.land(
                        b.member(a, d.alloc.rel()),
                        b.eq(
                            d.alloc.attr("a-emp", a), d.emp.attr("e-name", e)
                        ),
                    ),
                ),
                b.exists(
                    s,
                    b.land(
                        b.member(s, d.skill.rel()),
                        b.eq(
                            d.skill.attr("s-emp", s), d.emp.attr("e-name", e)
                        ),
                    ),
                ),
            ),
        )

    def test_both_exists_touch_when_rows_survive(self, d):
        reads = assert_same_reads(d, state_with(d), self.chain(d))
        assert {"EMP", "ALLOC", "SKILL"} <= reads

    def test_second_exists_gated_on_first(self, d):
        """No row survives the ALLOC exists, so the tree walk never
        evaluates the SKILL one — the planner must not touch it."""
        state = state_with(d, ALLOC=[("nobody", "apollo", 60)])
        reads = assert_same_reads(d, state, self.chain(d))
        assert "ALLOC" in reads and "SKILL" not in reads

    def test_arithmetic_predicate_touch(self, d):
        e = d.emp.var("e")
        former = b.setformer(
            d.emp.attr("e-name", e),
            e,
            b.land(
                b.member(e, d.emp.rel()),
                b.le(b.plus(d.emp.attr("salary", e), b.atom(5)), b.atom(100)),
            ),
        )
        reads = assert_same_reads(d, state_with(d), former)
        assert "EMP" in reads


class TestForeachDomains:
    def foreach_of(self, d, with_exists=False):
        e, a = d.emp.var("e"), d.alloc.var("a")
        cond = [b.member(e, d.emp.rel())]
        if with_exists:
            cond.append(
                b.exists(
                    a,
                    b.land(
                        b.member(a, d.alloc.rel()),
                        b.eq(
                            d.alloc.attr("a-emp", a), d.emp.attr("e-name", e)
                        ),
                    ),
                )
            )
        return b.foreach(
            e,
            b.land(*cond),
            b.modify(e, d.emp.attr_index("m-status"), b.atom("M")),
        )

    def run_reads(self, d, state, fluent, *, planner):
        db = Database(d.schema, initial=state)
        if planner:
            db.enable_planner()
        tracking = TrackingInterpreter.wrapping(db.interpreter)
        after = tracking.run(db.current, fluent)
        return frozenset(tracking.reads), after

    def assert_same_run(self, d, state, fluent):
        slow_reads, slow_after = self.run_reads(d, state, fluent, planner=False)
        fast_reads, fast_after = self.run_reads(d, state, fluent, planner=True)
        assert fast_reads == slow_reads
        assert fast_after.relations["EMP"] == slow_after.relations["EMP"]
        return slow_reads

    def test_foreach_domain_touch_and_result(self, d):
        reads = self.assert_same_run(d, state_with(d), self.foreach_of(d))
        assert "EMP" in reads

    def test_foreach_with_trailing_exists(self, d):
        reads = self.assert_same_run(
            d, state_with(d), self.foreach_of(d, with_exists=True)
        )
        assert {"EMP", "ALLOC"} <= reads

    def test_foreach_empty_domain_skips_inner(self, d):
        reads = self.assert_same_run(
            d, state_with(d, EMP=[]), self.foreach_of(d, with_exists=True)
        )
        assert "ALLOC" not in reads


class TestForall:
    def test_satisfied_and_violated(self, d):
        satisfied = state_with(
            d,
            EMP=[("alice", "cs", 100, 30, "S")],
            ALLOC=[("alice", "apollo", 60)],
        )
        violated = state_with(d)  # bob has no allocation
        for state in (satisfied, violated):
            reads = assert_same_reads(
                d, state, allocated_forall(d), is_formula=True
            )
            assert {"EMP", "ALLOC"} <= reads

    def test_forall_touch_is_arity_wide(self, d):
        """The tree walk enumerates a tuple-sorted forall over *every*
        relation of matching arity, so EMP's arity-5 peers land in the
        read set even though only EMP rows pass the guard."""
        reads = assert_same_reads(
            d, state_with(d), allocated_forall(d), is_formula=True
        )
        assert "EMP" in reads

    def test_empty_guard_relation_skips_body(self, d):
        reads = assert_same_reads(
            d, state_with(d, EMP=[]), allocated_forall(d), is_formula=True
        )
        assert "ALLOC" not in reads


class TestQueryCacheDigests:
    def q(self, d):
        e = d.emp.var("e")
        return query(
            "cs-names",
            (),
            b.setformer(
                d.emp.attr("e-name", e),
                e,
                b.land(
                    b.member(e, d.emp.rel()),
                    b.eq(d.emp.attr("e-dept", e), b.atom("cs")),
                ),
            ),
        )

    def cache_entry(self, d, *, planner):
        db = Database(d.schema, initial=state_with(d))
        cache = db.enable_query_cache()
        if planner:
            db.enable_planner()
        db.query(self.q(d))
        (entry,) = cache._entries.values()
        return db, cache, entry

    def test_cache_entries_identical_with_planner_on_and_off(self, d):
        _, _, slow = self.cache_entry(d, planner=False)
        _, _, fast = self.cache_entry(d, planner=True)
        assert fast.reads == slow.reads
        assert fast.digest == slow.digest
        assert fast.value == slow.value

    def test_widened_fragment_cache_entry_identical(self, d):
        """A union-plan query (newly compilable) must produce the *same*
        cache entry — reads, digest, value — planner on and off: cache
        keys never depend on whether the planner answered."""

        def entry(planner):
            db = Database(d.schema, initial=state_with(d))
            cache = db.enable_query_cache()
            if planner:
                db.enable_planner()
            db.query(query("union-q", (), union_former(d)))
            (e,) = cache._entries.values()
            return e

        slow, fast = entry(False), entry(True)
        assert fast.reads == slow.reads
        assert fast.digest == slow.digest
        assert fast.value == slow.value

    def test_planned_entry_invalidated_by_write_to_read_set(self, d):
        db, cache, _ = self.cache_entry(d, planner=True)
        assert db.query(self.q(d)) is not None  # hit
        assert cache.stats.hits == 1
        db.execute(d.hire, "carol", "cs", 80, 28, "S")
        result = db.query(self.q(d))  # must re-evaluate, see carol
        assert cache.stats.hits == 1
        assert any(t.values == ("carol",) for t in result.representatives)


class TestSchedulerValidation:
    def test_read_write_sets_identical_under_scheduler(self, d):
        """The optimistic scheduler validates commits against tracked
        read sets; planner on/off must produce the same footprints."""

        def footprint(planner):
            db = Database(d.schema, initial=state_with(d))
            if planner:
                db.enable_planner()
            tracking = TrackingInterpreter.wrapping(db.interpreter)
            tracking.eval_object(db.current, join_former(d))
            return tracking.read_write_set()

        assert footprint(True) == footprint(False)
