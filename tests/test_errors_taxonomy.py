"""The error taxonomy: every public error is typed, documented, and
catchable as :class:`ReproError`.

Downstream code relies on two properties: ``except ReproError`` catches
everything the library raises, and the :class:`ResourceError` branch is
distinguishable from program failures (so schedulers and clients can map
governance aborts to retry-later instead of bug-report).
"""

from __future__ import annotations

import inspect

import pytest

import repro
from repro import errors as errors_module
from repro.errors import (
    BudgetExceeded,
    Cancelled,
    CircuitOpen,
    EvaluationError,
    Overloaded,
    ProtocolError,
    ReproError,
    ResourceError,
    RetryExhausted,
    SchedulerClosed,
    SessionClosed,
    TransactionConflict,
)


def all_error_classes():
    return [
        cls
        for _, cls in inspect.getmembers(errors_module, inspect.isclass)
        if issubclass(cls, Exception) and cls.__module__ == "repro.errors"
    ]


class TestHierarchy:
    def test_every_error_derives_from_repro_error(self):
        for cls in all_error_classes():
            assert issubclass(cls, ReproError), cls.__name__

    def test_every_error_has_a_docstring(self):
        for cls in all_error_classes():
            assert cls.__doc__ and cls.__doc__.strip(), cls.__name__

    def test_resource_branch_membership(self):
        for cls in (BudgetExceeded, Cancelled, Overloaded, CircuitOpen,
                    SchedulerClosed):
            assert issubclass(cls, ResourceError), cls.__name__

    def test_budget_errors_are_also_evaluation_errors(self):
        """The interpreter raises them mid-evaluation, so code catching
        EvaluationError (the pre-governance contract) still catches them."""
        assert issubclass(BudgetExceeded, EvaluationError)
        assert issubclass(Cancelled, EvaluationError)
        assert not issubclass(Overloaded, EvaluationError)
        assert not issubclass(CircuitOpen, EvaluationError)

    def test_session_closed_is_a_resource_error(self):
        """A dying session is load/lifecycle, not a program bug: clients
        map it to retry-or-reconnect, like other governance aborts."""
        assert issubclass(SessionClosed, ResourceError)

    def test_protocol_error_is_not_a_resource_error(self):
        """A malformed frame is a bug (or an attacker), never something to
        retry: it must not land in the retry-later branch."""
        assert issubclass(ProtocolError, ReproError)
        assert not issubclass(ProtocolError, ResourceError)
        assert not issubclass(ProtocolError, EvaluationError)

    def test_retry_exhausted_is_a_conflict_not_a_resource_error(self):
        """Exhausted retries mean real data contention — client-visible as
        a conflict, not as load shedding."""
        assert issubclass(RetryExhausted, TransactionConflict)
        assert not issubclass(RetryExhausted, ResourceError)


class TestPlannerBranch:
    """PlanError / PlannerMismatch — the algebra planner's error branch."""

    def test_plan_error_carries_reason(self):
        from repro.errors import PlanError

        err = PlanError("forall body is not guarded (no implication)")
        assert err.reason == "forall body is not guarded (no implication)"
        assert "not compilable" in str(err)
        assert issubclass(PlanError, ReproError)
        assert not issubclass(PlanError, ResourceError)

    def test_planner_mismatch_is_a_plan_error(self):
        """A mismatch is a planner bug, not a load condition: it must land
        in the bug-report branch, never in retry-later."""
        from repro.errors import PlanError, PlannerMismatch

        err = PlannerMismatch("headcount: planned 5, tree walk says 4")
        assert err.detail == "headcount: planned 5, tree walk says 4"
        assert "mismatch" in str(err)
        assert issubclass(PlannerMismatch, PlanError)
        assert not issubclass(PlannerMismatch, ResourceError)
        assert not issubclass(PlannerMismatch, EvaluationError)

    def test_catchable_as_repro_error(self):
        from repro.errors import PlanError, PlannerMismatch

        for sample in (PlanError("r"), PlannerMismatch("d")):
            with pytest.raises(ReproError):
                raise sample


class TestConstructors:
    def test_budget_exceeded_carries_the_meter_reading(self):
        err = BudgetExceeded("foreach", 100, 101)
        assert (err.resource, err.limit, err.used) == ("foreach", 100, 101)
        assert "foreach" in str(err)

    def test_overloaded_carries_depth_and_retry_hint(self):
        err = Overloaded(depth=65, limit=64, retry_after=0.125)
        assert err.depth == 65 and err.limit == 64
        assert err.retry_after == pytest.approx(0.125)
        assert "retry after" in str(err)

    def test_circuit_open_carries_retry_hint(self):
        err = CircuitOpen(retry_after=0.05, detail="conflict rate 80%")
        assert err.retry_after == pytest.approx(0.05)
        assert "conflict rate 80%" in str(err)

    def test_cancelled_carries_reason(self):
        assert Cancelled("shutdown").reason == "shutdown"

    def test_scheduler_closed_message(self):
        assert "closed" in str(SchedulerClosed())

    def test_session_closed_default_message(self):
        assert "session closed" in str(SessionClosed())
        assert "mid-request" in str(SessionClosed("lost mid-request"))


class TestShardingBranch:
    """ShardError / InDoubt / ReplicaLagExceeded — the horizontal-scale
    branch."""

    def test_shard_error_is_not_a_resource_error(self):
        """A routing or placement violation is a bug (or a refused unsound
        operation), never a retry-later condition."""
        from repro.errors import ShardError

        assert issubclass(ShardError, ReproError)
        assert not issubclass(ShardError, ResourceError)

    def test_in_doubt_must_not_be_retried_blindly(self):
        """InDoubt means the transaction MAY have committed: a client that
        resubmits on it can double-apply.  It must therefore never land in
        the retry-later (ResourceError) branch."""
        from repro.errors import InDoubt, ShardError

        assert issubclass(InDoubt, ShardError)
        assert not issubclass(InDoubt, ResourceError)
        assert not issubclass(InDoubt, EvaluationError)

    def test_in_doubt_carries_txid_point_and_fate(self):
        from repro.errors import InDoubt

        err = InDoubt("e1-4-transfer", point="after-decision", decided=True)
        assert err.txid == "e1-4-transfer"
        assert err.point == "after-decision"
        assert err.decided is True
        assert "e1-4-transfer" in str(err)
        assert "after-decision" in str(err)

    def test_replica_lag_is_a_resource_error(self):
        """A lagging replica is a load/freshness condition: clients retry
        against the primary or wait — exactly the retry-later branch."""
        from repro.errors import ReplicaLagExceeded, ShardError

        assert issubclass(ReplicaLagExceeded, ShardError)
        assert issubclass(ReplicaLagExceeded, ResourceError)

    def test_replica_lag_carries_watermarks(self):
        from repro.errors import ReplicaLagExceeded

        err = ReplicaLagExceeded(applied=10, primary=25, max_lag=8)
        assert (err.applied, err.primary, err.max_lag) == (10, 25, 8)
        assert "15" in str(err)  # the lag itself is in the message

    def test_fenced_is_terminal_not_retryable(self):
        """Fenced means *this writer* was deposed: retrying the same
        handle can never succeed, so it must not sit in the retry-later
        (ResourceError) branch."""
        from repro.errors import Fenced, ShardError

        assert issubclass(Fenced, ShardError)
        assert not issubclass(Fenced, ResourceError)

    def test_fenced_carries_both_epochs(self):
        from repro.errors import Fenced

        err = Fenced("/data/shard-0", writer_epoch=1, fence_epoch=3)
        assert err.path == "/data/shard-0"
        assert err.writer_epoch == 1
        assert err.fence_epoch == 3
        assert "epoch 3" in str(err)
        assert "promoted" in str(err)

    def test_shard_unavailable_is_the_retry_later_branch(self):
        """A dead/suspect shard is a capacity condition: admission control
        and client backoff treat it exactly like Overloaded."""
        from repro.errors import ShardError, ShardUnavailable

        assert issubclass(ShardUnavailable, ShardError)
        assert issubclass(ShardUnavailable, ResourceError)

    def test_shard_unavailable_carries_the_backoff_hint(self):
        from repro.errors import ShardUnavailable

        err = ShardUnavailable(2, retry_after=0.25, state="suspect")
        assert err.shard == 2
        assert err.retry_after == 0.25
        assert err.state == "suspect"
        assert "0.250" in str(err)

    def test_sharding_errors_catchable_as_repro_error(self):
        from repro.errors import (
            Fenced,
            InDoubt,
            ReplicaLagExceeded,
            ShardError,
            ShardUnavailable,
        )

        for sample in (
            ShardError("split brain"),
            InDoubt("t1", point="prepare:0"),
            ReplicaLagExceeded(applied=1, primary=9, max_lag=2),
            Fenced("/s", writer_epoch=1, fence_epoch=2),
            ShardUnavailable(0, retry_after=0.1),
        ):
            with pytest.raises(ReproError):
                raise sample


class TestExports:
    def test_public_errors_exported_from_package_root(self):
        for name in (
            "ReproError", "ResourceError", "BudgetExceeded", "Cancelled",
            "Overloaded", "CircuitOpen", "SchedulerClosed",
            "ProtocolError", "SessionClosed",
        ):
            assert hasattr(repro, name), name
            assert name in repro.__all__, name

    def test_taxonomy_additions_must_be_exported(self):
        """Fails when a new error class lands in repro.errors without a
        package-root export — the wire protocol encodes errors by class, so
        an unexported addition would be uncatchable client-side."""
        for cls in all_error_classes():
            assert hasattr(repro, cls.__name__), cls.__name__
            assert cls.__name__ in repro.__all__, cls.__name__

    def test_every_public_error_catchable_as_repro_error(self):
        samples = [
            BudgetExceeded("steps", 1, 2),
            Cancelled(),
            Overloaded(1, 1),
            CircuitOpen(),
            SchedulerClosed(),
            RetryExhausted("t", {"R"}, 3),
            SessionClosed(),
            ProtocolError("bad frame"),
        ]
        for sample in samples:
            with pytest.raises(ReproError):
                raise sample
