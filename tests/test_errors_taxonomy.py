"""The error taxonomy: every public error is typed, documented, and
catchable as :class:`ReproError`.

Downstream code relies on two properties: ``except ReproError`` catches
everything the library raises, and the :class:`ResourceError` branch is
distinguishable from program failures (so schedulers and clients can map
governance aborts to retry-later instead of bug-report).
"""

from __future__ import annotations

import inspect

import pytest

import repro
from repro import errors as errors_module
from repro.errors import (
    BudgetExceeded,
    Cancelled,
    CircuitOpen,
    EvaluationError,
    Overloaded,
    ProtocolError,
    ReproError,
    ResourceError,
    RetryExhausted,
    SchedulerClosed,
    SessionClosed,
    TransactionConflict,
)


def all_error_classes():
    return [
        cls
        for _, cls in inspect.getmembers(errors_module, inspect.isclass)
        if issubclass(cls, Exception) and cls.__module__ == "repro.errors"
    ]


class TestHierarchy:
    def test_every_error_derives_from_repro_error(self):
        for cls in all_error_classes():
            assert issubclass(cls, ReproError), cls.__name__

    def test_every_error_has_a_docstring(self):
        for cls in all_error_classes():
            assert cls.__doc__ and cls.__doc__.strip(), cls.__name__

    def test_resource_branch_membership(self):
        for cls in (BudgetExceeded, Cancelled, Overloaded, CircuitOpen,
                    SchedulerClosed):
            assert issubclass(cls, ResourceError), cls.__name__

    def test_budget_errors_are_also_evaluation_errors(self):
        """The interpreter raises them mid-evaluation, so code catching
        EvaluationError (the pre-governance contract) still catches them."""
        assert issubclass(BudgetExceeded, EvaluationError)
        assert issubclass(Cancelled, EvaluationError)
        assert not issubclass(Overloaded, EvaluationError)
        assert not issubclass(CircuitOpen, EvaluationError)

    def test_session_closed_is_a_resource_error(self):
        """A dying session is load/lifecycle, not a program bug: clients
        map it to retry-or-reconnect, like other governance aborts."""
        assert issubclass(SessionClosed, ResourceError)

    def test_protocol_error_is_not_a_resource_error(self):
        """A malformed frame is a bug (or an attacker), never something to
        retry: it must not land in the retry-later branch."""
        assert issubclass(ProtocolError, ReproError)
        assert not issubclass(ProtocolError, ResourceError)
        assert not issubclass(ProtocolError, EvaluationError)

    def test_retry_exhausted_is_a_conflict_not_a_resource_error(self):
        """Exhausted retries mean real data contention — client-visible as
        a conflict, not as load shedding."""
        assert issubclass(RetryExhausted, TransactionConflict)
        assert not issubclass(RetryExhausted, ResourceError)


class TestPlannerBranch:
    """PlanError / PlannerMismatch — the algebra planner's error branch."""

    def test_plan_error_carries_reason(self):
        from repro.errors import PlanError

        err = PlanError("forall body is not guarded (no implication)")
        assert err.reason == "forall body is not guarded (no implication)"
        assert "not compilable" in str(err)
        assert issubclass(PlanError, ReproError)
        assert not issubclass(PlanError, ResourceError)

    def test_planner_mismatch_is_a_plan_error(self):
        """A mismatch is a planner bug, not a load condition: it must land
        in the bug-report branch, never in retry-later."""
        from repro.errors import PlanError, PlannerMismatch

        err = PlannerMismatch("headcount: planned 5, tree walk says 4")
        assert err.detail == "headcount: planned 5, tree walk says 4"
        assert "mismatch" in str(err)
        assert issubclass(PlannerMismatch, PlanError)
        assert not issubclass(PlannerMismatch, ResourceError)
        assert not issubclass(PlannerMismatch, EvaluationError)

    def test_catchable_as_repro_error(self):
        from repro.errors import PlanError, PlannerMismatch

        for sample in (PlanError("r"), PlannerMismatch("d")):
            with pytest.raises(ReproError):
                raise sample


class TestConstructors:
    def test_budget_exceeded_carries_the_meter_reading(self):
        err = BudgetExceeded("foreach", 100, 101)
        assert (err.resource, err.limit, err.used) == ("foreach", 100, 101)
        assert "foreach" in str(err)

    def test_overloaded_carries_depth_and_retry_hint(self):
        err = Overloaded(depth=65, limit=64, retry_after=0.125)
        assert err.depth == 65 and err.limit == 64
        assert err.retry_after == pytest.approx(0.125)
        assert "retry after" in str(err)

    def test_circuit_open_carries_retry_hint(self):
        err = CircuitOpen(retry_after=0.05, detail="conflict rate 80%")
        assert err.retry_after == pytest.approx(0.05)
        assert "conflict rate 80%" in str(err)

    def test_cancelled_carries_reason(self):
        assert Cancelled("shutdown").reason == "shutdown"

    def test_scheduler_closed_message(self):
        assert "closed" in str(SchedulerClosed())

    def test_session_closed_default_message(self):
        assert "session closed" in str(SessionClosed())
        assert "mid-request" in str(SessionClosed("lost mid-request"))


class TestExports:
    def test_public_errors_exported_from_package_root(self):
        for name in (
            "ReproError", "ResourceError", "BudgetExceeded", "Cancelled",
            "Overloaded", "CircuitOpen", "SchedulerClosed",
            "ProtocolError", "SessionClosed",
        ):
            assert hasattr(repro, name), name
            assert name in repro.__all__, name

    def test_taxonomy_additions_must_be_exported(self):
        """Fails when a new error class lands in repro.errors without a
        package-root export — the wire protocol encodes errors by class, so
        an unexported addition would be uncatchable client-side."""
        for cls in all_error_classes():
            assert hasattr(repro, cls.__name__), cls.__name__
            assert cls.__name__ in repro.__all__, cls.__name__

    def test_every_public_error_catchable_as_repro_error(self):
        samples = [
            BudgetExceeded("steps", 1, 2),
            Cancelled(),
            Overloaded(1, 1),
            CircuitOpen(),
            SchedulerClosed(),
            RetryExhausted("t", {"R"}, 3),
            SessionClosed(),
            ProtocolError("bad frame"),
        ]
        for sample in samples:
            with pytest.raises(ReproError):
                raise sample
