"""E7: temporal logic — direct semantics, δ translation, and their agreement.

The paper's claim: α is valid at s in temporal logic iff δ(s, α) is valid in
situational logic.  We test the two *independent* implementations against
each other over concrete evolution chains, including a hypothesis sweep over
random formulas.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import Evaluator, PartialModel
from repro.constraints.semantics import NO_TRANSITION
from repro.db import chain_graph
from repro.logic import builder as b
from repro.temporal import (
    TAnd,
    TImplies,
    TNot,
    TOr,
    always,
    atom,
    check,
    delta,
    eventually,
    nxt,
    precedes,
    until,
)
from repro.transactions import Env


@pytest.fixture()
def chain(domain):
    """s0 --fire dan--> s1 --hire erin+alloc--> s2."""
    s0 = domain.sample_state()
    s1 = domain.fire.run(s0, "dan")
    s2 = domain.hire.run(s1, "erin", "cs", 80, 22, "S")
    return [s0, s1, s2]


@pytest.fixture()
def model(chain):
    return PartialModel(chain_graph(chain))


def employed(domain, name):
    return atom(domain.employed(b.atom(name)))


class TestDirectSemantics:
    def test_atom_at_state(self, domain, model, chain):
        assert check(model, chain[0], employed(domain, "dan"))
        assert not check(model, chain[1], employed(domain, "dan"))

    def test_always(self, domain, model, chain):
        assert check(model, chain[0], always(employed(domain, "alice")))
        assert not check(model, chain[0], always(employed(domain, "dan")))

    def test_eventually(self, domain, model, chain):
        assert check(model, chain[0], eventually(employed(domain, "erin")))
        assert not check(model, chain[0], eventually(employed(domain, "zoe")))

    def test_next_collapses_to_eventually(self, domain, model, chain):
        f1 = nxt(employed(domain, "erin"))
        f2 = eventually(employed(domain, "erin"))
        assert check(model, chain[0], f1) == check(model, chain[0], f2)

    def test_until(self, domain, model, chain):
        # dan is employed until erin is employed... dan leaves at s1, erin
        # arrives at s2: at s1 neither holds -> Until fails
        f = until(employed(domain, "dan"), employed(domain, "erin"))
        assert not check(model, chain[0], f)
        # alice employed until erin employed: lhs holds everywhere
        g = until(employed(domain, "alice"), employed(domain, "erin"))
        assert check(model, chain[0], g)

    def test_until_discharged_by_rhs(self, domain, model, chain):
        # dan employed until "not dan employed" - rhs true at s1 discharges s2
        f = until(employed(domain, "dan"), TNot(employed(domain, "dan")))
        assert check(model, chain[0], f)

    def test_precedes(self, domain, model, chain):
        # "dan is gone" (first true at s1) precedes "erin employed" (s2)
        f = precedes(TNot(employed(domain, "dan")), employed(domain, "erin"))
        assert check(model, chain[0], f)
        # erin-employed does not precede itself being true... pick:
        # "erin employed" precedes "dan gone": dan gone already at s1 <= s2
        g = precedes(employed(domain, "erin"), TNot(employed(domain, "dan")))
        assert not check(model, chain[0], g)

    def test_reflexivity_of_always(self, domain, model, chain):
        """□a at the last state degenerates to a at that state."""
        assert check(model, chain[2], always(employed(domain, "erin")))

    def test_boolean_connectives(self, domain, model, chain):
        a = employed(domain, "alice")
        d = employed(domain, "dan")
        assert check(model, chain[0], TAnd(a, d))
        assert check(model, chain[1], TOr(a, d))
        assert check(model, chain[1], TImplies(d, TNot(a)))


class TestDeltaTranslation:
    def _agrees(self, model, state, formula):
        direct = check(model, state, formula)
        s = b.state_var("s")
        translated = delta(s, formula)
        via_delta = Evaluator(model)._formula(translated, Env({s: state}))
        assert direct == via_delta, f"δ disagreement on {formula}"
        return direct

    def test_atom_agreement(self, domain, model, chain):
        for state in chain:
            self._agrees(model, state, employed(domain, "dan"))

    def test_always_agreement(self, domain, model, chain):
        for state in chain:
            self._agrees(model, state, always(employed(domain, "alice")))
            self._agrees(model, state, always(employed(domain, "dan")))

    def test_eventually_agreement(self, domain, model, chain):
        for state in chain:
            self._agrees(model, state, eventually(employed(domain, "erin")))

    def test_until_agreement(self, domain, model, chain):
        cases = [
            until(employed(domain, "dan"), employed(domain, "erin")),
            until(employed(domain, "alice"), employed(domain, "erin")),
            until(employed(domain, "dan"), TNot(employed(domain, "dan"))),
        ]
        for state in chain:
            for f in cases:
                self._agrees(model, state, f)

    def test_precedes_agreement(self, domain, model, chain):
        cases = [
            precedes(TNot(employed(domain, "dan")), employed(domain, "erin")),
            precedes(employed(domain, "erin"), TNot(employed(domain, "dan"))),
        ]
        for state in chain:
            for f in cases:
                self._agrees(model, state, f)

    def test_nested_agreement(self, domain, model, chain):
        f = always(TImplies(employed(domain, "erin"), eventually(employed(domain, "erin"))))
        for state in chain:
            assert self._agrees(model, state, f) is True

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_formula_agreement(self, data):
        """Random temporal formulas over a 3-chain: δ must always agree."""
        from repro.domains import make_domain

        domain = make_domain()
        s0 = domain.sample_state()
        s1 = domain.fire.run(s0, "dan")
        s2 = domain.hire.run(s1, "erin", "cs", 80, 22, "S")
        model = PartialModel(chain_graph([s0, s1, s2]))
        names = st.sampled_from(["alice", "dan", "erin", "zoe"])

        def formulas(depth):
            base = st.builds(lambda n: employed(domain, n), names)
            if depth == 0:
                return base
            sub = formulas(depth - 1)
            return st.one_of(
                base,
                st.builds(TNot, sub),
                st.builds(TAnd, sub, sub),
                st.builds(always, sub),
                st.builds(eventually, sub),
                st.builds(until, sub, sub),
                st.builds(precedes, sub, sub),
            )

        formula = data.draw(formulas(2))
        state = data.draw(st.sampled_from([s0, s1, s2]))
        direct = check(model, state, formula)
        s = b.state_var("s")
        via_delta = Evaluator(model)._formula(delta(s, formula), Env({s: state}))
        assert direct == via_delta


class TestTranslateValidity:
    def test_valid_everywhere_sentence(self, domain, model, chain):
        from repro.temporal import translate_validity

        sentence = translate_validity(always(employed(domain, "alice")))
        assert not sentence.free_vars()
        assert Evaluator(model).holds(sentence)

    def test_invalid_somewhere(self, domain, model, chain):
        from repro.temporal import translate_validity

        sentence = translate_validity(employed(domain, "dan"))
        # dan is fired at s1: the atom is not valid at every state
        assert not Evaluator(model).holds(sentence)


class TestExpressiveness:
    def test_transaction_specific_constraint_has_no_atom(self, domain):
        """Example 3's dept-deletion precondition mentions the concrete
        transaction delete_3(d, DEPT) — a temporal atom cannot: atoms are
        fluent formulas, and EvalState/transactions are not fluent formulas.
        This pins the strict-expressiveness direction structurally."""
        from repro.errors import SortError
        from repro.temporal.syntax import TAtom

        c = domain.dept_deletion_precondition()
        with pytest.raises(SortError):
            TAtom(c.formula)  # situational: rejected as a temporal atom

    def test_no_transition_sentinel_never_equal(self):
        assert NO_TRANSITION != NO_TRANSITION
        assert not (NO_TRANSITION == 42)
