"""Definition 4: static / transaction / dynamic classification.

Every verdict the paper states for its examples is pinned here.
"""

from repro.constraints import ConstraintKind, classify
from repro.constraints.classify import analyze_state_usage
from repro.logic import builder as b


class TestPaperVerdicts:
    def test_example1_all_static(self, domain):
        for c in domain.static_constraints:
            assert c.kind is ConstraintKind.STATIC, c.name

    def test_example2_wrong_version_is_dynamic(self, domain):
        """Two independent state variables: not a transaction constraint."""
        assert domain.once_married_wrong().kind is ConstraintKind.DYNAMIC

    def test_example2_right_version_is_transaction(self, domain):
        assert domain.once_married().kind is ConstraintKind.TRANSACTION

    def test_example3_verdicts(self, domain):
        assert domain.skill_retention().kind is ConstraintKind.TRANSACTION
        assert (
            domain.salary_decrease_needs_dept_change().kind
            is ConstraintKind.TRANSACTION
        )
        assert domain.dept_deletion_precondition().kind is ConstraintKind.TRANSACTION
        assert domain.project_deletion_cascades().kind is ConstraintKind.TRANSACTION

    def test_example4_verdicts(self, domain):
        assert domain.never_rehire().kind is ConstraintKind.DYNAMIC
        assert domain.invertibility().kind is ConstraintKind.DYNAMIC
        assert domain.no_eternal_project().kind is ConstraintKind.DYNAMIC

    def test_fire_encoding_replacement_is_static(self, domain):
        assert domain.fire_excludes_emp().kind is ConstraintKind.STATIC


class TestStructuralRules:
    def test_no_states_at_all_is_static(self):
        s = b.state_var("s")
        f = b.forall(s, b.holds(s, b.true()))
        assert classify(f) is ConstraintKind.STATIC

    def test_composed_transitions_are_dynamic(self):
        s = b.state_var("s")
        t1, t2 = b.trans_var("t1"), b.trans_var("t2")
        f = b.forall([s, t1, t2], b.holds(b.after(b.after(s, t1), t2), b.true()))
        assert classify(f) is ConstraintKind.DYNAMIC

    def test_existential_transition_is_dynamic(self):
        s = b.state_var("s")
        t = b.trans_var("t")
        f = b.forall(s, b.exists(t, b.holds(b.after(s, t), b.true())))
        assert classify(f) is ConstraintKind.DYNAMIC

    def test_state_constant_is_dynamic(self):
        f = b.holds(b.state_const("s0"), b.true())
        assert classify(f) is ConstraintKind.DYNAMIC

    def test_concrete_transaction_term_is_transaction(self):
        s = b.state_var("s")
        e = b.ftup_var("e", 5)
        f = b.forall(
            [s, e],
            b.holds(b.after(s, b.delete(e, "EMP")), b.true()),
        )
        assert classify(f) is ConstraintKind.TRANSACTION


class TestUsageAnalysis:
    def test_polarity_of_negated_existential(self, domain):
        """¬∃t2 in a positive consequent is a universal transition."""
        usage = analyze_state_usage(domain.never_rehire().formula)
        names = {v.name for v in usage.universal_transition_vars}
        assert "t2" in names
        assert not usage.existential_transition_vars

    def test_positive_existential_detected(self, domain):
        usage = analyze_state_usage(domain.invertibility().formula)
        names = {v.name for v in usage.existential_transition_vars}
        assert "t2" in names

    def test_antecedent_flips_polarity(self):
        s = b.state_var("s")
        t = b.trans_var("t")
        # (exists t. P(s;t)) -> Q : the existential is in negative position,
        # so it behaves universally
        f = b.forall(
            s,
            b.implies(
                b.exists(t, b.holds(b.after(s, t), b.true())),
                b.holds(s, b.true()),
            ),
        )
        usage = analyze_state_usage(f)
        assert {v.name for v in usage.universal_transition_vars} == {"t"}

    def test_transition_depth(self, domain):
        usage = analyze_state_usage(domain.never_rehire().formula)
        assert usage.max_transition_depth == 2
        usage2 = analyze_state_usage(domain.once_married().formula)
        assert usage2.max_transition_depth == 1
