"""Shard failover: detection, fencing, promotion, self-healing routing."""

from __future__ import annotations

import os

import pytest

from repro.db.schema import Schema
from repro.engine import Database
from repro.errors import (
    Fenced,
    InDoubt,
    ResourceError,
    ShardError,
    ShardUnavailable,
)
from repro.logic import builder as b
from repro.sharding import (
    FailureDetector,
    Replica,
    ShardedDatabase,
    ShardHealth,
    TwoPhaseFaults,
)
from repro.storage.store import Store, read_fence, write_fence
from repro.transactions.program import query, transaction

x, y = b.atom_var("x"), b.atom_var("y")
put = transaction("put", (x, y), b.insert(b.mktuple(x, y), "KV"))
n_rows = query("n-rows", (), b.size_of(b.rel("KV", 2)))


def kv_schema() -> Schema:
    schema = Schema()
    schema.add_relation("KV", ("k", "v"))
    return schema


def ab_schema() -> Schema:
    schema = Schema()
    schema.add_relation("A", ("k", "v"))
    schema.add_relation("B", ("k", "v"))
    return schema


put_a = transaction("put-a", (x, y), b.insert(b.mktuple(x, y), "A"))
put_b = transaction("put-b", (x, y), b.insert(b.mktuple(x, y), "B"))
both = transaction(
    "both",
    (x, y),
    b.seq(b.insert(b.mktuple(x, y), "A"), b.insert(b.mktuple(x, y), "B")),
)
n_a = query("n-a", (), b.size_of(b.rel("A", 2)))
n_b = query("n-b", (), b.size_of(b.rel("B", 2)))


def make_clock(step: float = 1.0):
    """A deterministic monotonic clock advancing ``step`` per read."""
    state = {"now": 0.0}

    def clock() -> float:
        state["now"] += step
        return state["now"]

    return clock


class TestFailureDetector:
    def test_walks_up_suspect_down_at_thresholds(self):
        det = FailureDetector(1, suspect_after=2, down_after=4)
        assert det.observe(0, ok=False) is ShardHealth.UP
        assert det.observe(0, ok=False) is ShardHealth.SUSPECT
        assert det.observe(0, ok=False) is ShardHealth.SUSPECT
        assert det.observe(0, ok=False) is ShardHealth.DOWN

    def test_success_resets_the_consecutive_count(self):
        det = FailureDetector(1, suspect_after=1, down_after=2)
        det.observe(0, ok=False)
        assert det.state(0) is ShardHealth.SUSPECT
        assert det.observe(0, ok=True) is ShardHealth.UP
        # The streak restarts from zero: one failure is SUSPECT again,
        # not DOWN.
        assert det.observe(0, ok=False) is ShardHealth.SUSPECT

    def test_mark_recovered_measures_the_down_window(self):
        clock = make_clock(step=1.0)
        det = FailureDetector(1, down_after=1, clock=clock)
        det.observe(0, ok=False)  # DOWN at some clock reading t
        assert det.down_since(0) is not None
        duration = det.mark_recovered(0)
        assert duration == pytest.approx(1.0)
        assert det.state(0) is ShardHealth.UP
        assert det.down_since(0) is None

    def test_mark_recovered_without_down_returns_none(self):
        det = FailureDetector(1)
        assert det.mark_recovered(0) is None

    def test_invalid_configuration_is_refused_typed(self):
        with pytest.raises(ShardError):
            FailureDetector(0)
        with pytest.raises(ShardError):
            FailureDetector(1, suspect_after=3, down_after=2)
        with pytest.raises(ShardError):
            FailureDetector(1, suspect_after=0, down_after=2)

    def test_states_map_and_isolation_between_shards(self):
        det = FailureDetector(3, suspect_after=1, down_after=1)
        det.observe(1, ok=False)
        states = det.states()
        assert states[0] is ShardHealth.UP
        assert states[1] is ShardHealth.DOWN
        assert states[2] is ShardHealth.UP

    def test_transitions_are_mirrored_into_metrics(self):
        det = FailureDetector(1, suspect_after=1, down_after=2)
        det.observe(0, ok=False)
        det.observe(0, ok=False)
        gauge = det.metrics.get("repro_failover_state", shard="0")
        assert gauge is not None and gauge.value == 2.0
        down = det.metrics.get(
            "repro_failover_transitions_total", shard="0", to="down"
        )
        assert down is not None and down.value == 1.0

    def test_transitions_recorded_as_tracer_spans(self):
        spans = []

        class FakeTracer:
            def record(self, kind, label, version, *, start, duration,
                       touched=()):
                spans.append((kind, label))

        det = FailureDetector(
            1, suspect_after=1, down_after=2, tracer=FakeTracer()
        )
        det.observe(0, ok=False)
        det.observe(0, ok=False)
        assert ("failover", "shard-0:up->suspect") in spans
        assert ("failover", "shard-0:suspect->down") in spans


class TestFencing:
    def test_fence_file_roundtrip_and_default_epoch(self, tmp_path):
        assert read_fence(str(tmp_path)) == 1
        write_fence(str(tmp_path), 7)
        assert read_fence(str(tmp_path)) == 7

    def test_fenced_store_refuses_appends_typed(self, tmp_path):
        db = Database(kv_schema())
        db.durable(str(tmp_path))
        db.execute(put, 1, 1)
        write_fence(str(tmp_path), 2)
        with pytest.raises(Fenced) as excinfo:
            db.execute(put, 2, 2)
        err = excinfo.value
        assert err.writer_epoch == 1
        assert err.fence_epoch == 2
        assert "epoch" in str(err)

    def test_advance_fence_adopts_the_new_epoch(self, tmp_path):
        db = Database(kv_schema())
        db.durable(str(tmp_path))
        db.execute(put, 1, 1)
        store = db.store
        assert store.epoch == 1
        assert store.advance_fence() == 2
        # The store fenced *itself* forward, so its own appends still land
        # — and now carry the epoch stamp in every frame.
        db.execute(put, 2, 2)
        from repro.storage.journal import read_journal

        records = read_journal(store.journal_path).records
        assert records[-1].epoch == 2

    def test_epoch_one_frames_stay_byte_compatible(self, tmp_path):
        """Pre-failover journals never mention epochs: the stamp is omitted
        at epoch 1 so old readers see identical frames."""
        db = Database(kv_schema())
        db.durable(str(tmp_path))
        db.execute(put, 1, 1)
        from repro.storage.journal import read_journal

        records = read_journal(db.store.journal_path).records
        assert all(r.epoch is None for r in records)
        assert all("epoch" not in r.to_doc() for r in records)

    def test_recovery_refuses_zombie_frames_from_a_deposed_epoch(
        self, tmp_path
    ):
        """A frame carrying a *smaller* epoch than one already replayed is
        a zombie append that slipped past the fence check: replay must
        stop at the safe prefix, not apply it."""
        db = Database(kv_schema())
        db.durable(str(tmp_path))
        db.execute(put, 1, 1)
        store = db.store
        store.advance_fence()  # epoch 2
        db.execute(put, 2, 2)
        # Forge the zombie: an epoch-1 frame appended after epoch-2 ones.
        from repro.storage.journal import Journal, JournalRecord
        from repro.storage.serialize import state_digest

        zombie = JournalRecord(
            seq=3,
            label="zombie",
            program=None,
            args=(),
            snapshot_version=None,
            delta={},
            post_digest=state_digest(db.current),
            kind="commit",
            txid=None,
            epoch=1,
        )
        db.close()
        writer = Journal(store.journal_path)
        writer.append(zombie)
        writer.close()

        recovery = Store(str(tmp_path)).recover()
        assert not recovery.clean
        assert "deposed epoch" in (recovery.reason or "")
        assert recovery.epoch == 2
        assert len(recovery.state.relations["KV"].tuples) == 2

    def test_recover_reports_the_journal_epoch(self, tmp_path):
        db = Database(kv_schema())
        db.durable(str(tmp_path))
        db.execute(put, 1, 1)
        db.close()
        assert Store(str(tmp_path)).recover().epoch == 1


class TestPromotion:
    def _sharded(self, tmp_path):
        return ShardedDatabase(
            ab_schema(), shards=2, path=str(tmp_path),
            placement={"A": 0, "B": 1},
        )

    def test_promote_resolves_pending_prepare_by_decision_record(
        self, tmp_path
    ):
        sdb = self._sharded(tmp_path)
        shard = sdb.plan.shard_of("A")
        sdb.faults = TwoPhaseFaults(crash_at="after-decision")
        with pytest.raises(InDoubt) as excinfo:
            sdb.execute(both, 1, 1)
        assert excinfo.value.decided
        sdb.close()

        replica = Replica(str(tmp_path / f"shard-{shard}"))
        promotion = replica.promote(
            decisions={excinfo.value.txid: "commit"}
        )
        assert promotion.epoch == 2
        assert [r[1] for r in promotion.resolutions] == ["commit"]
        assert "coordinator decision record" in promotion.resolutions[0][2]
        assert len(promotion.state.relations["A"].tuples) == 1
        promotion.store.close()

    def test_promote_presumes_abort_without_evidence(self, tmp_path):
        sdb = self._sharded(tmp_path)
        shard = sdb.plan.shard_of("A")
        sdb.faults = TwoPhaseFaults(crash_at="before-decision")
        with pytest.raises(InDoubt):
            sdb.execute(both, 1, 1)
        sdb.close()

        replica = Replica(str(tmp_path / f"shard-{shard}"))
        promotion = replica.promote(decisions={}, applied={})
        assert [r[1] for r in promotion.resolutions] == ["abort"]
        assert "presumed abort" in promotion.resolutions[0][2]
        assert len(promotion.state.relations["A"].tuples) == 0
        promotion.store.close()

    def test_promote_honors_sibling_applied_outcome(self, tmp_path):
        sdb = self._sharded(tmp_path)
        shard = sdb.plan.shard_of("A")
        sdb.faults = TwoPhaseFaults(crash_at="after-decision")
        with pytest.raises(InDoubt) as excinfo:
            sdb.execute(both, 1, 1)
        sdb.close()

        replica = Replica(str(tmp_path / f"shard-{shard}"))
        promotion = replica.promote(
            decisions={}, applied={excinfo.value.txid: "commit"}
        )
        assert [r[1] for r in promotion.resolutions] == ["commit"]
        assert "sibling" in promotion.resolutions[0][2]
        promotion.store.close()

    def test_zombie_primary_is_fenced_after_promotion(self, tmp_path):
        db = Database(kv_schema())
        db.durable(str(tmp_path))
        db.execute(put, 1, 1)

        replica = Replica(str(tmp_path))
        promotion = replica.promote()
        assert promotion.epoch == 2
        # The old primary still holds its open store handle — every append
        # and PREPARE vote it attempts is refused, typed.
        with pytest.raises(Fenced):
            db.execute(put, 2, 2)
        with pytest.raises(Fenced):
            db.store.log_prepare(
                db.current, db.current, seq=99, txid="t-zombie",
                label="zombie",
            )
        # The new primary's store accepts writes at the new epoch.
        promotion.store.log_commit(
            promotion.state, promotion.state,
            seq=promotion.seq + 1, label="new-primary",
        )
        promotion.store.close()
        db.close()

    def test_promotion_checkpoint_reseeds_fresh_replicas(self, tmp_path):
        db = Database(kv_schema())
        db.durable(str(tmp_path))
        for i in range(5):
            db.execute(put, i, i)
        promotion = Replica(str(tmp_path)).promote()
        # One commit in the new epoch, so followers replay a stamped frame.
        promotion.store.log_commit(
            promotion.state, promotion.state,
            seq=promotion.seq + 1, label="post-promotion",
        )
        promotion.store.close()
        fresh = Replica(str(tmp_path))
        assert fresh.query(n_rows) == 5
        assert fresh.journal_epoch == promotion.epoch


class TestShardedFailover:
    def _sharded(self, tmp_path, **kwargs):
        sdb = ShardedDatabase(
            ab_schema(), shards=2, path=str(tmp_path),
            placement={"A": 0, "B": 1},
        )
        sdb.enable_failover(
            suspect_after=1, down_after=2, retry_after=0.01, **kwargs
        )
        return sdb

    def test_dead_shard_is_refused_fast_with_retry_hint(self, tmp_path):
        sdb = self._sharded(tmp_path, auto_promote=False)
        shard = sdb.plan.shard_of("A")
        sdb.execute(put_a, 1, 1)
        sdb.kill_shard(shard)
        with pytest.raises(ShardUnavailable) as excinfo:
            sdb.execute(put_a, 2, 2)
        err = excinfo.value
        assert isinstance(err, ResourceError)  # admission/backoff apply
        assert err.shard == shard
        assert err.retry_after == pytest.approx(0.01)
        assert err.state == "suspect"
        # The healthy shard keeps serving.
        sdb.execute(put_b, 1, 1)
        assert sdb.query(n_b) == 1
        sdb.close()

    def test_self_healing_inline_promotion_on_routed_traffic(
        self, tmp_path
    ):
        sdb = self._sharded(tmp_path)
        shard = sdb.plan.shard_of("A")
        sdb.execute(put_a, 1, 1)
        zombie = sdb.kill_shard(shard)
        # Touch 1: SUSPECT, refused.  Touch 2: DOWN -> inline promotion,
        # the very same call succeeds against the new primary.
        with pytest.raises(ShardUnavailable):
            sdb.execute(put_a, 2, 2)
        sdb.execute(put_a, 2, 2)
        assert sdb.query(n_a) == 2
        # The deposed primary's handle is fenced out.
        with pytest.raises(Fenced):
            zombie.store.log_commit(
                zombie.db.current, zombie.db.current,
                seq=zombie.seq + 1, label="zombie",
            )
        zombie.store.close()
        sdb.close()

    def test_failover_tick_heals_an_idle_shard(self, tmp_path):
        """A shard serving no traffic is still detected and promoted by
        the probe path."""
        sdb = self._sharded(tmp_path)
        shard = sdb.plan.shard_of("A")
        sdb.execute(put_a, 1, 1)
        sdb.kill_shard(shard)
        healths = [sdb.failover_tick()[shard] for _ in range(3)]
        assert healths[0] is ShardHealth.SUSPECT
        assert healths[-1] is ShardHealth.UP  # promoted mid-ticks
        assert sdb.query(n_a) == 1
        sdb.close()

    def test_promote_shard_returns_none_when_already_healthy(
        self, tmp_path
    ):
        sdb = self._sharded(tmp_path)
        assert sdb.promote_shard(0) is None
        sdb.close()

    @pytest.mark.parametrize("point", [
        "prepare:0", "prepare:1", "before-decision",
    ])
    @pytest.mark.parametrize("kill_writer", [0, 1])
    def test_kill_before_decision_presumes_abort_atomically(
        self, tmp_path, point, kill_writer
    ):
        """Losing a writer before the decision point durably presumes
        abort: the caller is refused (safe to retry) and neither stripe
        shows the write — even after the dead shard heals."""
        sdb = self._sharded(tmp_path)
        sdb.execute(both, 1, 1)
        sdb.faults = TwoPhaseFaults(
            kill_primary_at=point, kill_writer=kill_writer
        )
        with pytest.raises(ShardUnavailable):
            sdb.execute(both, 2, 2)
        zombies = sdb.faults.killed
        assert len(zombies) == 1
        sdb.faults = None
        assert sdb.promote_shard(zombies[0].index) is not None
        assert sdb.query(n_a) == 1
        assert sdb.query(n_b) == 1
        zombies[0].store.close()
        sdb.close()

    @pytest.mark.parametrize("point", [
        "after-decision", "outcome:0", "outcome:1",
    ])
    @pytest.mark.parametrize("kill_writer", [0, 1])
    def test_kill_after_decision_still_commits_everywhere(
        self, tmp_path, point, kill_writer
    ):
        """Once the decision record is durable the transaction commits on
        every stripe: live writers apply immediately, the dead writer's
        apply is deferred to promotion (which resolves the stashed
        prepare from the decision record)."""
        sdb = self._sharded(tmp_path)
        sdb.execute(both, 1, 1)
        sdb.faults = TwoPhaseFaults(
            kill_primary_at=point, kill_writer=kill_writer
        )
        sdb.execute(both, 2, 2)  # succeeds: the decision was durable
        zombies = sdb.faults.killed
        sdb.faults = None
        if zombies:  # outcome:1 after both applied may not need healing
            sdb.promote_shard(zombies[0].index)
            zombies[0].store.close()
        assert sdb.query(n_a) == 2
        assert sdb.query(n_b) == 2
        sdb.close()

    def test_recover_fences_out_pre_crash_zombies(self, tmp_path):
        """Whole-process recovery advances every shard's fence, so a
        zombie holding pre-crash store handles cannot append to journals
        the recovered process now owns."""
        sdb = ShardedDatabase(
            ab_schema(), shards=2, path=str(tmp_path),
            placement={"A": 0, "B": 1},
        )
        sdb.execute(put_a, 1, 1)
        shard = sdb.plan.shard_of("A")
        zombie = sdb.kill_shard(shard)

        sdb2, _ = ShardedDatabase.recover(
            ab_schema(), str(tmp_path), placement={"A": 0, "B": 1}
        )
        with pytest.raises(Fenced):
            zombie.store.log_commit(
                zombie.db.current, zombie.db.current,
                seq=zombie.seq + 1, label="zombie",
            )
        assert sdb2.query(n_a) == 1
        zombie.store.close()
        sdb.close()
        sdb2.close()

    def test_promotion_reseeds_a_standby_for_the_next_failure(
        self, tmp_path
    ):
        """Failover twice in a row: the standby re-seeded from the first
        promotion's checkpoint carries the second one."""
        sdb = self._sharded(tmp_path)
        shard = sdb.plan.shard_of("A")
        sdb.execute(put_a, 1, 1)
        z1 = sdb.kill_shard(shard)
        assert sdb.promote_shard(shard) is not None
        sdb.execute(put_a, 2, 2)
        z2 = sdb.kill_shard(shard)
        assert sdb.promote_shard(shard) is not None
        sdb.execute(put_a, 3, 3)
        assert sdb.query(n_a) == 3
        for z in (z1, z2):
            with pytest.raises(Fenced):
                z.store.log_commit(
                    z.db.current, z.db.current, seq=z.seq + 1,
                    label="zombie",
                )
            z.store.close()
        sdb.close()

    def test_failover_requires_a_durable_database(self):
        sdb = ShardedDatabase(ab_schema(), shards=2)
        with pytest.raises(ShardError):
            sdb.enable_failover()
        sdb.close()

    def test_unavailability_window_metric_is_observed(self, tmp_path):
        sdb = self._sharded(tmp_path)
        shard = sdb.plan.shard_of("A")
        sdb.execute(put_a, 1, 1)
        sdb.kill_shard(shard)
        for _ in range(3):
            sdb.failover_tick()
        rows = sdb.metrics.families().get(
            "repro_failover_unavailable_seconds", ()
        )
        assert rows and rows[0][1].count == 1
        kills = sdb.metrics.get(
            "repro_failover_kills_total", shard=str(shard)
        )
        assert kills is not None and kills.value == 1.0
        sdb.close()
