"""Satellite coverage: quantile edges, states_equivalent bookkeeping,
per-relation conflict stats, and commit-log indexing."""

from __future__ import annotations

import threading

import pytest

from repro import Database, Schema, transaction
from repro.concurrent import ConcurrencyStats, quantile, states_equivalent
from repro.concurrent.log import CommitLog
from repro.db.state import State, state_from_rows
from repro.logic import builder as b


@pytest.fixture()
def schema():
    s = Schema()
    s.add_relation("A", ("k", "v"))
    s.add_relation("B", ("k", "v"))
    return s


# ---------------------------------------------------------------------------
# quantile edge cases
# ---------------------------------------------------------------------------


class TestQuantileEdges:
    def test_single_element_every_q(self):
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert quantile([7.0], q) == 7.0

    def test_q_zero_is_minimum(self):
        assert quantile([5.0, 1.0, 3.0], 0.0) == 1.0

    def test_q_one_is_maximum(self):
        assert quantile([5.0, 1.0, 3.0], 1.0) == 5.0

    def test_ties_collapse_to_the_tied_value(self):
        values = [2.0, 2.0, 2.0, 9.0]
        assert quantile(values, 0.5) == 2.0
        assert quantile(values, 0.75) == 2.0
        assert quantile(values, 1.0) == 9.0

    def test_unsorted_input_and_two_elements(self):
        assert quantile([9.0, 1.0], 0.5) == 1.0
        assert quantile([9.0, 1.0], 0.51) == 9.0

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            quantile([1.0], -0.01)
        with pytest.raises(ValueError):
            quantile([1.0], 1.01)

    def test_empty_without_default_raises(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_empty_with_default_returns_default(self):
        assert quantile([], 0.5, default=0.0) == 0.0
        assert quantile([], 0.99, default=-1.0) == -1.0

    def test_q_validated_before_emptiness(self):
        # A bad q is a caller bug even on an empty window: it must raise,
        # never be masked by the default.
        with pytest.raises(ValueError, match="q must be"):
            quantile([], -0.5, default=0.0)

    def test_zero_one_two_samples_at_every_quantile(self):
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert quantile([], q, default=0.0) == 0.0
            assert quantile([4.0], q) == 4.0
        assert quantile([4.0, 8.0], 0.5) == 4.0
        assert quantile([4.0, 8.0], 0.95) == 8.0
        assert quantile([4.0, 8.0], 0.99) == 8.0


# ---------------------------------------------------------------------------
# stats: p99, backoff, and the metrics mirror
# ---------------------------------------------------------------------------


class TestStatsObservability:
    def test_snapshot_reports_p99(self):
        stats = ConcurrencyStats()
        for i in range(1, 101):
            stats.record_commit(i / 1000.0)
        snap = stats.snapshot()
        assert snap.p50_latency == 0.050
        assert snap.p99_latency == 0.099
        assert "p99" in snap.summary() or "/" in snap.summary()

    def test_empty_snapshot_quantiles_are_zero(self):
        snap = ConcurrencyStats().snapshot()
        assert snap.p50_latency == snap.p95_latency == snap.p99_latency == 0.0

    def test_backoff_accumulates(self):
        stats = ConcurrencyStats()
        assert stats.backoffs == (0, 0.0)
        stats.record_backoff(0.01)
        stats.record_backoff(0.02)
        count, total = stats.backoffs
        assert count == 2 and total == pytest.approx(0.03)

    def test_events_mirror_into_registry(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        stats = ConcurrencyStats(metrics=registry)
        stats.record_commit(0.004)
        stats.record_conflict(["A", "B"])
        stats.record_retry()
        stats.record_backoff(0.001)
        stats.record_abort()
        stats.record_failure()
        assert registry.counter("repro_commits_total").value == 1
        assert registry.counter("repro_conflicts_total").value == 1
        assert (
            registry.counter("repro_relation_conflicts_total", relation="A").value
            == 1
        )
        assert registry.counter("repro_retries_total").value == 1
        assert registry.counter("repro_aborts_total").value == 1
        assert registry.counter("repro_failures_total").value == 1
        assert registry.histogram("repro_txn_latency_seconds").count == 1
        assert registry.histogram("repro_backoff_seconds").count == 1

    def test_scheduler_reports_into_database_registry(self, schema):
        x, y = b.atom_var("x"), b.atom_var("y")
        put = transaction("put-a", (x, y), b.insert(b.mktuple(x, y), "A"))
        db = Database(schema, window=2)
        with db.concurrent(workers=2, seed=3) as mgr:
            outcomes = mgr.run_all([(put, i, i) for i in range(5)])
        assert all(o.ok for o in outcomes)
        assert db.metrics.counter("repro_commits_total").value == 5
        assert db.metrics.histogram("repro_txn_latency_seconds").count == 5


# ---------------------------------------------------------------------------
# states_equivalent bookkeeping-only differences
# ---------------------------------------------------------------------------


class TestStatesEquivalentBookkeeping:
    def test_next_tid_only_difference_is_equivalent(self, schema):
        initial = state_from_rows(schema, {"A": [(1, 2)]})
        bumped = State(initial.relations, initial.owner, initial.next_tid + 7)
        assert states_equivalent(initial, initial, bumped)

    def test_owner_only_difference_is_equivalent(self, schema):
        initial = state_from_rows(schema, {"A": [(1, 2)]})
        # Stale owner entry for a tuple no relation holds: pure bookkeeping.
        dirty_owner = dict(initial.owner)
        dirty_owner[999] = "B"
        dirty = State(initial.relations, dirty_owner, initial.next_tid)
        assert states_equivalent(initial, initial, dirty)

    def test_fresh_identifier_renaming_is_equivalent(self, schema):
        initial = state_from_rows(schema, {"A": [(1, 2)]})
        from repro.db.values import DBTuple

        a, _ = initial.insert_tuple("A", DBTuple(None, (8, 8)))
        a, _ = a.insert_tuple("A", DBTuple(None, (9, 9)))
        b2, _ = initial.insert_tuple("A", DBTuple(None, (9, 9)))
        b2, _ = b2.insert_tuple("A", DBTuple(None, (8, 8)))
        assert states_equivalent(initial, a, b2)

    def test_pre_existing_identifier_must_match(self, schema):
        initial = state_from_rows(schema, {"A": [(1, 2), (3, 4)]})
        first, second = sorted(
            initial.relation("A"), key=lambda t: t.tid
        )
        # Swap the two pre-existing identifiers: same values, different ids.
        swapped = initial.delete_tuple("A", first).delete_tuple("A", second)
        from repro.db.values import DBTuple

        swapped, _ = swapped.insert_tuple(
            "A", DBTuple(first.tid, second.values)
        )
        swapped, _ = swapped.insert_tuple(
            "A", DBTuple(second.tid, first.values)
        )
        assert not states_equivalent(initial, initial, swapped)

    def test_value_difference_is_not_equivalent(self, schema):
        initial = state_from_rows(schema, {"A": [(1, 2)]})
        other = state_from_rows(schema, {"A": [(1, 3)]})
        assert not states_equivalent(initial, initial, other)


# ---------------------------------------------------------------------------
# per-relation conflict stats
# ---------------------------------------------------------------------------


class TestConflictRelationStats:
    def test_counts_accumulate_per_relation(self):
        stats = ConcurrencyStats()
        stats.record_conflict({"A", "B"})
        stats.record_conflict({"A"})
        stats.record_conflict()
        assert stats.conflicts == 3
        assert stats.conflicts_by_relation() == {"A": 2, "B": 1}

    def test_snapshot_orders_hottest_first_with_name_tiebreak(self):
        stats = ConcurrencyStats()
        for _ in range(3):
            stats.record_conflict({"Z"})
        for _ in range(3):
            stats.record_conflict({"A"})
        stats.record_conflict({"M"})
        snap = stats.snapshot()
        assert snap.top_conflicts == (("A", 3), ("Z", 3), ("M", 1))
        assert "hot_relations=[A:3, Z:3, M:1]" in snap.summary()

    def test_top_k_truncates(self):
        stats = ConcurrencyStats(top_k=2)
        for name in ("R1", "R2", "R3"):
            stats.record_conflict({name})
        assert len(stats.snapshot().top_conflicts) == 2

    def test_no_conflicts_means_no_hot_section(self):
        snap = ConcurrencyStats().snapshot()
        assert snap.top_conflicts == ()
        assert "hot_relations" not in snap.summary()

    def test_thread_safety_under_concurrent_recording(self):
        stats = ConcurrencyStats()

        def hammer():
            for _ in range(200):
                stats.record_conflict({"HOT"})

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.conflicts_by_relation() == {"HOT": 800}

    def test_scheduler_populates_relation_counts(self, schema):
        """A forced conflict on relation A shows up by name."""
        x, y = b.atom_var("x"), b.atom_var("y")
        put_a = transaction("put-a", (x, y), b.insert(b.mktuple(x, y), "A"))
        db = Database(schema, window=2)
        with db.concurrent(workers=2, seed=3) as mgr:
            first_evaluated = threading.Event()
            release_second = threading.Event()

            def gate_first(attempt):
                first_evaluated.set()
                release_second.wait(timeout=5)

            def gate_second(attempt):
                if attempt == 1:
                    first_evaluated.wait(timeout=5)

            f1 = mgr.submit(put_a, 1, 1, on_evaluated=gate_second)
            f2 = mgr.submit(put_a, 2, 2, on_evaluated=gate_first)
            release_second.set()
            assert f1.result().ok and f2.result().ok
        by_relation = mgr.stats.conflicts_by_relation()
        if mgr.stats.conflicts:  # the interleaving fired: A is the culprit
            assert set(by_relation) == {"A"}
            assert mgr.stats.snapshot().top_conflicts[0][0] == "A"


# ---------------------------------------------------------------------------
# commit-log indexing
# ---------------------------------------------------------------------------


def _filled_log(schema, n=5):
    x, y = b.atom_var("x"), b.atom_var("y")
    put = transaction("put-a", (x, y), b.insert(b.mktuple(x, y), "A"))
    db = Database(schema, window=2)
    with db.concurrent(workers=1, seed=5) as mgr:
        for i in range(n):
            assert mgr.execute(put, i, i).ok
    return mgr.log


class TestCommitLogIndexing:
    def test_negative_indices(self, schema):
        log = _filled_log(schema)
        assert log[-1].seq == 5 and log[-5].seq == 1
        assert log[-1] == log[4]

    def test_slices_return_tuples(self, schema):
        log = _filled_log(schema)
        assert [r.seq for r in log[1:3]] == [2, 3]
        assert [r.seq for r in log[::2]] == [1, 3, 5]
        assert [r.seq for r in log[::-1]] == [5, 4, 3, 2, 1]
        assert isinstance(log[1:3], tuple)
        assert log[3:2] == ()

    def test_out_of_range_raises(self, schema):
        log = _filled_log(schema)
        with pytest.raises(IndexError):
            log[5]
        with pytest.raises(IndexError):
            log[-6]

    def test_tail(self, schema):
        log = _filled_log(schema)
        assert [r.seq for r in log.tail(2)] == [4, 5]
        assert [r.seq for r in log.tail(99)] == [1, 2, 3, 4, 5]
        assert log.tail(0) == () and log.tail(-3) == ()
        assert CommitLog().tail(4) == ()

    def test_negative_slices_match_list_semantics(self, schema):
        log = _filled_log(schema)
        records = list(log)
        for sl in (
            slice(-2, None),
            slice(None, -2),
            slice(-4, -1),
            slice(-1, -4),
            slice(-99, 99),
            slice(None, None, -2),
        ):
            assert log[sl] == tuple(records[sl]), sl

    def test_tail_matches_negative_slice(self, schema):
        log = _filled_log(schema)
        for n in range(-2, 8):
            expected = log[-n:] if n > 0 else ()
            assert log.tail(n) == expected
