"""Shared fixtures: the employee domain, sample states, and hypothesis
strategies for random states and histories."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.db import DBTuple, Schema, State, state_from_rows
from repro.domains import make_domain


@pytest.fixture()
def domain():
    return make_domain()


@pytest.fixture()
def sample_state(domain):
    return domain.sample_state()


@pytest.fixture()
def tiny_schema():
    schema = Schema()
    schema.add_relation("R", ("a", "b"))
    schema.add_relation("S", ("x", "y", "z"))
    return schema


@pytest.fixture()
def tiny_state(tiny_schema):
    return state_from_rows(
        tiny_schema,
        {"R": [(1, 2), (3, 4)], "S": [(1, 1, 1), (2, 2, 2)]},
    )


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

names = st.sampled_from(["alice", "bob", "carol", "dan", "erin", "frank"])
depts = st.sampled_from(["cs", "ee", "ops"])
projects = st.sampled_from(["db", "ai", "net", "web"])
small_nat = st.integers(min_value=0, max_value=200)


@st.composite
def employee_rows(draw, min_size=0, max_size=5):
    chosen = draw(
        st.lists(names, min_size=min_size, max_size=max_size, unique=True)
    )
    rows = []
    for name in chosen:
        rows.append(
            (
                name,
                draw(depts),
                draw(small_nat),
                draw(st.integers(min_value=18, max_value=70)),
                draw(st.sampled_from(["S", "M"])),
            )
        )
    return rows


@st.composite
def employee_states(draw):
    """A random consistent-ish employee state (not constraint-validated)."""
    domain = make_domain()
    emp_rows = draw(employee_rows())
    proj_rows = [(p, draw(small_nat)) for p in draw(
        st.lists(projects, min_size=1, max_size=4, unique=True)
    )]
    alloc_rows = []
    for name, *_ in emp_rows:
        for proj, _ in proj_rows:
            if draw(st.booleans()):
                alloc_rows.append((name, proj, draw(st.integers(1, 50))))
    return state_from_rows(
        domain.schema,
        {"EMP": emp_rows, "PROJ": proj_rows, "ALLOC": alloc_rows},
    )


def fresh_tuple(*values):
    return DBTuple(None, tuple(values))
