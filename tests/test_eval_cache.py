"""The tabled query cache: hits, invalidation, eviction, tracer neutrality."""

from __future__ import annotations

import pytest

from repro.engine import Database
from repro.eval.cache import CacheMismatch, QueryCache, _Entry
from repro.logic import builder as b
from repro.transactions.program import query, transaction


def headcount_query():
    return query("headcount", (), b.size_of(b.rel("EMP", 5)))


class TestTabling:
    def test_hit_after_identical_call(self, domain):
        cache = QueryCache()
        state = domain.sample_state()
        q = headcount_query()
        assert cache.evaluate(q, (), state) == 4
        assert cache.evaluate(q, (), state) == 4
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        assert len(cache) == 1

    def test_different_args_are_different_entries(self, domain):
        cache = QueryCache()
        state = domain.sample_state()
        x = b.atom_var("x")
        q = query("echo-size", (x,), b.size_of(b.rel("EMP", 5)))
        cache.evaluate(q, ("a",), state)
        cache.evaluate(q, ("b",), state)
        assert cache.stats.misses == 2
        assert len(cache) == 2

    def test_value_correct_across_states_via_digest(self, domain):
        cache = QueryCache()
        s1 = domain.sample_state()
        s2 = domain.hire.run(s1, "erin", "cs", 90, 25, "S")
        q = headcount_query()
        assert cache.evaluate(q, (), s1) == 4
        # Same key, different EMP content: the digest check must miss.
        assert cache.evaluate(q, (), s2) == 5
        assert cache.evaluate(q, (), s2) == 5
        assert (cache.stats.hits, cache.stats.misses) == (1, 2)

    def test_unrelated_state_change_still_hits(self, domain):
        cache = QueryCache()
        s1 = domain.sample_state()
        s2 = domain.create_project.run(s1, "web", 50)  # touches PROJ only
        q = headcount_query()
        assert cache.evaluate(q, (), s1) == 4
        assert cache.evaluate(q, (), s2) == 4
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)

    def test_program_identity_checked_not_just_name(self, domain):
        cache = QueryCache()
        state = domain.sample_state()
        q1 = query("q", (), b.size_of(b.rel("EMP", 5)))
        q2 = query("q", (), b.size_of(b.rel("PROJ", 2)))
        assert cache.evaluate(q1, (), state) == 4
        assert cache.evaluate(q2, (), state) == 3
        assert cache.stats.misses == 2


class TestInvalidation:
    def test_touching_commit_invalidates(self, domain):
        cache = QueryCache()
        state = domain.sample_state()
        cache.evaluate(headcount_query(), (), state)
        assert cache.invalidate({"EMP"}) == 1
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

    def test_unrelated_commit_does_not_invalidate(self, domain):
        cache = QueryCache()
        state = domain.sample_state()
        cache.evaluate(headcount_query(), (), state)
        assert cache.invalidate({"PROJ", "ALLOC"}) == 0
        assert len(cache) == 1

    def test_structural_commit_clears_everything(self, domain):
        cache = QueryCache()
        state = domain.sample_state()
        cache.evaluate(headcount_query(), (), state)
        assert cache.invalidate({"NEW"}, structural=True) == 1
        assert len(cache) == 0

    def test_eviction_respects_max_entries(self, domain):
        cache = QueryCache(max_entries=2)
        state = domain.sample_state()
        x = b.atom_var("x")
        q = query("echo-size", (x,), b.size_of(b.rel("EMP", 5)))
        for arg in ("a", "b", "c"):
            cache.evaluate(q, (arg,), state)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest entry ("a") went; "b" and "c" still hit.
        cache.evaluate(q, ("c",), state)
        assert cache.stats.hits == 1

    def test_verify_mode_catches_poisoned_entry(self, domain):
        cache = QueryCache(verify=True)
        state = domain.sample_state()
        q = headcount_query()
        cache.evaluate(q, (), state)
        (key, entry), = cache._entries.items()
        cache._entries[key] = _Entry(
            program=entry.program,
            reads=entry.reads,
            schema_sig=entry.schema_sig,
            digest=entry.digest,
            value=99,
        )
        with pytest.raises(CacheMismatch):
            cache.evaluate(q, (), state)


class TestEngineWiring:
    def test_commit_invalidates_only_touched_reads(self, domain):
        db = Database(domain.schema, initial=domain.sample_state())
        cache = db.enable_query_cache()
        q = headcount_query()
        assert db.query(q) == 4
        db.execute(domain.create_project, "web", 50)  # PROJ only
        assert db.query(q) == 4  # still a hit
        db.execute(domain.hire, "erin", "cs", 90, 25, "S")
        assert db.query(q) == 5  # invalidated, fresh value
        assert (cache.stats.hits, cache.stats.misses) == (1, 2)

    def test_metrics_mirrored(self, domain):
        db = Database(domain.schema, initial=domain.sample_state())
        db.enable_query_cache()
        q = headcount_query()
        db.query(q)
        db.query(q)
        assert db.metrics.counter("repro_eval_cache_hits_total").value == 1
        assert db.metrics.counter("repro_eval_cache_misses_total").value == 1
        assert db.metrics.gauge("repro_eval_cache_entries").value == 1

    def test_register_encoding_clears_cache(self, domain):
        from repro.constraints.history import HistoryEncoding

        db = Database(domain.schema, initial=domain.sample_state())
        cache = db.enable_query_cache()
        q = headcount_query()
        db.query(q)
        db.register_encoding(
            HistoryEncoding(domain.schema.relation("EMP"), "FIRE", "e-name")
        )
        assert len(cache) == 0


class TestTracerNeutrality:
    """Enabling Database.profile() must not change cache keys or results."""

    def workload(self, domain, db):
        q = headcount_query()
        results = []
        results.append(db.query(q))
        results.append(db.query(q))
        db.execute(domain.create_project, "web", 50)
        results.append(db.query(q))
        db.execute(domain.hire, "erin", "cs", 90, 25, "S")
        results.append(db.query(q))
        results.append(db.query(q))
        return results

    def test_traced_and_untraced_runs_agree(self, domain):
        from repro.domains import make_domain

        d1, d2 = make_domain(), make_domain()
        db_plain = Database(d1.schema, initial=d1.sample_state())
        cache_plain = db_plain.enable_query_cache()
        plain = self.workload(d1, db_plain)

        db_traced = Database(d2.schema, initial=d2.sample_state())
        cache_traced = db_traced.enable_query_cache()
        with db_traced.profile():
            traced = self.workload(d2, db_traced)

        assert traced == plain
        assert cache_traced.stats.hits == cache_plain.stats.hits
        assert cache_traced.stats.misses == cache_plain.stats.misses
        assert (
            db_traced.current.digest() == db_plain.current.digest()
        ), "traced and untraced commits must produce identical states"

    def test_toggling_profile_mid_run_keeps_hitting(self, domain):
        db = Database(domain.schema, initial=domain.sample_state())
        cache = db.enable_query_cache()
        q = headcount_query()
        db.query(q)
        with db.profile():
            db.query(q)  # the tracer is not part of the key: still a hit
        db.query(q)
        assert (cache.stats.hits, cache.stats.misses) == (2, 1)
