"""Crash-riddled soaks over the sharding layer — the end-to-end witness.

Each soak drives single-shard puts and cross-shard transfers through a
deterministic fault plan (simulated crashes at every 2PC point, torn
decision journals, forced aborts), recovering from disk after every crash.
The report must show typed outcomes only, zero wrong answers, zero
atomicity violations, and per-shard journals that replay to the live
state.
"""

from __future__ import annotations

import pytest

from repro.testing import ShardChaosConfig, run_shard_soak

SEEDS = (1, 2, 3, 4)


@pytest.mark.parametrize("seed", SEEDS)
def test_soak_contract_holds(tmp_path, seed):
    report = run_shard_soak(seed, str(tmp_path), rounds=10)
    assert report.untyped_errors == []
    assert report.wrong_answers == 0
    assert report.atomicity_violations == 0
    assert report.journals_match_live
    assert report.ok
    # The soak actually exercised work, not a vacuous pass.
    assert report.committed_single > 0
    assert report.rounds == 10


def test_soak_is_deterministic(tmp_path):
    a = run_shard_soak(7, str(tmp_path / "a"), rounds=8)
    c = run_shard_soak(7, str(tmp_path / "b"), rounds=8)
    assert a.crashes == c.crashes
    assert a.committed_single == c.committed_single
    assert a.committed_cross == c.committed_cross
    assert a.resolutions == c.resolutions
    assert a.torn_decisions == c.torn_decisions


def test_soak_under_heavy_faults(tmp_path):
    """Crank every fault rate: the contract must hold even when most
    rounds crash and a third of crashes tear the decision journal."""
    cfg = ShardChaosConfig(
        crash_rate=0.8, abort_rate=0.5, torn_decision_rate=0.35
    )
    report = run_shard_soak(11, str(tmp_path), rounds=12, config=cfg)
    assert report.ok, report.to_json()
    assert report.crashes >= 5
    # Every drawn crash recovers; not every one surfaced as InDoubt (the
    # round may have aborted first), so recoveries bounds crashes above.
    assert report.recoveries >= report.crashes


def test_soak_exercises_crashes_and_recoveries(tmp_path):
    """Across the seed set at default rates, every fault class fires at
    least once — crashes, in-doubt resolutions, and replica traffic."""
    crashes = resolutions = replica_queries = 0
    for seed in SEEDS:
        report = run_shard_soak(
            seed, str(tmp_path / f"s{seed}"), rounds=10
        )
        crashes += report.crashes
        resolutions += len(report.resolutions)
        replica_queries += report.replica_queries
    assert crashes > 0
    assert resolutions > 0
    assert replica_queries > 0


def test_report_round_trips_to_json(tmp_path):
    import json

    report = run_shard_soak(5, str(tmp_path), rounds=4)
    doc = json.loads(report.to_json())
    assert doc["seed"] == 5
    assert doc["ok"] == report.ok
    assert "atomicity_violations" in doc
