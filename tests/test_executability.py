"""Executability: only f-terms are programs (Definition 3 / experiment E8)."""

import pytest

from repro.errors import ExecutabilityError
from repro.logic import builder as b
from repro.logic.formulas import EvalBool
from repro.logic.terms import EvalObj, EvalState
from repro.transactions import (
    check_program,
    explain_unexecutable,
    is_executable,
    violations,
)


def paper_counterexample():
    """The paper's non-executable salary program (Section 2)::

        if greater-than(modify(s0, sal(c), sal(c)+100), sal(c), sal(mgr(c)))
        then modify(s0, sal(c), 1.1 * sal(c))
        else modify(s0, sal(c), 1.2 * sal(c))

    As soon as the salary is increased by 100 the original value is
    destroyed; the guard inspects a *different* state than the branches —
    expressible situationally, but not an f-term.  We build the situational
    guard: compare the salary at ``s0;modify(...)`` with the manager's.
    """
    s0 = b.state_const("s0")
    c = b.ftup_var("c", 5)
    mgr = b.ftup_var("m", 5)
    sal = lambda e: b.attr("salary", 5, 3, e)
    bumped = b.after(s0, b.modify(c, 3, b.plus(sal(c), b.atom(100))))
    guard = b.gt(b.at(bumped, sal(c)), b.at(s0, sal(mgr)))
    return guard


class TestExecutableExamples:
    def test_atomic_updates_executable(self):
        e = b.ftup_var("e", 5)
        assert is_executable(b.insert(e, "EMP"), [e])
        assert is_executable(b.delete(e, "EMP"), [e])
        assert is_executable(b.modify(e, 3, b.atom(0)), [e])

    def test_composition_executable(self):
        e = b.ftup_var("e", 5)
        tx = b.seq(b.delete(e, "EMP"), b.insert(e, "EMP"))
        assert is_executable(tx, [e])

    def test_foreach_executable(self):
        a = b.ftup_var("a", 3)
        tx = b.foreach(a, b.member(a, b.rel("ALLOC", 3)), b.delete(a, "ALLOC"))
        assert is_executable(tx)

    def test_cancel_project_executable(self):
        from repro.domains import make_domain

        d = make_domain()
        assert is_executable(d.cancel_project.body, d.cancel_project.params)

    def test_queries_executable(self):
        a = b.ftup_var("a", 3)
        q = b.setformer(b.select(a, 3), a, b.member(a, b.rel("ALLOC", 3)))
        assert is_executable(q)


class TestRejections:
    def test_paper_salary_example_rejected(self):
        guard = paper_counterexample()
        reasons = violations(guard)
        assert reasons, "the paper's counterexample must be rejected"
        assert any("situational" in r for r in reasons)

    def test_explanation_mentions_current_state(self):
        guard = paper_counterexample()
        report = explain_unexecutable(guard)
        assert "programs only access the current state" in report

    def test_eval_obj_rejected(self):
        s = b.state_var("s")
        e = b.ftup_var("e", 5)
        assert not is_executable(EvalObj(s, e))

    def test_eval_state_rejected(self):
        s = b.state_var("s")
        assert not is_executable(EvalState(s, b.identity()))

    def test_eval_bool_rejected(self):
        s = b.state_var("s")
        assert not is_executable(EvalBool(s, b.true()))

    def test_state_variable_rejected(self):
        s = b.state_var("s")
        assert any("named states" in r for r in violations(s))

    def test_state_constant_rejected(self):
        assert not is_executable(b.state_const("s0"))

    def test_undeclared_parameter_rejected(self):
        e = b.ftup_var("e", 5)
        reasons = violations(b.insert(e, "EMP"), params=[])
        assert any("not a parameter" in r for r in reasons)

    def test_check_program_raises_with_all_reasons(self):
        s = b.state_var("s")
        e = b.ftup_var("e", 5)
        bad = EvalObj(s, e)
        with pytest.raises(ExecutabilityError) as err:
            check_program(bad)
        assert "situational" in str(err.value)

    def test_executable_has_empty_explanation(self):
        e = b.ftup_var("e", 5)
        assert explain_unexecutable(b.insert(e, "EMP"), [e]) == ""

    def test_specification_power_retained(self):
        """The full situational language remains usable for specification —
        the counterexample is *expressible*, just not executable."""
        guard = paper_counterexample()
        from repro.logic.terms import Layer

        assert guard.layer is Layer.SITUATIONAL
