"""Checkability as a complexity measure (the paper's Section 5 direction)."""

import pytest

from repro.constraints import Window
from repro.constraints.hierarchy import (
    Reduction,
    cheapest_equivalent,
    compare,
    rank,
    spectrum,
)


class TestOrdering:
    def test_rank_total_order(self):
        assert rank(1) < rank(2) < rank(3)
        assert rank(99) < rank(Window.FULL_HISTORY) < rank(Window.UNCHECKABLE)

    def test_compare_static_cheaper_than_transaction(self, domain):
        assert compare(domain.every_employee_allocated(), domain.once_married()) == -1

    def test_compare_transaction_cheaper_than_dynamic(self, domain):
        assert compare(domain.once_married(), domain.never_rehire()) == -1

    def test_compare_equal(self, domain):
        assert compare(domain.once_married(), domain.skill_retention()) == 0

    def test_compare_symmetric(self, domain):
        assert compare(domain.never_rehire(), domain.once_married()) == 1


class TestSpectrum:
    def test_sorted_cheapest_first(self, domain):
        s = spectrum(domain.all_constraints)
        ranks = [rank(e.window) for e in s.entries]
        assert ranks == sorted(ranks)

    def test_partition(self, domain):
        s = spectrum(domain.all_constraints)
        assert len(s.bounded()) == 8       # 3 static + 5 transaction-windowed
        assert len(s.full_history()) == 2  # never-rehire, salary-never-same
        assert len(s.uncheckable()) == 2   # invertibility, no-eternal-project

    def test_max_window_none_with_unbounded(self, domain):
        s = spectrum(domain.all_constraints)
        assert s.max_window is None

    def test_max_window_of_bounded_set(self, domain):
        s = spectrum(domain.static_constraints + [domain.once_married(),
                                                  domain.salary_decrease_needs_dept_change()])
        assert s.max_window == 3

    def test_render(self, domain):
        text = str(spectrum(domain.static_constraints))
        assert "spectrum" in text and "1 state(s) suffices" in text


class TestReduction:
    def test_fire_encoding_reduces_never_rehire(self, domain):
        reduction = cheapest_equivalent(domain.never_rehire(), domain.fire_encoding())
        assert isinstance(reduction, Reduction)
        assert reduction.saved_from is Window.FULL_HISTORY
        assert reduction.saved_to == 1
        assert "FIRE" in str(reduction)

    def test_no_encoding_no_reduction(self, domain):
        assert cheapest_equivalent(domain.never_rehire()) is None

    def test_not_reported_when_not_cheaper(self, domain):
        # encoding a static constraint cannot make it cheaper than 1
        result = cheapest_equivalent(
            domain.every_employee_allocated(), domain.fire_encoding()
        )
        assert result is None
