"""Tracing: one span per interpreter step, attributed and bounded."""

from __future__ import annotations

import threading

import pytest

from repro.db import Schema, state_from_rows
from repro.logic import builder as b
from repro.obs import Span, Tracer
from repro.obs.trace import NULL_TRACER
from repro.transactions import Interpreter


@pytest.fixture()
def schema():
    s = Schema()
    s.add_relation("NUM", ("n", "tag"))
    s.add_relation("OUT", ("n",))
    return s


@pytest.fixture()
def state(schema):
    return state_from_rows(
        schema, {"NUM": [(1, "a"), (2, "b"), (3, "c")], "OUT": []}
    )


NUM = b.rel("NUM", 2)


def kinds(tracer):
    return [span.kind for span in tracer.spans()]


class TestSpanEmission:
    def test_sequence_emits_one_span_per_segment(self, state):
        tracer = Tracer()
        interp = Interpreter(tracer=tracer)
        put = b.seq(
            b.insert(b.mktuple(b.atom(7), b.atom("x")), "NUM"),
            b.insert(b.mktuple(b.atom(8), b.atom("y")), "NUM"),
        )
        interp.run(state, put)
        roots = tracer.roots()
        assert len(roots) == 1 and roots[0].kind == "seq"
        assert [c.kind for c in roots[0].children] == ["action", "action"]
        assert [c.label for c in roots[0].children] == ["insert2", "insert2"]

    def test_condition_span_labels_the_taken_branch(self, state):
        tracer = Tracer()
        interp = Interpreter(tracer=tracer)
        t = b.ftup_var("t", 2)
        guard = b.exists(t, b.member(t, NUM))
        interp.run(
            state,
            b.ifthen(guard, b.insert(b.mktuple(b.atom(9), b.atom("z")), "NUM")),
        )
        (root,) = tracer.roots()
        assert root.kind == "cond" and root.label == "cond[then]"
        interp.run(
            state,
            b.ifthen(
                b.lnot(guard),
                b.insert(b.mktuple(b.atom(9), b.atom("z")), "NUM"),
            ),
        )
        assert tracer.roots()[1].label == "cond[else]"

    def test_foreach_emits_one_span_per_iteration(self, state):
        tracer = Tracer()
        interp = Interpreter(tracer=tracer)
        t = b.ftup_var("t", 2)
        interp.run(state, b.foreach(t, b.member(t, NUM), b.delete(t, "NUM")))
        (root,) = tracer.roots()
        assert root.kind == "foreach" and root.label == "t"
        iters = [c for c in root.children if c.kind == "foreach-iter"]
        assert len(iters) == 3
        assert [c.label.split("=")[0] for c in iters] == [
            "t[0]", "t[1]", "t[2]",
        ]

    def test_action_spans_carry_touched_relations(self, state):
        tracer = Tracer()
        interp = Interpreter(tracer=tracer)
        interp.run(state, b.insert(b.mktuple(b.atom(7), b.atom("x")), "NUM"))
        (root,) = tracer.roots()
        assert root.kind == "action"
        assert "NUM" in root.touched
        # touched is sorted, so traces are hash-seed independent.
        assert list(root.touched) == sorted(root.touched)

    def test_versions_are_entry_state_allocators(self, state):
        tracer = Tracer()
        interp = Interpreter(tracer=tracer)
        interp.run(state, b.insert(b.mktuple(b.atom(7), b.atom("x")), "NUM"))
        (root,) = tracer.roots()
        assert root.version == state.next_tid


class TestDisabledPath:
    def test_none_tracer_emits_nothing(self, state):
        interp = Interpreter()
        assert interp.tracer is None
        interp.run(state, b.insert(b.mktuple(b.atom(7), b.atom("x")), "NUM"))

    def test_disabled_tracer_emits_nothing(self, state):
        tracer = Tracer(enabled=False)
        interp = Interpreter(tracer=tracer)
        interp.run(state, b.insert(b.mktuple(b.atom(7), b.atom("x")), "NUM"))
        assert tracer.roots() == () and tracer.span_count == 0

    def test_null_tracer_is_disabled(self):
        assert not NULL_TRACER.enabled


class TestSpanBudget:
    def test_max_spans_drops_and_counts(self, state):
        tracer = Tracer(max_spans=2)
        interp = Interpreter(tracer=tracer)
        t = b.ftup_var("t", 2)
        interp.run(state, b.foreach(t, b.member(t, NUM), b.delete(t, "NUM")))
        assert tracer.span_count == 2
        assert tracer.dropped > 0

    def test_start_returns_none_when_exhausted(self):
        tracer = Tracer(max_spans=1)
        first = tracer.start("seq", ";;", 0)
        second = tracer.start("seq", ";;", 0)
        assert first is not None and second is None
        tracer.finish(second)  # finishing a dropped span is a no-op
        tracer.finish(first)
        assert len(tracer.roots()) == 1 and tracer.dropped == 1

    def test_clear_resets_budget(self):
        tracer = Tracer(max_spans=1)
        tracer.finish(tracer.start("seq", ";;", 0))
        assert tracer.start("seq", ";;", 0) is None
        tracer.clear()
        assert tracer.roots() == () and tracer.dropped == 0
        assert tracer.start("seq", ";;", 0) is not None


class TestTracerMechanics:
    def test_nesting_and_self_duration(self):
        tracer = Tracer()
        outer = tracer.start("seq", ";;", 0)
        inner = tracer.start("action", "insert2", 0)
        tracer.finish(inner)
        tracer.finish(outer)
        (root,) = tracer.roots()
        assert root.children == [inner]
        assert root.duration >= inner.duration
        assert root.self_duration >= 0.0

    def test_touch_attributes_to_innermost_open_span(self):
        tracer = Tracer()
        outer = tracer.start("seq", ";;", 0)
        inner = tracer.start("action", "insert2", 0)
        tracer.touch(("B", "A"))
        tracer.finish(inner)
        tracer.finish(outer)
        assert inner.touched == ("A", "B")
        assert outer.touched == ()

    def test_touch_outside_any_span_is_ignored(self):
        Tracer().touch(("A",))  # must not raise

    def test_relabel_renames_innermost(self):
        tracer = Tracer()
        span = tracer.start("cond", "cond", 0)
        tracer.relabel("cond[then]")
        tracer.finish(span)
        assert tracer.roots()[0].label == "cond[then]"

    def test_threads_keep_separate_stacks(self):
        tracer = Tracer()
        ready = threading.Barrier(2)

        def trace(name):
            span = tracer.start("transaction", name, 0)
            ready.wait()  # both spans open simultaneously
            tracer.finish(span)

        threads = [
            threading.Thread(target=trace, args=(n,)) for n in ("t1", "t2")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(r.label for r in tracer.roots()) == ["t1", "t2"]
        assert all(r.children == [] for r in tracer.roots())


class TestSerialization:
    def test_doc_round_trip(self, state):
        tracer = Tracer()
        interp = Interpreter(tracer=tracer)
        t = b.ftup_var("t", 2)
        interp.run(state, b.foreach(t, b.member(t, NUM), b.delete(t, "NUM")))
        (root,) = tracer.roots()
        rebuilt = Span.from_doc(root.to_doc())
        # ``start`` is transient (not serialized); compare the documents.
        assert rebuilt.to_doc() == root.to_doc()
        assert [s.label for s in rebuilt.walk()] == [
            s.label for s in root.walk()
        ]

    def test_walk_is_preorder(self):
        leaf = Span("action", "a", 0)
        mid = Span("seq", ";;", 0, children=[leaf])
        root = Span("transaction", "t", 0, children=[mid])
        assert [s.label for s in root.walk()] == ["t", ";;", "a"]
