"""E10: the operational interpreter is a model of the T_L axioms.

Each property test instantiates an axiom schema of Section 2 over randomly
generated states and arguments and checks the two sides agree — the
"relational database is a model of the situational transaction theory" of
Definition 2, verified mechanically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Schema, state_from_rows
from repro.logic import builder as b
from repro.theory.axioms import arity_axioms, core_axioms, transaction_theory
from repro.transactions import Env, execute, evaluate, satisfies

from tests.conftest import employee_states


rows2 = st.lists(
    st.tuples(st.integers(0, 20), st.sampled_from("abcd")), min_size=0, max_size=6,
    unique_by=lambda r: r,
)


def make_state(rows):
    schema = Schema()
    schema.add_relation("R", ("n", "tag"))
    return state_from_rows(schema, {"R": [tuple(r) for r in rows]})


atomic_updates = st.sampled_from(["insert", "delete", "noop"])


def random_step(draw_value, draw_tag):
    return b.insert(b.mktuple(b.atom(draw_value), b.atom(draw_tag)), "R")


class TestFluentAlgebra:
    @given(rows2, st.integers(0, 20), st.integers(0, 20))
    @settings(max_examples=50, deadline=None)
    def test_composition_associativity(self, rows, v1, v2):
        """w;((s;;t);;u) == w;(s;;(t;;u))"""
        state = make_state(rows)
        s = b.insert(b.mktuple(b.atom(v1), b.atom("x")), "R")
        t = b.delete(b.mktuple(b.atom(v2), b.atom("a")), "R")
        u = b.insert(b.mktuple(b.atom(v1 + v2), b.atom("y")), "R")
        from repro.logic.fluents import Seq

        left = execute(state, Seq(Seq(s, t), u))
        right = execute(state, Seq(s, Seq(t, u)))
        assert left == right

    @given(rows2, st.integers(0, 20))
    @settings(max_examples=50, deadline=None)
    def test_identity_fluent(self, rows, v):
        """Λ;;s == s;;Λ == s (evaluated at any state)."""
        state = make_state(rows)
        s = b.insert(b.mktuple(b.atom(v), b.atom("x")), "R")
        from repro.logic.fluents import Seq

        direct = execute(state, s)
        assert execute(state, Seq(b.identity(), s)) == direct
        assert execute(state, Seq(s, b.identity())) == direct

    @given(rows2)
    @settings(max_examples=30, deadline=None)
    def test_identity_null(self, rows):
        state = make_state(rows)
        assert execute(state, b.identity()) == state

    @given(rows2, st.integers(0, 20), st.integers(0, 20))
    @settings(max_examples=50, deadline=None)
    def test_composition_linkage(self, rows, v1, v2):
        """w;(s;;t) == (w;s);t"""
        state = make_state(rows)
        s = b.insert(b.mktuple(b.atom(v1), b.atom("p")), "R")
        t = b.delete(b.mktuple(b.atom(v2), b.atom("p")), "R")
        from repro.logic.fluents import Seq

        assert execute(state, Seq(s, t)) == execute(execute(state, s), t)


class TestModifyAxioms:
    @given(rows2.filter(lambda r: len(r) >= 1), st.integers(1, 2), st.integers(0, 99))
    @settings(max_examples=60, deadline=None)
    def test_modify_action(self, rows, i, v):
        """select_n(t, i) after modify_n(t, i, v) == v."""
        state = make_state(rows)
        t_var = b.ftup_var("t", 2)
        target = next(iter(state.relation("R")))
        value = v if i == 1 else "z"
        env = Env({t_var: target})
        after = execute(state, b.modify(t_var, i, b.atom(value)), env)
        assert evaluate(after, b.select(t_var, i), env) == value

    @given(rows2.filter(lambda r: len(r) >= 2), st.integers(1, 2))
    @settings(max_examples=60, deadline=None)
    def test_modify_frame_other_tuple(self, rows, i):
        """Modifying t2 leaves every attribute of t1 != t2 unchanged."""
        state = make_state(rows)
        tuples = list(state.relation("R"))
        t1, t2 = tuples[0], tuples[1]
        v1, v2 = b.ftup_var("t1", 2), b.ftup_var("t2", 2)
        env = Env({v1: t1, v2: t2})
        value = 77 if i == 1 else "q"
        after = execute(state, b.modify(v2, i, b.atom(value)), env)
        for j in (1, 2):
            assert evaluate(after, b.select(v1, j), env) == t1.values[j - 1]

    @given(rows2.filter(lambda r: len(r) >= 1))
    @settings(max_examples=60, deadline=None)
    def test_modify_frame_other_position(self, rows):
        """Modifying position 1 leaves position 2 of the same tuple."""
        state = make_state(rows)
        target = next(iter(state.relation("R")))
        t_var = b.ftup_var("t", 2)
        env = Env({t_var: target})
        after = execute(state, b.modify(t_var, 1, b.atom(99)), env)
        assert evaluate(after, b.select(t_var, 2), env) == target.values[1]

    @given(rows2.filter(lambda r: len(r) >= 1), st.integers(0, 99))
    @settings(max_examples=60, deadline=None)
    def test_modify_preserves_identifier(self, rows, v):
        state = make_state(rows)
        target = next(iter(state.relation("R")))
        t_var = b.ftup_var("t", 2)
        env = Env({t_var: target})
        after = execute(state, b.modify(t_var, 1, b.atom(v)), env)
        assert evaluate(after, b.tuple_id(t_var), env) == target.tid


class TestInsertDeleteAxioms:
    @given(rows2, st.integers(0, 20), st.sampled_from("abcd"))
    @settings(max_examples=60, deadline=None)
    def test_insert_action(self, rows, n, tag):
        state = make_state(rows)
        t = b.mktuple(b.atom(n), b.atom(tag))
        after = execute(state, b.insert(t, "R"))
        assert satisfies(after, b.member(t, b.rel("R", 2)))

    @given(rows2, st.integers(0, 20), st.sampled_from("abcd"))
    @settings(max_examples=60, deadline=None)
    def test_delete_action(self, rows, n, tag):
        state = make_state(rows)
        t = b.mktuple(b.atom(n), b.atom(tag))
        after = execute(state, b.delete(t, "R"))
        assert not satisfies(after, b.member(t, b.rel("R", 2)))

    @given(rows2.filter(lambda r: len(r) >= 2), st.integers(0, 20))
    @settings(max_examples=60, deadline=None)
    def test_delete_frame(self, rows, n):
        """Deleting one tuple keeps every other tuple."""
        state = make_state(rows)
        tuples = list(state.relation("R"))
        victim, survivor = tuples[0], tuples[1]
        v_var = b.ftup_var("v", 2)
        after = execute(state, b.delete(v_var, "R"), Env({v_var: victim}))
        s_var = b.ftup_var("s", 2)
        assert satisfies(after, b.member(s_var, b.rel("R", 2)), Env({s_var: survivor}))

    @given(rows2, st.integers(0, 20), st.sampled_from("abcd"))
    @settings(max_examples=40, deadline=None)
    def test_insert_frame_other_relation(self, rows, n, tag):
        schema = Schema()
        schema.add_relation("R", ("n", "tag"))
        schema.add_relation("S", ("x",))
        state = state_from_rows(schema, {"R": [tuple(r) for r in rows], "S": [("k",)]})
        after = execute(state, b.insert(b.mktuple(b.atom(n), b.atom(tag)), "R"))
        assert after.relation("S") == state.relation("S")
        assert after.relations["S"] is state.relations["S"]  # shared, not copied

    @given(rows2)
    @settings(max_examples=40, deadline=None)
    def test_assign_action(self, rows):
        """w;assign(R2, R) : R2 == w:R."""
        state = make_state(rows)
        after = execute(state, b.assign(b.rel_id("R2", 2), b.rel("R", 2)))
        left = evaluate(after, b.rel("R2", 2))
        right = evaluate(state, b.rel("R", 2))
        assert left.elements == right.elements


class TestAxiomInventory:
    def test_core_axioms_enumerate(self):
        names = {a.name for a in core_axioms()}
        assert {"composition-associativity", "identity-fluent", "composition-linkage"} <= names

    def test_arity_axioms_include_modify(self):
        names = {a.name for a in arity_axioms(5)}
        assert "modify-action[5]" in names and "modify-frame[5]" in names

    def test_transaction_theory_for_schema(self):
        from repro.domains import make_domain

        theory = transaction_theory(make_domain().schema)
        groups = {a.group for a in theory}
        assert groups == {"fluent-algebra", "linkage", "action", "frame"}
        # per-relation action/frame instances present
        names = {a.name for a in theory}
        assert "insert-action[EMP]" in names
        assert "delete-frame[ALLOC]" in names
        assert "insert-frame[EMP/ALLOC]" in names

    def test_axioms_are_closed_situational_formulas(self):
        from repro.domains import make_domain
        from repro.logic.terms import Layer

        for axiom in transaction_theory(make_domain().schema):
            assert not axiom.formula.free_vars(), axiom.name
            assert axiom.formula.layer is Layer.SITUATIONAL, axiom.name
