"""The database engine: enforcement, rollback, windows, encodings."""

import pytest

from repro.errors import CheckabilityError, ConstraintViolation
from repro.engine import Database


@pytest.fixture()
def db(domain):
    domain.install_constraints(
        "every-employee-allocated",
        "alloc-references-project",
        "allocation-within-limit",
        "once-married",
        "skill-retention",
    )
    return Database(domain.schema, window=2, initial=domain.sample_state())


class TestEnforcement:
    def test_valid_transaction_advances(self, domain, db):
        before = db.current
        db.execute(domain.set_salary, "alice", 150)
        assert db.current != before
        assert len(db.records) == 1 and db.records[0].ok

    def test_violation_rolls_back(self, domain, db):
        before = db.current
        with pytest.raises(ConstraintViolation) as err:
            db.execute(domain.hire, "eve", "cs", 90, 25, "S")  # unallocated
        assert "every-employee-allocated" in str(err.value)
        assert db.current == before

    def test_try_execute_reports(self, domain, db):
        ok, state = db.try_execute(domain.hire, "eve", "cs", 90, 25, "S")
        assert not ok and state == db.current
        ok2, _ = db.try_execute(domain.set_salary, "alice", 130)
        assert ok2

    def test_transaction_constraint_checked_across_window(self, domain, db):
        from repro.logic import builder as b
        from repro.transactions import transaction

        e = domain.emp.var("e")
        cond = b.land(
            b.member(e, domain.emp.rel()),
            b.eq(domain.emp.attr("e-name", e), b.atom("alice")),
        )
        age_and_single = transaction(
            "age-and-single",
            (),
            b.foreach(
                e,
                cond,
                b.seq(
                    b.modify(
                        e,
                        domain.emp.attr_index("age"),
                        b.plus(domain.emp.attr("age", e), b.atom(1)),
                    ),
                    b.modify(e, domain.emp.attr_index("m-status"), b.atom("S")),
                ),
            ),
        )
        # alice is married in the sample state; aging her while making her
        # single in one transition violates once-married
        with pytest.raises(ConstraintViolation):
            db.execute(age_and_single, label="bad")

    def test_graph_records_transitions(self, domain, db):
        db.execute(domain.set_salary, "alice", 150)
        db.execute(domain.birthday, "bob")
        assert db.graph is not None
        assert db.graph.edge_count() == 2


class TestWindows:
    def test_constraint_needing_more_history_is_skipped(self, domain):
        domain.schema.add_constraint(domain.salary_decrease_needs_dept_change())
        db = Database(domain.schema, window=2, initial=domain.sample_state())
        db.execute(domain.set_salary, "alice", 150)
        skipped = db.records[0].skipped
        assert any(s.constraint.name == "salary-decrease-needs-dept-change" for s in skipped)

    def test_strict_mode_raises_instead(self, domain):
        domain.schema.add_constraint(domain.salary_decrease_needs_dept_change())
        db = Database(
            domain.schema, window=2, initial=domain.sample_state(), strict=True
        )
        with pytest.raises(CheckabilityError):
            db.execute(domain.set_salary, "alice", 150)

    def test_wide_window_checks_it(self, domain):
        domain.schema.add_constraint(domain.salary_decrease_needs_dept_change())
        db = Database(domain.schema, window=3, initial=domain.sample_state())
        db.execute(domain.set_salary, "alice", 150)
        assert not db.records[0].skipped
        with pytest.raises(ConstraintViolation):
            db.execute(domain.set_salary, "alice", 100)

    def test_uncheckable_skipped_with_reason(self, domain):
        domain.schema.add_constraint(domain.invertibility())
        db = Database(domain.schema, window=2, initial=domain.sample_state())
        db.execute(domain.set_salary, "alice", 150)
        (skip,) = db.records[0].skipped
        assert "not checkable" in skip.reason

    def test_unbounded_window_checks_full_history_constraints(self, domain):
        domain.schema.add_constraint(domain.never_rehire())
        db = Database(domain.schema, window=None, initial=domain.sample_state())
        db.execute(domain.fire, "dan")
        with pytest.raises(ConstraintViolation):
            db.execute(domain.hire, "dan", "cs", 95, 31, "S")


class TestEncodings:
    def test_fire_encoding_via_engine(self, domain):
        enc = domain.fire_encoding()
        db = Database(domain.schema, window=2, initial=domain.sample_state())
        db.register_encoding(enc)
        domain.schema.add_constraint(enc.static_constraint())
        db.execute(domain.fire, "dan")
        assert {t.values for t in db.current.relation("FIRE")} == {("dan",)}
        with pytest.raises(ConstraintViolation):
            db.execute(domain.hire, "dan", "ee", 90, 31, "S")

    def test_encoding_makes_two_window_sufficient(self, domain):
        """E4's crossover: with the encoding, a 2-state window catches what
        otherwise needs the complete history."""
        enc = domain.fire_encoding()
        db = Database(domain.schema, window=2, initial=domain.sample_state())
        db.register_encoding(enc)
        domain.schema.add_constraint(enc.static_constraint())
        db.execute(domain.fire, "dan")
        db.execute(domain.birthday, "alice")
        db.execute(domain.birthday, "bob")  # firing long out of the window
        with pytest.raises(ConstraintViolation):
            db.execute(domain.hire, "dan", "ee", 90, 31, "S")


class TestQueries:
    def test_query_through_engine(self, domain, db):
        from repro.logic import builder as b
        from repro.transactions import query

        a = domain.alloc.var("a")
        q = query(
            "allocs-of",
            (b.atom_var("n"),),
            b.setformer(
                domain.alloc.attr("perc", a),
                a,
                b.land(
                    b.member(a, domain.alloc.rel()),
                    b.eq(domain.alloc.attr("a-emp", a), b.atom_var("n")),
                ),
            ),
        )
        result = db.query(q, "alice")
        assert sorted(result.first_column()) == [40, 60]


class TestEncodingGraphConsistency:
    def test_register_encoding_records_replacement_in_graph(self, domain):
        """Registering an encoding mid-run replaces history.states[-1]; the
        evolution graph must record that replacement instead of silently
        diverging from the history."""
        db = Database(domain.schema, window=2, initial=domain.sample_state())
        start = db.current
        db.execute(domain.set_salary, "alice", 150)
        pre_registration = db.current
        db.register_encoding(domain.fire_encoding())
        prepared = db.current

        assert prepared != pre_registration  # the FIRE relation was added
        assert prepared in db.graph.states()
        labels = [
            t.label for t in db.graph.direct_transitions_from(pre_registration)
        ]
        assert "register-encoding:FIRE" in labels
        assert db.graph.reachable(start, prepared)

        # Subsequent executions chain off the prepared node.
        db.execute(domain.fire, "dan")
        assert db.graph.reachable(prepared, db.current)

    def test_register_encoding_on_fresh_db_stays_consistent(self, domain):
        db = Database(domain.schema, window=2, initial=domain.sample_state())
        db.register_encoding(domain.fire_encoding())
        assert db.current in db.graph.states()
        assert db.history.current == db.current


class TestLazyCandidate:
    def test_no_candidate_copy_without_checkable_constraints(self, domain, monkeypatch):
        """A constraint-free execution must not fork the history window."""
        from repro.db.evolution import History

        db = Database(domain.schema, window=2, initial=domain.sample_state())

        def explode(self):
            raise AssertionError("history forked on a check-free execution")

        monkeypatch.setattr(History, "fork", explode)
        db.execute(domain.set_salary, "alice", 150)
        assert len(db.history) == 2

    def test_trusted_constraints_skip_candidate_copy(self, domain, monkeypatch):
        from repro.db.evolution import History

        domain.schema.add_constraint(domain.once_married())
        db = Database(domain.schema, window=2, initial=domain.sample_state())
        db.trust("once-married", "set-salary")

        def explode(self):
            raise AssertionError("history forked despite full trust")

        monkeypatch.setattr(History, "fork", explode)
        db.execute(domain.set_salary, "alice", 150)
        (skip,) = db.records[0].skipped
        assert "verified preserved" in skip.reason

    def test_candidate_forked_once_when_checking(self, domain, monkeypatch):
        from repro.db.evolution import History

        domain.install_constraints(
            "every-employee-allocated", "alloc-references-project"
        )
        db = Database(domain.schema, window=2, initial=domain.sample_state())
        forks = []
        original = History.fork

        def counting(self):
            forks.append(1)
            return original(self)

        monkeypatch.setattr(History, "fork", counting)
        db.execute(domain.set_salary, "alice", 150)
        assert len(forks) == 1  # one fork serves every checked constraint
        assert db.records[0].ok and len(db.records[0].results) == 2
