"""E4: the FIRE-relation history encoding (Example 4)."""

import pytest

from repro.constraints import check_state
from repro.constraints.history import HistoryEncoding
from repro.db import Schema, state_from_rows


class TestRecording:
    def test_deleted_key_logged(self, domain, sample_state):
        enc = domain.fire_encoding()
        before = enc.prepare_state(sample_state)
        after = domain.fire.run(before, "dan")
        logged = enc.record(before, after)
        fire = logged.relation("FIRE")
        assert {t.values for t in fire} == {("dan",)}

    def test_modification_not_logged(self, domain, sample_state):
        enc = domain.fire_encoding()
        before = enc.prepare_state(sample_state)
        after = domain.set_salary.run(before, "alice", 999)
        logged = enc.record(before, after)
        assert len(logged.relation("FIRE")) == 0

    def test_multiple_firings_accumulate(self, domain, sample_state):
        enc = domain.fire_encoding()
        s = enc.prepare_state(sample_state)
        s1 = enc.record(s, domain.fire.run(s, "dan"))
        s2 = enc.record(s1, domain.fire.run(s1, "bob"))
        assert {t.values for t in s2.relation("FIRE")} == {("dan",), ("bob",)}

    def test_record_is_idempotent_per_transition(self, domain, sample_state):
        enc = domain.fire_encoding()
        s = enc.prepare_state(sample_state)
        after = domain.fire.run(s, "dan")
        once = enc.record(s, after)
        twice = enc.record(s, after)  # same endpoints, set semantics
        assert once.relation("FIRE") == twice.relation("FIRE")


class TestStaticReplacement:
    def test_rehire_violates_static_constraint(self, domain, sample_state):
        enc = domain.fire_encoding()
        c = enc.static_constraint()
        s = enc.prepare_state(sample_state)
        s1 = enc.record(s, domain.fire.run(s, "dan"))
        assert check_state(c, s1).ok
        s2 = domain.hire.run(s1, "dan", "cs", 95, 31, "S")
        assert not check_state(c, s2).ok

    def test_fresh_hire_passes(self, domain, sample_state):
        enc = domain.fire_encoding()
        c = enc.static_constraint()
        s = enc.prepare_state(sample_state)
        s1 = enc.record(s, domain.fire.run(s, "dan"))
        s2 = domain.hire.run(s1, "erin", "cs", 95, 31, "S")
        assert check_state(c, s2).ok

    def test_constraint_is_static_and_one_window(self, domain):
        from repro.constraints import ConstraintKind, analyze

        c = domain.fire_excludes_emp()
        assert c.kind is ConstraintKind.STATIC
        assert analyze(c).window == 1


class TestSchemaIntegration:
    def test_extend_schema_adds_log(self, domain):
        enc = domain.fire_encoding()
        enc.extend_schema(domain.schema)
        assert "FIRE" in domain.schema
        enc.extend_schema(domain.schema)  # idempotent

    def test_generic_encoding_other_relation(self):
        schema = Schema()
        proj = schema.add_relation("PROJ", ("p-name", "t-alloc"))
        enc = HistoryEncoding(proj, "CANCELLED", "p-name")
        state = state_from_rows(schema, {"PROJ": [("db", 100)]})
        state = enc.prepare_state(state)
        after = state.delete_tuple("PROJ", next(iter(state.relation("PROJ"))))
        logged = enc.record(state, after)
        assert {t.values for t in logged.relation("CANCELLED")} == {("db",)}

    def test_key_index_resolution(self, domain):
        assert domain.fire_encoding().key_index == 1
