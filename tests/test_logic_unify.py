"""Sorted unification and matching."""

import pytest

from repro.logic import builder as b
from repro.logic.formulas import Forall
from repro.logic.terms import RelConst
from repro.logic.unify import alpha_equal, match, unify


EMP = RelConst("EMP", 5)


class TestUnify:
    def test_var_binds_constant(self):
        x = b.atom_var("x")
        s = unify(x, b.atom(3))
        assert s is not None and s.apply(x) == b.atom(3)

    def test_symmetric(self):
        x = b.atom_var("x")
        s = unify(b.atom(3), x)
        assert s is not None and s.apply(x) == b.atom(3)

    def test_structural(self):
        x, y = b.atom_var("x"), b.atom_var("y")
        s = unify(b.plus(x, b.atom(2)), b.plus(b.atom(1), y))
        assert s is not None
        assert s.apply(b.plus(x, b.atom(2))) == b.plus(b.atom(1), b.atom(2))

    def test_clash_fails(self):
        assert unify(b.atom(1), b.atom(2)) is None

    def test_different_heads_fail(self):
        x, y = b.atom_var("x"), b.atom_var("y")
        assert unify(b.plus(x, y), b.times(x, y)) is None

    def test_occurs_check(self):
        x = b.atom_var("x")
        assert unify(x, b.plus(x, b.atom(1))) is None

    def test_var_var_chain(self):
        x, y = b.atom_var("x"), b.atom_var("y")
        s = unify(b.plus(x, y), b.plus(y, b.atom(3)))
        assert s is not None
        assert s.apply(x) == b.atom(3) and s.apply(y) == b.atom(3)

    def test_sort_mismatch_fails(self):
        x = b.atom_var("x")
        e = b.ftup_var("e", 2)
        assert unify(b.eq(x, x), b.eq(e, e)) is None

    def test_layer_mismatch_fails(self):
        e_fluent = b.ftup_var("e", 5)
        e_sit = b.stup_var("q", 5)
        assert unify(e_fluent, e_sit) is None

    def test_fluent_var_binds_either(self):
        e = b.ftup_var("e", 5)
        s = unify(b.member(e, EMP), b.member(b.mktuple(b.atom(1), b.atom(2), b.atom(3), b.atom(4), b.atom(5)), EMP))
        assert s is not None

    def test_binders_unify_only_alpha_equal(self):
        e = b.ftup_var("e", 5)
        q = b.ftup_var("q", 5)
        f1 = Forall(e, b.member(e, EMP))
        f2 = Forall(q, b.member(q, EMP))
        assert unify(f1, f2) is not None  # alpha-equal

    def test_unify_applies_existing_subst(self):
        x, y = b.atom_var("x"), b.atom_var("y")
        s1 = unify(x, b.atom(1))
        s2 = unify(y, x, s1)
        assert s2 is not None and s2.apply(y) == b.atom(1)


class TestMatch:
    def test_pattern_vars_bind(self):
        x = b.atom_var("x")
        s = match(b.plus(x, b.atom(1)), b.plus(b.atom(5), b.atom(1)))
        assert s is not None and s.apply(x) == b.atom(5)

    def test_target_vars_are_constants(self):
        x, y = b.atom_var("x"), b.atom_var("y")
        # pattern x cannot force target var y to bind anything
        s = match(b.plus(b.atom(1), x), b.plus(y, b.atom(2)))
        assert s is None

    def test_consistent_repeated_var(self):
        x = b.atom_var("x")
        assert match(b.plus(x, x), b.plus(b.atom(1), b.atom(1))) is not None
        assert match(b.plus(x, x), b.plus(b.atom(1), b.atom(2))) is None

    def test_match_target_var_to_pattern_var(self):
        x = b.atom_var("x")
        y = b.atom_var("y")
        s = match(b.plus(x, b.atom(1)), b.plus(y, b.atom(1)))
        assert s is not None and s.apply(x) == y


class TestAlphaEqual:
    def test_renamed_binder(self):
        e, q = b.ftup_var("e", 5), b.ftup_var("q", 5)
        assert alpha_equal(Forall(e, b.member(e, EMP)), Forall(q, b.member(q, EMP)))

    def test_different_bodies_not_equal(self):
        e, q = b.ftup_var("e", 5), b.ftup_var("q", 5)
        other = RelConst("DEPT", 5)
        assert not alpha_equal(Forall(e, b.member(e, EMP)), Forall(q, b.member(q, other)))

    def test_free_vars_must_match_exactly(self):
        e, q = b.ftup_var("e", 5), b.ftup_var("q", 5)
        assert not alpha_equal(b.member(e, EMP), b.member(q, EMP))

    def test_nested_binders(self):
        e, q = b.ftup_var("e", 5), b.ftup_var("q", 5)
        a, c = b.ftup_var("a", 3), b.ftup_var("c", 3)
        ALLOC = RelConst("ALLOC", 3)
        f1 = Forall(e, b.exists(a, b.land(b.member(e, EMP), b.member(a, ALLOC))))
        f2 = Forall(q, b.exists(c, b.land(b.member(q, EMP), b.member(c, ALLOC))))
        assert alpha_equal(f1, f2)

    def test_binder_sort_must_match(self):
        e = b.ftup_var("e", 5)
        a = b.ftup_var("a", 3)
        f1 = Forall(e, b.true())
        f2 = Forall(a, b.true())
        assert not alpha_equal(f1, f2)
