"""Prover data structures: literals, clauses, answers."""

from repro.logic import builder as b
from repro.logic.formulas import Pred
from repro.logic.sorts import ATOM
from repro.logic.substitution import Substitution
from repro.logic.symbols import PredicateSymbol
from repro.prover.clauses import Answer, Clause, Literal, clause, negative, positive


P = PredicateSymbol("p", (ATOM,))


def p(x):
    return Pred(P, (x,))


class TestLiterals:
    def test_negation(self):
        lit = positive(p(b.atom(1)))
        assert lit.negate() == negative(p(b.atom(1)))
        assert lit.negate().negate() == lit

    def test_apply(self):
        x = b.atom_var("x")
        lit = positive(p(x))
        result = lit.apply(Substitution({x: b.atom(3)}))
        assert result.atom == p(b.atom(3))

    def test_weight(self):
        assert positive(p(b.atom(1))).weight() == 2


class TestClauses:
    def test_empty_clause(self):
        assert clause().is_empty
        assert str(clause()) == "⊥"

    def test_dedupe(self):
        lit = positive(p(b.atom(1)))
        c = Clause((lit, lit)).dedupe()
        assert len(c.literals) == 1

    def test_tautology_detection(self):
        lit = positive(p(b.atom(1)))
        assert Clause((lit, lit.negate())).is_tautology()
        assert not Clause((lit,)).is_tautology()

    def test_without(self):
        a, c = positive(p(b.atom(1))), positive(p(b.atom(2)))
        assert Clause((a, c)).without(0) == (c,)

    def test_free_vars(self):
        x = b.atom_var("x")
        c = Clause((positive(p(x)),))
        assert c.free_vars() == frozenset({x})

    def test_rename_apart(self):
        x = b.atom_var("x")
        c = Clause((positive(p(x)),))
        renamed = c.rename_apart_from(frozenset({x}))
        assert x not in renamed.free_vars()
        same = c.rename_apart_from(frozenset())
        assert same is c

    def test_syntactic_subsumption(self):
        a, c = positive(p(b.atom(1))), positive(p(b.atom(2)))
        assert Clause((a,)).subsumes_syntactically(Clause((a, c)))
        assert not Clause((a, c)).subsumes_syntactically(Clause((a,)))

    def test_apply_threads_answers(self):
        x = b.atom_var("x")
        c = Clause((positive(p(x)),), (Answer(((x, x),)),))
        result = c.apply(Substitution({x: b.atom(7)}))
        ((var, expr),) = result.answers[0].bindings
        assert expr == b.atom(7)

    def test_render_with_answers(self):
        x = b.atom_var("x")
        c = Clause((positive(p(x)),), (Answer(((x, b.atom(5)),)),))
        text = str(c)
        assert "ans(" in text and "p(" in text
