"""E9: schema verification as finite consistency (model finding)."""

import pytest

from repro.constraints import constraint as mk
from repro.logic import builder as b
from repro.prover import ModelFinder


class TestValidStateSearch:
    def test_empty_state_often_suffices(self, domain):
        finder = ModelFinder(domain.schema)
        state, tried = finder.find_valid_state(domain.static_constraints)
        assert state is not None
        assert tried == 1  # the empty state vacuously satisfies Example 1

    def test_seed_state_used(self, domain, sample_state):
        finder = ModelFinder(domain.schema, seed_states=[sample_state])
        state, _ = finder.find_valid_state(domain.static_constraints)
        assert state is not None

    def test_unsatisfiable_schema_detected(self, domain):
        s = b.state_var("s")
        e = domain.emp.var("e")
        must_have_emp = mk(
            "emp-nonempty",
            b.forall(s, b.holds(s, b.exists(e, b.member(e, domain.emp.rel())))),
        )
        must_be_empty = mk(
            "emp-empty",
            b.forall(s, b.holds(s, b.lnot(b.exists(e, b.member(e, domain.emp.rel()))))),
        )
        finder = ModelFinder(domain.schema, max_candidates=30)
        state, tried = finder.find_valid_state([must_have_emp, must_be_empty])
        assert state is None and tried == 30


class TestSchemaVerification:
    def test_employee_schema_consistent(self, domain, sample_state):
        """E9: the full schema (static + dynamic constraints) has a model."""
        finder = ModelFinder(
            domain.schema,
            seed_states=[sample_state],
            transactions=[
                (domain.birthday, ("alice",)),
                (domain.add_skill, ("bob", 9)),
            ],
        )
        witness = finder.verify_schema(
            domain.static_constraints
            + [domain.once_married(), domain.skill_retention()]
        )
        assert witness.consistent
        assert "once-married" in witness.satisfied
        assert "skill-retention" in witness.satisfied

    def test_dynamic_constraints_do_not_change_verdict(self, domain, sample_state):
        """The paper: 'taking dynamic constraints into consideration does
        not increase the complexity of schema verification' — same witness
        machinery, same candidate count."""
        finder_static = ModelFinder(domain.schema, seed_states=[sample_state])
        w1 = finder_static.verify_schema(domain.static_constraints)
        finder_full = ModelFinder(
            domain.schema,
            seed_states=[sample_state],
            transactions=[(domain.birthday, ("alice",))],
        )
        w2 = finder_full.verify_schema(
            domain.static_constraints + [domain.once_married()]
        )
        assert w1.consistent and w2.consistent
        assert w1.candidates_tried == w2.candidates_tried

    def test_witness_renders(self, domain):
        finder = ModelFinder(domain.schema)
        witness = finder.verify_schema(domain.static_constraints)
        assert "consistent" in str(witness)

    def test_failed_witness_renders(self, domain):
        s = b.state_var("s")
        e = domain.emp.var("e")
        must_have_emp = mk(
            "emp-nonempty",
            b.forall(s, b.holds(s, b.exists(e, b.member(e, domain.emp.rel())))),
        )
        # every generated employee row gets a dept that is a bare atom;
        # require an employee AND forbid every employee: unsatisfiable
        must_be_empty = mk(
            "emp-empty",
            b.forall(s, b.holds(s, b.lnot(b.exists(e, b.member(e, domain.emp.rel()))))),
        )
        finder = ModelFinder(domain.schema, max_candidates=10)
        witness = finder.verify_schema([must_have_emp, must_be_empty])
        assert not witness.consistent
        assert "no witness" in str(witness)
