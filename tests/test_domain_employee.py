"""The employee domain object itself: schema shape, transactions, bundles."""

import pytest

from repro.errors import SchemaError
from repro.constraints import check_state
from repro.transactions import is_executable


class TestSchemaShape:
    def test_relations_match_the_paper(self, domain):
        assert set(domain.schema.relations) == {
            "EMP", "DEPT", "PROJ", "ALLOC", "SKILL"
        }
        assert domain.emp.attributes == (
            "e-name", "e-dept", "salary", "age", "m-status"
        )
        assert domain.alloc.attributes == ("a-emp", "a-proj", "perc")

    def test_constraint_bundles(self, domain):
        assert len(domain.static_constraints) == 3
        assert len(domain.transaction_constraints) == 5
        assert len(domain.dynamic_constraints) == 4
        names = {c.name for c in domain.all_constraints}
        assert len(names) == 12

    def test_install_all(self, domain):
        domain.install_constraints()
        assert len(domain.schema.constraints) == 12

    def test_install_subset(self, domain):
        domain.install_constraints("once-married", "skill-retention")
        assert {c.name for c in domain.schema.constraints} == {
            "once-married", "skill-retention"
        }

    def test_double_install_rejected(self, domain):
        domain.install_constraints("once-married")
        with pytest.raises(SchemaError):
            domain.install_constraints("once-married")

    def test_sample_state_is_valid(self, domain, sample_state):
        for c in domain.static_constraints:
            assert check_state(c, sample_state).ok, c.name


class TestTransactions:
    def test_all_paper_transactions_executable(self, domain):
        for tx in (
            domain.hire, domain.fire, domain.allocate, domain.deallocate,
            domain.add_skill, domain.create_project, domain.create_dept,
            domain.marry, domain.birthday, domain.set_salary,
            domain.transfer, domain.cancel_project,
        ):
            assert tx.is_transaction
            assert is_executable(tx.body, tx.params), tx.name

    def test_hire_then_fire_roundtrip(self, domain, sample_state):
        s1 = domain.hire.run(sample_state, "zed", "cs", 50, 20, "S")
        s2 = domain.fire.run(s1, "zed")
        assert {t.values for t in s2.relation("EMP")} == {
            t.values for t in sample_state.relation("EMP")
        }

    def test_fire_cascades_allocations_and_skills(self, domain, sample_state):
        s1 = domain.fire.run(sample_state, "alice")
        assert not any(t.values[0] == "alice" for t in s1.relation("ALLOC"))
        assert not any(t.values[0] == "alice" for t in s1.relation("SKILL"))

    def test_birthday_increments_age(self, domain, sample_state):
        s1 = domain.birthday.run(sample_state, "bob")
        bob = next(t for t in s1.relation("EMP") if t.values[0] == "bob")
        assert bob.values[3] == 29

    def test_transfer_changes_dept_and_salary(self, domain, sample_state):
        s1 = domain.transfer.run(sample_state, "bob", "ee", 90)
        bob = next(t for t in s1.relation("EMP") if t.values[0] == "bob")
        assert bob.values[1] == "ee" and bob.values[2] == 90

    def test_deallocate_is_selective(self, domain, sample_state):
        s1 = domain.deallocate.run(sample_state, "alice", "db")
        alice_allocs = [t for t in s1.relation("ALLOC") if t.values[0] == "alice"]
        assert [t.values[1] for t in alice_allocs] == ["ai"]

    def test_unknown_employee_is_noop(self, domain, sample_state):
        assert domain.set_salary.run(sample_state, "ghost", 1) == sample_state

    def test_employed_helper(self, domain, sample_state):
        from repro.logic import builder as b
        from repro.transactions import satisfies

        assert satisfies(sample_state, domain.employed(b.atom("alice")))
        assert not satisfies(sample_state, domain.employed(b.atom("ghost")))
