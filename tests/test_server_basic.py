"""The transaction server end-to-end: handshake, execute/query/batch,
request validation, and the observability mirror.

Each test drives a real loopback server with the synchronous client; raw
sockets appear only where the client refuses to misbehave (bad protocol
version, requests before the handshake).
"""

from __future__ import annotations

import socket
import time

import pytest

from repro import Client, Database, TransactionServer
from repro.db.values import TupleSet
from repro.errors import ConstraintViolation, ExecutabilityError, SortError
from repro.logic import builder as b
from repro.server.protocol import FrameDecoder, encode_message
from repro.transactions.program import query


def make_programs(domain):
    return [
        domain.hire,
        domain.allocate,
        domain.create_project,
        query("headcount", (), b.size_of(b.rel("EMP", 5))),
        query("employees", (), b.rel("EMP", 5)),
    ]


@pytest.fixture()
def served(domain):
    db = Database(domain.schema, initial=domain.sample_state())
    server = TransactionServer(db, make_programs(domain), workers=4)
    server.start()
    yield server
    server.close()


@pytest.fixture()
def client(served):
    with Client(*served.address) as c:
        yield c


def raw_exchange(address, docs, timeout=5.0):
    """Speak raw frames; return (decoded replies, saw_eof)."""
    sock = socket.create_connection(address, timeout=timeout)
    try:
        for doc in docs:
            sock.sendall(encode_message(doc))
        decoder = FrameDecoder()
        replies: list[dict] = []
        saw_eof = False
        while True:
            try:
                data = sock.recv(65536)
            except socket.timeout:
                break
            if not data:
                saw_eof = True
                break
            replies.extend(decoder.feed(data))
        return replies, saw_eof
    finally:
        sock.close()


class TestHandshake:
    def test_welcome_carries_the_catalog(self, client):
        assert client.welcome["type"] == "WELCOME"
        programs = client.programs
        assert programs["hire"]["kind"] == "transaction"
        assert programs["hire"]["params"] == [
            "name", "dept", "salary", "age", "status",
        ]
        assert programs["headcount"]["kind"] == "query"
        assert set(client.relations) == {"EMP", "DEPT", "PROJ", "ALLOC", "SKILL"}
        assert client.relations["PROJ"] == ["p-name", "t-alloc"]

    def test_version_mismatch_is_a_typed_refusal(self, served):
        replies, saw_eof = raw_exchange(
            served.address,
            [{"type": "HELLO", "id": 1, "version": 999, "tenant": "default"}],
        )
        assert saw_eof
        [reply] = replies
        assert reply["type"] == "ERROR"
        assert reply["error"]["kind"] == "protocol-error"
        assert "version" in reply["error"]["message"]

    def test_requests_require_the_handshake_first(self, served):
        replies, saw_eof = raw_exchange(
            served.address,
            [{"type": "EXECUTE", "id": 1, "program": "hire", "args": []}],
        )
        assert saw_eof
        [reply] = replies
        assert reply["error"]["kind"] == "protocol-error"
        assert "handshake" in reply["error"]["message"]


class TestRequests:
    def test_execute_commits_and_queries_see_it(self, client):
        before = client.query("headcount")
        result = client.execute("hire", "erin", "cs", 90, 25, "S")
        assert result.ok and result.seq >= 1
        assert client.query("headcount") == before + 1

    def test_query_returns_typed_values_with_tids(self, client):
        emps = client.query("employees")
        assert isinstance(emps, TupleSet)
        names = {t.values[0] for t in emps}
        assert "alice" in names
        assert all(isinstance(t.tid, int) for t in emps)

    def test_unknown_program_is_typed(self, client):
        with pytest.raises(ExecutabilityError, match="unknown program"):
            client.execute("promote", "alice")

    def test_kind_mismatch_is_typed(self, client):
        with pytest.raises(ExecutabilityError, match="query, not a transaction"):
            client.execute("headcount")
        with pytest.raises(ExecutabilityError, match="transaction, not a query"):
            client.query("hire", "x", "cs", 1, 1, "S")

    def test_non_atom_arguments_are_refused(self, client):
        with pytest.raises(SortError):
            client.execute("hire", "erin", "cs", 90.5, 25, "S")

    def test_batch_reports_per_item_results(self, client):
        results = client.batch(
            [
                ("create-project", "atlas", 100),
                ("create-project", "borei", 100),
                ("promote", "alice"),  # unknown: fails alone
                ("create-project", "ceres", 100),
            ]
        )
        assert len(results) == 4
        assert results[0].ok and results[1].ok and results[3].ok
        assert isinstance(results[2], ExecutabilityError)
        assert len({r.seq for r in results if hasattr(r, "seq")}) == 3

    def test_pipelined_requests_resolve_out_of_order(self, client):
        pendings = [
            client.submit("create-project", f"p{i}", 10) for i in range(4)
        ]
        # Resolve in reverse submission order: correlation is by id.
        results = [p.result() for p in reversed(pendings)]
        assert all(r.ok for r in results)
        assert len({r.seq for r in results}) == 4

    def test_duplicate_request_id_is_a_protocol_error(self, served):
        hello = {"type": "HELLO", "id": 1, "version": 1, "tenant": "default"}
        twice = {"type": "QUERY", "id": 7, "program": "headcount", "args": []}
        replies, _ = raw_exchange(served.address, [hello, twice, twice])
        errors = [r for r in replies if r["type"] == "ERROR"]
        assert any(
            "already in flight" in e["error"]["message"] for e in errors
        )


class TestConstraints:
    def test_violations_come_back_typed_never_partial(self, domain):
        domain.install_constraints("alloc-references-project")
        db = Database(domain.schema, initial=domain.sample_state())
        with TransactionServer(db, make_programs(domain)) as server:
            with Client(*server.address) as c:
                before = c.query("headcount")
                with pytest.raises(ConstraintViolation) as info:
                    c.execute("allocate", "alice", "no-such-project", 10)
                assert info.value.constraint_name == "alloc-references-project"
                # Refused means refused: nothing advanced.
                assert c.query("headcount") == before


class TestObservability:
    def test_server_metrics_mirror_requests(self, served, client):
        client.execute("hire", "erin", "cs", 90, 25, "S")
        client.query("headcount")
        metrics = served.database.metrics
        assert (
            metrics.counter(
                "repro_server_requests_total",
                type="EXECUTE", tenant="default", status="ok",
            ).value >= 1
        )
        assert (
            metrics.counter(
                "repro_server_requests_total",
                type="QUERY", tenant="default", status="ok",
            ).value >= 1
        )
        assert metrics.counter("repro_server_bytes_in_total").value > 0
        assert metrics.counter("repro_server_bytes_out_total").value > 0
        assert (
            metrics.histogram(
                "repro_server_latency_seconds", type="EXECUTE"
            ).count >= 1
        )
        assert metrics.gauge("repro_server_connections").value >= 1

    def test_connection_gauge_returns_to_zero(self, served):
        with Client(*served.address) as c:
            c.query("headcount")
        deadline_gauge = served.database.metrics.gauge(
            "repro_server_connections"
        )
        # The server handles the disconnect asynchronously; poll briefly.
        for _ in range(100):
            if deadline_gauge.value == 0:
                break
            time.sleep(0.01)
        assert deadline_gauge.value == 0

    def test_requests_record_spans_in_the_profile(self, served, client):
        with served.database.profile() as prof:
            client.execute("hire", "frank", "ee", 80, 31, "S")
            client.query("headcount")
        tracer = prof.tracer
        kinds = {(s.kind, s.label) for s in tracer.spans()}
        assert ("request", "execute:hire") in kinds
        assert ("request", "query:headcount") in kinds
