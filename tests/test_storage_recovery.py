"""Crash recovery: the prefix property under exhaustive fault injection.

The acceptance property for the durability subsystem: for a journaled
workload, killing the process at **every** journal byte prefix (which covers
every record boundary and every torn-write offset) and flipping bits inside
written frames, ``Store.recover()`` always returns a state equal to some
prefix of the committed run — and a clean shutdown recovers the exact final
state, allocator included.
"""

from __future__ import annotations

import os

import pytest

from repro import Database, Schema, transaction
from repro.concurrent.log import states_equivalent
from repro.errors import ConstraintViolation, ReproError
from repro.logic import builder as b
from repro.storage import Store, state_digest
from repro.storage import faults
from repro.storage.store import JOURNAL_NAME


# CI's crash-recovery matrix runs this suite under both sync policies: the
# prefix property must hold whether appends are fsynced or OS-buffered.
SYNC = os.environ.get("REPRO_SYNC_POLICY", "commit")


def put_schema(relations: int = 2) -> Schema:
    schema = Schema()
    for i in range(relations):
        schema.add_relation(f"R{i}", ("k", "v"))
    return schema


def put_programs(relations: int = 2):
    x, y = b.atom_var("x"), b.atom_var("y")
    return [
        transaction(f"put{i}", (x, y), b.insert(b.mktuple(x, y), f"R{i}"))
        for i in range(relations)
    ]


def exact(a, b) -> bool:
    """Content equality including the allocator (stronger than ==)."""
    return a == b and a.next_tid == b.next_tid


@pytest.fixture()
def serial_run(tmp_path):
    """A serial durable workload; returns (store path, committed states)."""
    schema = put_schema()
    programs = put_programs()
    db = Database(schema, window=2)
    db.durable(tmp_path / "store", checkpoint_every=100, sync=SYNC)
    states = [db.current]
    for i in range(8):
        states.append(db.execute(programs[i % 2], f"k{i}", i))
    db.close()
    return tmp_path / "store", states


class TestCrashInjection:
    def test_every_byte_prefix_recovers_a_committed_prefix(
        self, serial_run, tmp_path
    ):
        """Exhaustive: one simulated kill per journal byte offset."""
        store_path, states = serial_run
        digests = [state_digest(s) for s in states]
        boundaries = set(faults.record_boundaries(store_path))
        seen_seqs = set()
        for fault in faults.iter_crashes(
            store_path, tmp_path / "crashes", stride=1
        ):
            recovery = fault.store().recover()
            assert 0 <= recovery.seq < len(states)
            assert exact(recovery.state, states[recovery.seq]), fault.offset
            assert state_digest(recovery.state) == digests[recovery.seq]
            # A kill exactly on a record boundary is a clean journal; a torn
            # offset is detected and reported.  Offset 0 is the zero-length
            # file the writer leaves before the header reaches disk — an
            # *empty* journal, not a torn one.
            assert recovery.clean == (
                fault.offset in boundaries or fault.offset == 0
            )
            seen_seqs.add(recovery.seq)
        # Every prefix length was actually exercised.
        assert seen_seqs == set(range(len(states)))

    def test_torn_offsets_lose_at_most_the_torn_record(
        self, serial_run, tmp_path
    ):
        store_path, states = serial_run
        boundaries = faults.record_boundaries(store_path)
        for offset in faults.torn_points(store_path, stride=7):
            fault = faults.crashed_copy(store_path, offset, tmp_path / "torn")
            recovery = fault.store().recover()
            # boundaries[0] is the end of the file header; a kill before it
            # leaves zero replayable frames.
            complete_frames = max(0, sum(1 for p in boundaries if p <= offset) - 1)
            assert recovery.seq == complete_frames
            assert exact(recovery.state, states[recovery.seq])

    def test_bit_flips_never_escape_the_prefix_chain(
        self, serial_run, tmp_path
    ):
        store_path, states = serial_run
        size = faults.journal_size(store_path)
        for fault in faults.iter_bit_flips(
            store_path, tmp_path / "flips", range(3, size * 8, 251)
        ):
            recovery = fault.store().recover()
            assert exact(recovery.state, states[recovery.seq]), fault.offset

    def test_clean_shutdown_recovers_exact_final_state(self, serial_run):
        store_path, states = serial_run
        recovery = Store(store_path).recover()
        assert recovery.clean
        assert recovery.seq == len(states) - 1
        assert exact(recovery.state, states[-1])


class TestDegenerateStores:
    """The two edge shapes a crash can leave behind: a zero-length journal
    (the writer created the file but the header never hit disk) and a
    snapshot-only store (checkpoint truncation finished but the fresh
    journal never appeared)."""

    def test_zero_length_journal_recovers_clean(self, tmp_path, tiny_state):
        store = Store(tmp_path / "store")
        store.initialize(tiny_state)
        store.close()
        open(os.path.join(tmp_path / "store", JOURNAL_NAME), "wb").close()
        recovery = Store(tmp_path / "store").recover()
        assert recovery.clean
        assert recovery.seq == 0 and recovery.replayed == ()
        assert exact(recovery.state, tiny_state)

    def test_zero_length_journal_after_commits(self, serial_run, tmp_path):
        # A crash-truncated-to-zero journal after a checkpoint: recovery is
        # the checkpoint itself, reported clean (the journal is empty, not
        # torn).
        store_path, states = serial_run
        fault = faults.crashed_copy(store_path, 0, tmp_path / "zeroed")
        assert os.path.getsize(
            os.path.join(fault.path, JOURNAL_NAME)
        ) == 0
        recovery = fault.store().recover()
        assert recovery.clean and recovery.reason == "empty journal file"
        assert exact(recovery.state, states[recovery.seq])

    def test_snapshot_only_store_recovers_clean(self, serial_run):
        # Delete the journal entirely: exactly what checkpoint truncation's
        # rename window can leave. The newest snapshot is the whole truth.
        store_path, states = serial_run
        newest_seq, _ = Store(store_path).snapshot_files()[0]
        os.remove(os.path.join(store_path, JOURNAL_NAME))
        recovery = Store(store_path).recover()
        assert recovery.clean
        assert recovery.seq == newest_seq and recovery.replayed == ()
        assert exact(recovery.state, states[newest_seq])

    def test_fresh_initialized_store_recovers_clean(self, tmp_path, tiny_state):
        store = Store(tmp_path / "store")
        store.initialize(tiny_state)
        recovery = Store(tmp_path / "store").recover()
        assert recovery.clean and recovery.seq == 0
        assert exact(recovery.state, tiny_state)


class TestCheckpointRecovery:
    def test_checkpoints_truncate_and_recover(self, tmp_path):
        schema = put_schema()
        programs = put_programs()
        db = Database(schema, window=2)
        db.durable(tmp_path / "store", checkpoint_every=3, sync=SYNC)
        states = [db.current]
        for i in range(10):
            states.append(db.execute(programs[i % 2], f"k{i}", i))
        db.close()
        store = Store(tmp_path / "store", checkpoint_every=3)
        # Journal only holds the records after the last checkpoint (seq 9).
        from repro.storage.journal import read_journal

        tail = read_journal(store.journal_path).records
        assert [r.seq for r in tail] == [10]
        recovery = store.recover()
        assert recovery.snapshot_seq == 9 and recovery.seq == 10
        assert exact(recovery.state, states[-1])

    def test_corrupt_latest_snapshot_falls_back(self, tmp_path):
        schema = put_schema()
        programs = put_programs()
        db = Database(schema, window=2)
        db.durable(tmp_path / "store", checkpoint_every=4, sync=SYNC)
        states = [db.current]
        for i in range(9):
            states.append(db.execute(programs[i % 2], f"k{i}", i))
        db.close()
        store = Store(tmp_path / "store")
        (newest_seq, newest_path), *_ = store.snapshot_files()
        fault = faults.flip_bit(
            tmp_path / "store",
            200 * 8,
            tmp_path / "snapfault",
            filename=f"snap-{newest_seq:012d}.ckpt",
        )
        recovery = fault.store().recover()
        # Fallback to the older snapshot; the truncated journal cannot bridge
        # the gap, so recovery reports the shortened prefix honestly.
        assert not recovery.clean
        assert recovery.seq < newest_seq or exact(
            recovery.state, states[recovery.seq]
        )
        assert exact(recovery.state, states[recovery.seq])

    def test_all_snapshots_corrupt_raises(self, tmp_path):
        schema = put_schema()
        db = Database(schema, window=2)
        db.durable(tmp_path / "store", sync=SYNC)
        db.close()
        store_path = tmp_path / "store"
        fault = faults.flip_bit(
            store_path, 150 * 8, tmp_path / "dead",
            filename="snap-000000000000.ckpt",
        )
        with pytest.raises(ReproError):
            fault.store().recover()


class TestConcurrentDurability:
    def test_concurrent_workload_journal_matches_commit_log(self, tmp_path):
        """Journaled through TransactionManager: every crash point recovers
        a state equivalent to a prefix of CommitLog.replay_states."""
        schema = put_schema(4)
        programs = put_programs(4)
        db = Database(schema, window=2)
        db.durable(tmp_path / "store", checkpoint_every=100, sync=SYNC)
        with db.concurrent(workers=4, seed=11) as mgr:
            outcomes = mgr.run_all(
                [(programs[i % 4], i, i) for i in range(16)],
                think_time=0.001,
            )
            assert all(o.ok for o in outcomes)
            replayed = mgr.log.replay_states(
                mgr.initial,
                interpreter=db.interpreter,
                encodings=db.encodings,
            )
        db.close()
        # The journal's logical layer mirrors the commit log's serial order.
        from repro.storage.journal import read_journal

        records = read_journal(
            Store(tmp_path / "store").journal_path
        ).records
        assert [r.label for r in records] == list(mgr.log.serial_order())
        assert [r.seq for r in records] == [
            rec.seq for rec in mgr.log.records()
        ]
        # Crash at record boundaries plus sampled torn offsets.
        offsets = set(faults.record_boundaries(tmp_path / "store"))
        offsets.update(faults.torn_points(tmp_path / "store", stride=31))
        for offset in sorted(offsets):
            fault = faults.crashed_copy(
                tmp_path / "store", offset, tmp_path / "crashes"
            )
            recovery = fault.store().recover()
            assert states_equivalent(
                mgr.initial, recovery.state, replayed[recovery.seq]
            ), offset
        final = Store(tmp_path / "store").recover()
        assert exact(final.state, db.current)

    def test_constraint_violation_never_reaches_disk(self, tmp_path, domain):
        domain.install_constraints()
        db = Database(domain.schema, window=2, initial=domain.sample_state())
        db.durable(tmp_path / "store", sync=SYNC)
        before = db.current
        with pytest.raises(ConstraintViolation):
            db.execute(domain.hire, "zed", "cs", 100, 30, "S")
        db.close()
        recovery = Store(tmp_path / "store").recover()
        assert recovery.seq == 0 and recovery.state == before


class TestAttachResume:
    def test_from_store_resumes_sequence(self, tmp_path):
        schema = put_schema()
        programs = put_programs()
        db = Database(schema, window=2)
        db.durable(tmp_path / "store", checkpoint_every=3, sync=SYNC)
        for i in range(5):
            db.execute(programs[i % 2], f"k{i}", i)
        db.close()
        db2, recovery = Database.from_store(
            schema, tmp_path / "store", window=2, checkpoint_every=3
        )
        assert recovery.seq == 5 and exact(db2.current, db.current)
        db2.execute(programs[0], "late", 99)
        db2.close()
        resumed = Store(tmp_path / "store").recover()
        assert resumed.seq == 6
        assert exact(resumed.state, db2.current)

    def test_durable_rejects_mismatched_store(self, tmp_path):
        schema = put_schema()
        programs = put_programs()
        db = Database(schema, window=2)
        db.durable(tmp_path / "store", sync=SYNC)
        db.execute(programs[0], "k", 1)
        db.close()
        fresh = Database(schema, window=2)
        with pytest.raises(ReproError):
            fresh.durable(tmp_path / "store")

    def test_initialize_twice_rejected(self, tmp_path, tiny_state):
        store = Store(tmp_path / "store")
        store.initialize(tiny_state)
        with pytest.raises(ReproError):
            store.initialize(tiny_state)
        store.close()
