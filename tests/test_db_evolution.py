"""Evolution graphs and histories: the paper's Section 1 properties."""

import pytest

from repro.errors import CheckabilityError
from repro.db import Schema, History, EvolutionGraph, chain_graph, state_from_rows
from repro.db.evolution import Transition


@pytest.fixture()
def states():
    schema = Schema()
    schema.add_relation("R", ("a",))
    return [
        state_from_rows(schema, {"R": [(i,) for i in range(n)]}) for n in (1, 2, 3, 4)
    ]


class TestTransition:
    def test_null_transition_applies_anywhere(self, states):
        null = Transition(())
        assert null.apply(states[0]) == states[0]
        assert null.apply(states[2]) == states[2]
        assert null.is_null and null.label == "Λ"

    def test_transition_partial(self, states):
        tr = Transition((("t", states[0], states[1]),))
        assert tr.apply(states[0]) == states[1]
        assert tr.apply(states[2]) is None

    def test_composition(self, states):
        t1 = Transition((("t1", states[0], states[1]),))
        t2 = Transition((("t2", states[1], states[2]),))
        composed = t1.then(t2)
        assert composed is not None
        assert composed.apply(states[0]) == states[2]
        assert len(composed) == 2

    def test_composition_endpoint_mismatch(self, states):
        t1 = Transition((("t1", states[0], states[1]),))
        t3 = Transition((("t3", states[2], states[3]),))
        assert t1.then(t3) is None

    def test_null_is_identity_of_composition(self, states):
        t1 = Transition((("t1", states[0], states[1]),))
        null = Transition(())
        assert t1.then(null) == t1
        assert null.then(t1) == t1


class TestEvolutionGraph:
    def test_reflexive(self, states):
        """Property (3): every state reaches itself via Λ."""
        g = chain_graph(states)
        transitions = list(g.transitions_from(states[0]))
        assert any(t.is_null for t in transitions)

    def test_transitive(self, states):
        """Property (3): composite transitions are enumerated."""
        g = chain_graph(states)
        targets = {t.target() for t in g.transitions_from(states[0]) if not t.is_null}
        assert targets == {states[1], states[2], states[3]}

    def test_multigraph(self, states):
        """Property (2): two transactions may connect the same states."""
        g = EvolutionGraph()
        g.add_transition(states[0], states[1], "tx-a")
        g.add_transition(states[0], states[1], "tx-b")
        labels = {t.label for t in g.direct_transitions_from(states[0])}
        assert labels == {"tx-a", "tx-b"}

    def test_not_complete(self, states):
        """Property (1): unrelated states are unreachable."""
        g = EvolutionGraph()
        g.add_state(states[0])
        g.add_state(states[2])
        assert not g.reachable(states[0], states[2])
        assert g.reachable(states[0], states[0])  # reflexively

    def test_max_length_bounds_enumeration(self, states):
        g = chain_graph(states)
        short = [t for t in g.transitions_from(states[0], max_length=1) if not t.is_null]
        assert {t.target() for t in short} == {states[1]}

    def test_cyclic_graph_requires_bound(self, states):
        g = EvolutionGraph()
        g.add_transition(states[0], states[1], "go")
        g.add_transition(states[1], states[0], "back")
        with pytest.raises(CheckabilityError):
            list(g.transitions_from(states[0]))
        bounded = list(g.transitions_from(states[0], max_length=4))
        assert len(bounded) >= 4


class TestHistory:
    def test_window_drops_old_states(self, states):
        h = History(window=2)
        h.start(states[0])
        for s in states[1:]:
            h.advance(s)
        assert h.states == states[-2:]
        assert h.current == states[-1]

    def test_unbounded_keeps_everything(self, states):
        h = History(window=None)
        h.start(states[0])
        for s in states[1:]:
            h.advance(s)
        assert len(h) == 4

    def test_window_must_be_positive(self):
        with pytest.raises(CheckabilityError):
            History(window=0)

    def test_empty_history_has_no_current(self):
        with pytest.raises(CheckabilityError):
            History().current

    def test_double_start_rejected(self, states):
        h = History()
        h.start(states[0])
        with pytest.raises(CheckabilityError):
            h.start(states[1])

    def test_to_graph_is_chain(self, states):
        h = History()
        h.start(states[0])
        h.advance(states[1], "tx1")
        h.advance(states[2], "tx2")
        g = h.to_graph()
        assert len(g) == 3 and g.edge_count() == 2

    def test_transition_between(self, states):
        h = History()
        h.start(states[0])
        h.advance(states[1], "a")
        h.advance(states[2], "b")
        tr = h.transition_between(states[0], states[2])
        assert tr is not None and tr.label == "a ;; b"
        assert h.transition_between(states[2], states[0]) is None

    def test_labels_follow_window(self, states):
        h = History(window=2)
        h.start(states[0])
        h.advance(states[1], "a")
        h.advance(states[2], "b")
        assert h.labels == ["b"]
