"""Atoms, tuples with identifiers, and value sets."""

import pytest

from repro.errors import EvaluationError, SortError
from repro.db.values import DBTuple, RelationId, TupleSet, check_atom, make_tuple


class TestAtoms:
    def test_naturals_and_strings_accepted(self):
        assert check_atom(0) == 0
        assert check_atom("alice") == "alice"

    def test_negative_rejected(self):
        with pytest.raises(SortError):
            check_atom(-1)

    def test_bool_rejected(self):
        with pytest.raises(SortError):
            check_atom(True)

    def test_float_rejected(self):
        with pytest.raises(SortError):
            check_atom(1.5)


class TestDBTuple:
    def test_fresh_tuple_has_no_id(self):
        t = make_tuple("alice", 100)
        assert t.tid is None and t.arity == 2

    def test_select_is_one_based(self):
        t = make_tuple("alice", 100)
        assert t.select(1) == "alice" and t.select(2) == 100

    def test_select_out_of_range(self):
        t = make_tuple("alice")
        with pytest.raises(EvaluationError):
            t.select(2)
        with pytest.raises(EvaluationError):
            t.select(0)

    def test_with_value_keeps_identifier(self):
        t = DBTuple(7, ("alice", 100))
        t2 = t.with_value(2, 110)
        assert t2.tid == 7 and t2.values == ("alice", 110)
        assert t.values == ("alice", 100)  # immutable

    def test_identifier_of_fresh_tuple_fails(self):
        with pytest.raises(EvaluationError):
            make_tuple("x").identifier()

    def test_identifier(self):
        assert DBTuple(3, ("x",)).identifier() == 3


class TestTupleSet:
    def test_value_semantics_collapse_duplicates(self):
        a = DBTuple(1, ("x", 1))
        b = DBTuple(2, ("x", 1))  # same values, different id
        s = TupleSet.of(2, [a, b])
        assert len(s) == 1

    def test_arity_checked(self):
        with pytest.raises(SortError):
            TupleSet.of(2, [make_tuple("x")])

    def test_union_intersect_difference(self):
        s1 = TupleSet.of(1, [make_tuple("a"), make_tuple("b")])
        s2 = TupleSet.of(1, [make_tuple("b"), make_tuple("c")])
        assert len(s1.union(s2)) == 3
        assert len(s1.intersect(s2)) == 1
        assert len(s1.difference(s2)) == 1

    def test_product(self):
        s1 = TupleSet.of(1, [make_tuple("a"), make_tuple("b")])
        s2 = TupleSet.of(2, [make_tuple(1, 2)])
        p = s1.product(s2)
        assert p.arity == 3 and len(p) == 2

    def test_subset(self):
        s1 = TupleSet.of(1, [make_tuple("a")])
        s2 = TupleSet.of(1, [make_tuple("a"), make_tuple("b")])
        assert s1.is_subset(s2) and not s2.is_subset(s1)

    def test_empty(self):
        assert len(TupleSet.empty(3)) == 0

    def test_mixed_arity_operations_rejected(self):
        s1 = TupleSet.of(1, [make_tuple("a")])
        s2 = TupleSet.of(2, [make_tuple("a", "b")])
        with pytest.raises(SortError):
            s1.union(s2)

    def test_first_column(self):
        s = TupleSet.of(2, [make_tuple(10, "x"), make_tuple(20, "y")])
        assert sorted(s.first_column()) == [10, 20]

    def test_contains_by_value(self):
        s = TupleSet.of(1, [DBTuple(5, ("a",))])
        assert s.contains(make_tuple("a"))
        assert not s.contains(make_tuple("b"))


class TestRelationId:
    def test_str(self):
        assert str(RelationId("EMP", 5)) == "EMP"

    def test_equality(self):
        assert RelationId("EMP", 5) == RelationId("EMP", 5)
        assert RelationId("EMP", 5) != RelationId("EMP", 4)
