"""Canonical serialization, digests, and physical deltas."""

from __future__ import annotations

import pytest

from repro.db.state import State, state_from_rows
from repro.db.values import DBTuple
from repro.storage.serialize import (
    SerializationError,
    apply_delta,
    decode_args,
    doc_to_state,
    encode_args,
    state_bytes,
    state_delta,
    state_digest,
    state_to_doc,
)


def same_content(a: State, b: State) -> bool:
    """Exact content equality: relations, identifiers, and allocator."""
    return a == b and a.next_tid == b.next_tid and dict(a.owner) == dict(b.owner)


class TestCanonicalSerialization:
    def test_roundtrip_preserves_content(self, tiny_state):
        rebuilt = doc_to_state(state_to_doc(tiny_state))
        assert same_content(rebuilt, tiny_state)

    def test_bytes_deterministic_across_construction_orders(self, tiny_schema):
        a = state_from_rows(tiny_schema, {"R": [(1, 2), (3, 4)], "S": []})
        # Same tuples inserted in a different relation order.
        b = State()
        b = b.create_relation("S", 3)
        b = b.create_relation("R", 2)
        b, _ = b.insert_tuple("R", DBTuple(1, (1, 2)))
        b, _ = b.insert_tuple("R", DBTuple(2, (3, 4)))
        b = State(b.relations, b.owner, a.next_tid)
        assert state_bytes(a) == state_bytes(b)
        assert state_digest(a) == state_digest(b)

    def test_digest_is_stable_hex_and_content_sensitive(self, tiny_state):
        d = state_digest(tiny_state)
        assert len(d) == 64 and int(d, 16) >= 0
        changed = tiny_state.delete_tuple(
            "R", next(iter(tiny_state.relation("R")))
        )
        assert state_digest(changed) != d

    def test_digest_distinguishes_next_tid(self, tiny_state):
        bumped = State(
            tiny_state.relations, tiny_state.owner, tiny_state.next_tid + 1
        )
        assert bumped == tiny_state  # == ignores the allocator
        assert state_digest(bumped) != state_digest(tiny_state)

    def test_state_digest_method_agrees(self, tiny_state):
        assert tiny_state.digest() == state_digest(tiny_state)

    def test_malformed_document_raises(self):
        with pytest.raises(SerializationError):
            doc_to_state({"relations": {"R": {"arity": 2, "rows": [[1, [1]]]}}})
        with pytest.raises(SerializationError):
            doc_to_state({"next_tid": 1})


class TestDelta:
    def test_insert_delete_modify_roundtrip(self, tiny_state):
        after = tiny_state
        after, _ = after.insert_tuple("R", DBTuple(None, (9, 9)))
        victim = next(iter(after.relation("S")))
        after = after.delete_tuple("S", victim)
        target = next(iter(after.relation("R")))
        after = after.modify_tuple(target, 2, 77)
        delta = state_delta(tiny_state, after)
        assert same_content(apply_delta(tiny_state, delta), after)

    def test_relation_creation_and_drop(self, tiny_state):
        created = tiny_state.create_relation("NEW", 1)
        created, _ = created.insert_tuple("NEW", DBTuple(None, (5,)))
        delta = state_delta(tiny_state, created)
        assert same_content(apply_delta(tiny_state, delta), created)
        # And the reverse direction drops the relation again.
        back = state_delta(created, tiny_state)
        assert same_content(apply_delta(created, back), tiny_state)

    def test_empty_delta_is_identity(self, tiny_state):
        delta = state_delta(tiny_state, tiny_state)
        assert delta["changes"] == {} and not delta["created"]
        assert same_content(apply_delta(tiny_state, delta), tiny_state)

    def test_assign_style_rewrite(self, tiny_state):
        from repro.db.values import TupleSet

        replacement = TupleSet.of(
            2, [DBTuple(None, (8, 8)), next(iter(tiny_state.relation("R")))]
        )
        rewritten = tiny_state.assign_relation("R", 2, replacement)
        delta = state_delta(tiny_state, rewritten)
        assert same_content(apply_delta(tiny_state, delta), rewritten)


class TestArgsEncoding:
    def test_atoms_pass_through(self):
        assert decode_args(encode_args(("alice", 7))) == ("alice", 7)

    def test_tuples_roundtrip_values(self):
        (decoded,) = decode_args(encode_args((DBTuple(3, (1, "x")),)))
        assert isinstance(decoded, DBTuple) and decoded.values == (1, "x")

    def test_unknown_values_degrade_to_repr(self):
        (decoded,) = decode_args(encode_args(([1, 2],)))
        assert decoded == repr([1, 2])
