"""Capture-avoiding substitution — the s[e/x] of the iteration fluent."""

import pytest

from repro.errors import SortError
from repro.logic import builder as b
from repro.logic.formulas import Exists, Forall
from repro.logic.fluents import Foreach, SetFormer
from repro.logic.substitution import (
    Substitution,
    fresh_var,
    rename_apart,
    substitute,
)
from repro.logic.terms import RelConst


EMP = RelConst("EMP", 5)


class TestBasicSubstitution:
    def test_replaces_free_var(self):
        x = b.atom_var("x")
        assert substitute(b.plus(x, b.atom(1)), x, b.atom(5)) == b.plus(
            b.atom(5), b.atom(1)
        )

    def test_sort_mismatch_rejected(self):
        x = b.atom_var("x")
        with pytest.raises(SortError):
            Substitution({x: b.ftup_var("e", 2)})

    def test_identity_on_unrelated(self):
        x, y = b.atom_var("x"), b.atom_var("y")
        expr = b.plus(y, b.atom(1))
        assert substitute(expr, x, b.atom(5)) == expr

    def test_empty_substitution_is_noop(self):
        expr = b.plus(b.atom_var("x"), b.atom(1))
        assert Substitution({}).apply(expr) is expr

    def test_simultaneous(self):
        x, y = b.atom_var("x"), b.atom_var("y")
        s = Substitution({x: y, y: b.atom(1)})
        # simultaneous: x -> y (not further rewritten), y -> 1
        assert s.apply(b.plus(x, y)) == b.plus(y, b.atom(1))


class TestCaptureAvoidance:
    def test_bound_variable_untouched(self):
        e = b.ftup_var("e", 5)
        f = Forall(e, b.member(e, EMP))
        assert substitute(f, e, b.ftup_var("q", 5)) == f

    def test_binder_renamed_to_avoid_capture(self):
        e = b.ftup_var("e", 5)
        q = b.ftup_var("q", 5)
        # forall e. (e in EMP and q in EMP); substitute q := e
        f = Forall(e, b.land(b.member(e, EMP), b.member(q, EMP)))
        result = substitute(f, q, e)
        assert isinstance(result, Forall)
        assert result.var != e  # renamed
        # the substituted occurrence must be the *free* e
        inner = result.body
        assert e in inner.free_vars() | {v for sub in inner.iter_subnodes() for v in [sub] if False} or e in inner.free_vars()

    def test_foreach_binder_protected(self):
        a = b.ftup_var("a", 3)
        v = b.atom_var("v")
        body = Foreach(a, b.member(a, RelConst("ALLOC", 3)), b.delete(a, "ALLOC"))
        assert substitute(body, a, b.ftup_var("c", 3)) == body
        replaced = substitute(
            Foreach(
                a,
                b.land(b.member(a, RelConst("ALLOC", 3)), b.eq(b.attr("perc", 3, 3, a), v)),
                b.delete(a, "ALLOC"),
            ),
            v,
            b.atom(7),
        )
        assert v not in replaced.free_vars()

    def test_setformer_binder_protected(self):
        a = b.ftup_var("a", 3)
        former = SetFormer(a, (a,), b.member(a, RelConst("ALLOC", 3)))
        assert substitute(former, a, b.ftup_var("c", 3)) == former

    def test_exists_capture_avoided(self):
        x, y = b.atom_var("x"), b.atom_var("y")
        f = Exists(x, b.lt(x, y))
        result = substitute(f, y, x)
        assert isinstance(result, Exists)
        assert result.var.name != "x" or result.var != x
        # new bound var must not capture the substituted x
        assert x in result.body.free_vars()


class TestSubstitutionAlgebra:
    def test_compose_order(self):
        x, y = b.atom_var("x"), b.atom_var("y")
        first = Substitution({x: y})
        second = Substitution({y: b.atom(3)})
        composed = first.compose(second)
        assert composed.apply(x) == b.atom(3)

    def test_restrict_and_without(self):
        x, y = b.atom_var("x"), b.atom_var("y")
        s = Substitution({x: b.atom(1), y: b.atom(2)})
        assert s.restrict([x]).domain() == frozenset({x})
        assert s.without([x]).domain() == frozenset({y})

    def test_extend(self):
        x, y = b.atom_var("x"), b.atom_var("y")
        s = Substitution({x: b.atom(1)}).extend(y, b.atom(2))
        assert len(s) == 2

    def test_range_free_vars(self):
        x, y = b.atom_var("x"), b.atom_var("y")
        s = Substitution({x: b.plus(y, b.atom(1))})
        assert s.range_free_vars() == frozenset({y})


class TestFreshAndRename:
    def test_fresh_var_preserves_sort_and_layer(self):
        e = b.ftup_var("e", 5)
        f = fresh_var(e)
        assert f.sort == e.sort and f.var_layer == e.var_layer and f != e

    def test_fresh_vars_distinct(self):
        e = b.ftup_var("e", 5)
        assert fresh_var(e) != fresh_var(e)

    def test_rename_apart(self):
        x = b.atom_var("x")
        expr = b.plus(x, b.atom(1))
        renamed, renaming = rename_apart(expr, frozenset({x}))
        assert x not in renamed.free_vars()
        assert renaming.get(x) is not None

    def test_rename_apart_no_clash_is_identity(self):
        x = b.atom_var("x")
        expr = b.plus(x, b.atom(1))
        renamed, renaming = rename_apart(expr, frozenset())
        assert renamed is expr and not renaming
