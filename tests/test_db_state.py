"""Immutable states: persistence, identifier allocation, sharing."""

import pytest

from repro.errors import EvaluationError, SchemaError
from repro.db import DBTuple, Schema, State, initial_state, make_tuple, state_from_rows
from repro.db.values import TupleSet


@pytest.fixture()
def schema():
    s = Schema()
    s.add_relation("R", ("a", "b"))
    s.add_relation("S", ("x",))
    return s


@pytest.fixture()
def state(schema):
    return state_from_rows(schema, {"R": [(1, 2), (3, 4)], "S": [("p",)]})


class TestConstruction:
    def test_initial_state_has_all_relations_empty(self, schema):
        s0 = initial_state(schema)
        assert s0.relation("R").arity == 2 and len(s0.relation("R")) == 0

    def test_state_from_rows_allocates_ids(self, state):
        tids = sorted(t.tid for t in state.relation("R"))
        assert tids == [1, 2]

    def test_missing_relation_raises(self, state):
        with pytest.raises(EvaluationError):
            state.relation("T")


class TestInsert:
    def test_insert_returns_new_state(self, state):
        s2, t = state.insert_tuple("R", make_tuple(5, 6))
        assert len(s2.relation("R")) == 3
        assert len(state.relation("R")) == 2  # original untouched
        assert t.tid is not None

    def test_insert_shares_unchanged_relations(self, state):
        s2, _ = state.insert_tuple("R", make_tuple(5, 6))
        assert s2.relations["S"] is state.relations["S"]

    def test_set_semantics_insert_idempotent(self, state):
        s2, _ = state.insert_tuple("R", make_tuple(1, 2))
        assert s2 == state

    def test_arity_mismatch_rejected(self, state):
        with pytest.raises(SchemaError):
            state.insert_tuple("R", make_tuple(1))

    def test_owner_tracks_insertion(self, state):
        s2, t = state.insert_tuple("R", make_tuple(5, 6))
        assert s2.owner_of(t.tid) == "R"


class TestDelete:
    def test_delete_by_value(self, state):
        s2 = state.delete_tuple("R", make_tuple(1, 2))
        assert len(s2.relation("R")) == 1

    def test_delete_by_id(self, state):
        t = next(iter(state.relation("R")))
        s2 = state.delete_tuple("R", t)
        assert s2.relation("R").get(t.tid) is None

    def test_delete_absent_is_noop(self, state):
        s2 = state.delete_tuple("R", make_tuple(9, 9))
        assert s2 == state

    def test_delete_clears_owner(self, state):
        t = next(iter(state.relation("R")))
        s2 = state.delete_tuple("R", t)
        assert s2.owner_of(t.tid) is None


class TestModify:
    def test_modify_keeps_identifier(self, state):
        t = next(iter(state.relation("R")))
        s2 = state.modify_tuple(t, 2, 99)
        updated = s2.relation("R").get(t.tid)
        assert updated is not None and updated.values[1] == 99
        assert updated.tid == t.tid

    def test_modify_preserves_other_tuples(self, state):
        tuples = list(state.relation("R"))
        s2 = state.modify_tuple(tuples[0], 1, 42)
        other = s2.relation("R").get(tuples[1].tid)
        assert other == tuples[1]

    def test_modify_unidentified_fails(self, state):
        with pytest.raises(EvaluationError):
            state.modify_tuple(make_tuple(1, 2), 1, 0)

    def test_modify_foreign_tuple_fails(self, state):
        with pytest.raises(EvaluationError):
            state.modify_tuple(DBTuple(999, (1, 2)), 1, 0)


class TestAssign:
    def test_assign_replaces_relation(self, state):
        value = TupleSet.of(2, [make_tuple(7, 8)])
        s2 = state.assign_relation("R", 2, value)
        assert len(s2.relation("R")) == 1
        assert next(iter(s2.relation("R"))).values == (7, 8)

    def test_assign_creates_relation(self, state):
        s1 = state.create_relation("T", 1)
        value = TupleSet.of(1, [make_tuple("z")])
        s2 = s1.assign_relation("T", 1, value)
        assert len(s2.relation("T")) == 1

    def test_assign_arity_checked(self, state):
        with pytest.raises(SchemaError):
            state.assign_relation("R", 2, TupleSet.of(1, [make_tuple("z")]))

    def test_assign_is_deterministic(self, state):
        value = TupleSet.of(2, [make_tuple(7, 8), make_tuple(9, 10)])
        s2 = state.assign_relation("R", 2, value)
        s3 = state.assign_relation("R", 2, value)
        assert s2 == s3 and s2.next_tid == s3.next_tid


class TestIdentityAndDomains:
    def test_content_equality_ignores_next_tid(self, schema):
        a = state_from_rows(schema, {"R": [(1, 2)]})
        s4, _ = initial_state(schema).insert_tuple("R", make_tuple(1, 2))
        # same contents and identifiers, allocator position irrelevant
        assert a == s4

    def test_identifiers_are_part_of_state_identity(self, schema):
        """Tuple identity is semantically meaningful (the id builtin); two
        states whose equal-valued tuples carry different identifiers are
        different states."""
        a = state_from_rows(schema, {"R": [(1, 2)]})
        base = initial_state(schema)
        s2, _ = base.insert_tuple("R", make_tuple(0, 0))
        s3 = s2.delete_tuple("R", make_tuple(0, 0))
        s4, _ = s3.insert_tuple("R", make_tuple(1, 2))  # gets tid 2, not 1
        assert a != s4

    def test_hashable(self, state):
        assert hash(state) == hash(state)

    def test_tuples_of_arity(self, state):
        assert len(state.tuples_of_arity(2)) == 2
        assert len(state.tuples_of_arity(1)) == 1
        assert state.tuples_of_arity(7) == []

    def test_atoms(self, state):
        assert {1, 2, 3, 4, "p"} <= state.atoms()

    def test_total_tuples(self, state):
        assert state.total_tuples() == 3

    def test_lookup_tuple(self, state):
        t = next(iter(state.relation("S")))
        assert state.lookup_tuple(t.tid) == t
        assert state.lookup_tuple(12345) is None
