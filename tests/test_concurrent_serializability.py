"""Serializability of the optimistic scheduler (property-based).

The property: **any interleaving the** :class:`TransactionManager`
**accepts is equivalent to some serial execution of the same programs** —
concretely, to the serial execution in commit-log order, which the log
itself witnesses.  Equality is up to the naming of freshly allocated tuple
identifiers (the same caveat as ``foreach`` order-equivalence: identifier
allocation is an implementation detail, not a semantic difference).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, RetryPolicy, Schema, transaction
from repro.concurrent import states_equivalent
from repro.logic import builder as b

RELS = ("A", "B", "C")


def make_schema() -> Schema:
    schema = Schema()
    for name in RELS:
        schema.add_relation(name, ("k", "v"))
    return schema


def make_programs():
    x, y = b.atom_var("x"), b.atom_var("y")
    pool = []
    for name in RELS:
        pool.append(
            transaction(f"put-{name}", (x, y), b.insert(b.mktuple(x, y), name))
        )
    pool.append(
        transaction(
            "move-A-B",
            (x, y),
            b.seq(b.delete(b.mktuple(x, y), "A"), b.insert(b.mktuple(x, y), "B")),
        )
    )
    pool.append(
        transaction(
            "move-B-C",
            (x, y),
            b.seq(b.delete(b.mktuple(x, y), "B"), b.insert(b.mktuple(x, y), "C")),
        )
    )
    rel_a = b.rel("A", 2)
    pool.append(transaction("clear-A", (), b.assign("A", b.diff(rel_a, rel_a))))
    return pool


PROGRAMS = make_programs()

calls = st.tuples(
    st.integers(min_value=0, max_value=len(PROGRAMS) - 1),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=3),
)

workloads = st.lists(calls, min_size=1, max_size=8)


def run_workload(workload, workers: int):
    db = Database(make_schema(), window=2)
    generous = RetryPolicy(max_attempts=200, base_delay=0.0001, max_delay=0.002)
    with db.concurrent(workers=workers, retry=generous, seed=0) as mgr:
        submissions = []
        for index, x, y in workload:
            program = PROGRAMS[index]
            args = () if not program.params else (x, y)
            submissions.append((program, *args))
        outcomes = mgr.run_all(submissions)
    return db, mgr, outcomes


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(workload=workloads, workers=st.sampled_from([2, 4]))
def test_accepted_interleavings_are_serializable(workload, workers):
    db, mgr, outcomes = run_workload(workload, workers)

    # Constraint-free workload with a generous retry budget: everything
    # must commit.
    assert all(o.ok for o in outcomes)
    assert len(mgr.log) == len(workload)

    # The commit log is the witness: serial replay in commit order yields
    # the concurrently reached state.
    replayed = mgr.log.replay(mgr.initial, interpreter=db.interpreter)
    assert states_equivalent(mgr.initial, db.current, replayed)
    assert mgr.verify_serializable()


@settings(max_examples=15, deadline=None)
@given(workload=workloads)
def test_single_worker_matches_sequential_execution(workload):
    """With one worker the manager degenerates to ordinary serial execution:
    the final state must equal a plain Database.execute sequence."""
    db, mgr, outcomes = run_workload(workload, workers=1)

    serial_db = Database(make_schema(), window=2)
    for index, x, y in workload:
        program = PROGRAMS[index]
        args = () if not program.params else (x, y)
        serial_db.execute(program, *args)

    assert all(o.ok for o in outcomes)
    assert mgr.log.serial_order() == tuple(
        PROGRAMS[index].name for index, _, _ in workload
    )
    assert states_equivalent(mgr.initial, db.current, serial_db.current)


@pytest.mark.parametrize("workers", [2, 4, 8])
def test_contended_single_relation_workload_serializes(workers):
    """All writers hammer one relation: heavy conflicts, yet the accepted
    schedule must still replay serially to the same state."""
    db = Database(make_schema(), window=2)
    put_a = PROGRAMS[0]
    generous = RetryPolicy(max_attempts=500, base_delay=0.0001, max_delay=0.002)
    with db.concurrent(workers=workers, retry=generous, seed=11) as mgr:
        outcomes = mgr.run_all([(put_a, i, i) for i in range(20)])
    assert all(o.ok for o in outcomes)
    assert len(db.current.relation("A")) == 20
    assert mgr.verify_serializable()
    snap = mgr.stats.snapshot()
    assert snap.commits == 20 and snap.aborts == 0
