"""Linkage-axiom rewriting: distribution, transition reduction, priming."""

import pytest

from repro.db import Schema, state_from_rows, chain_graph
from repro.constraints.semantics import Evaluator, PartialModel
from repro.logic import builder as b
from repro.logic.formulas import And, EvalBool, Forall, Not, SPred
from repro.logic.terms import EvalState, SApp
from repro.theory.rewriting import (
    distribute_eval_bool,
    normalize,
    reduce_transitions,
    to_primed,
)
from repro.transactions import execute


@pytest.fixture()
def schema():
    s = Schema()
    s.add_relation("R", ("n", "tag"))
    return s


@pytest.fixture()
def state(schema):
    return state_from_rows(schema, {"R": [(1, "a"), (2, "b")]})


R = b.rel("R", 2)
RID = b.rel_id("R", 2)
S = b.state_var("s")


class TestDistribution:
    def test_conjunction_distributes(self):
        t = b.ftup_var("t", 2)
        inner = b.land(b.member(t, R), b.lt(b.select(t, 1), b.atom(5)))
        result = distribute_eval_bool(b.holds(S, inner))
        assert isinstance(result, And)
        assert all(isinstance(c, EvalBool) for c in result.conjuncts)

    def test_negation_distributes(self):
        t = b.ftup_var("t", 2)
        result = distribute_eval_bool(b.holds(S, b.lnot(b.member(t, R))))
        assert isinstance(result, Not)

    def test_quantifier_distributes(self):
        t = b.ftup_var("t", 2)
        result = distribute_eval_bool(b.holds(S, b.forall(t, b.member(t, R))))
        assert isinstance(result, Forall)
        assert isinstance(result.body, EvalBool)

    def test_atoms_left_alone(self):
        t = b.ftup_var("t", 2)
        f = b.holds(S, b.member(t, R))
        assert distribute_eval_bool(f) == f

    def test_semantics_preserved(self, state):
        """Distribution must not change truth over a model."""
        t = b.ftup_var("t", 2)
        inner = b.forall(
            t, b.implies(b.member(t, R), b.le(b.select(t, 1), b.atom(3)))
        )
        f = b.forall(S, b.holds(S, inner))
        g = distribute_eval_bool(f)
        model = PartialModel(chain_graph([state]))
        assert Evaluator(model).holds(f) == Evaluator(model).holds(g) is True


class TestTransitionReduction:
    def test_insert_reduced(self, state):
        t = b.mktuple(b.atom(9), b.atom("z"))
        f = b.holds(b.after(S, b.insert(t, RID)), b.member(t, R))
        g = reduce_transitions(f)
        assert not any(isinstance(n, EvalState) for n in g.iter_subnodes())

    def test_reduction_preserves_semantics(self, state):
        t = b.mktuple(b.atom(9), b.atom("z"))
        tx = b.seq(b.insert(t, RID), b.delete(b.mktuple(b.atom(1), b.atom("a")), RID))
        f = b.forall(
            S,
            b.holds(b.after(S, tx), b.member(t, R)),
        )
        g = reduce_transitions(distribute_eval_bool(f))
        model = PartialModel(chain_graph([state]))
        assert Evaluator(model).holds(f) == Evaluator(model).holds(g) is True

    def test_foreach_left_residual(self, state):
        t = b.ftup_var("t", 2)
        loop = b.foreach(t, b.member(t, R), b.delete(t, RID))
        f = b.holds(b.after(S, loop), b.true())
        g = normalize(f)
        # w::true distributes to true; the foreach disappears with it
        # but a residual foreach under a member must remain unreduced:
        f2 = b.holds(b.after(S, loop), b.member(b.mktuple(b.atom(1), b.atom("a")), R))
        g2 = normalize(f2)
        assert not g2.fully_reduced

    def test_identity_collapsed(self):
        f = b.holds(b.after(S, b.identity()), b.true())
        g = normalize(f).formula
        assert not any(isinstance(n, EvalState) for n in g.iter_subnodes())


class TestPriming:
    def test_pred_primed(self):
        t = b.ftup_var("t", 2)
        f = b.holds(S, b.member(t, R))
        g = to_primed(f)
        assert isinstance(g, SPred)
        assert g.symbol.name == "member2"

    def test_app_primed(self):
        t = b.ftup_var("t", 2)
        f = b.eq(b.at(S, b.select(t, 1)), b.atom(1))
        g = to_primed(f)
        assert isinstance(g.lhs, SApp)

    def test_primed_semantics_preserved(self, state):
        t = b.ftup_var("t", 2)
        f = b.forall(
            [S, t],
            b.implies(
                b.holds(S, b.member(t, R)),
                b.le(b.at(S, b.select(t, 1)), b.atom(3)),
            ),
        )
        g = normalize(f, prime=True).formula
        model = PartialModel(chain_graph([state]))
        assert Evaluator(model).holds(f) == Evaluator(model).holds(g) is True


class TestNormalization:
    def test_stats_recorded(self):
        t = b.mktuple(b.atom(9), b.atom("z"))
        f = b.forall(
            S,
            b.holds(
                b.after(S, b.insert(t, RID)),
                b.land(b.member(t, R), b.true()),
            ),
        )
        result = normalize(f)
        assert result.stats.transitions_reduced >= 1
        assert result.stats.eval_bool_distributed >= 1
        assert result.stats.passes >= 1
        assert result.fully_reduced

    def test_full_verification_shaped_reduction(self, state):
        """The vcgen shape: (w;T)::static-constraint reduces to w::Q and the
        reduction agrees with executing T."""
        t = b.ftup_var("t", 2)
        constraint = b.forall(
            t, b.implies(b.member(t, R), b.le(b.select(t, 1), b.atom(9)))
        )
        tx = b.insert(b.mktuple(b.atom(4), b.atom("d")), RID)
        f = b.holds(b.after(S, tx), constraint)
        reduced = normalize(f).formula
        model = PartialModel(chain_graph([state]))
        from repro.transactions import satisfies

        after = execute(state, tx)
        direct = satisfies(after, constraint)
        via_regression = Evaluator(model).holds(b.forall(S, reduced))
        assert direct == via_regression
