"""Pretty-printing: paper-notation rendering of every node kind."""

from repro.logic import builder as b
from repro.logic.fluents import Seq
from repro.logic.pretty import pretty
from repro.logic.terms import RelConst


class TestSituationalNotation:
    def test_eval_obj(self):
        s = b.state_var("s")
        e = b.ftup_var("e", 5)
        assert pretty(b.at(s, b.attr("salary", 5, 3, e))) == "s:salary(e)"

    def test_eval_bool(self):
        s = b.state_var("s")
        e = b.ftup_var("e", 5)
        text = pretty(b.holds(s, b.member(e, RelConst("EMP", 5))))
        assert text == "s::e in EMP"

    def test_eval_state(self):
        s = b.state_var("s")
        t = b.trans_var("t")
        assert pretty(b.after(s, t)) == "s;t"

    def test_nested_transitions(self):
        s = b.state_var("s")
        t1, t2 = b.trans_var("t1"), b.trans_var("t2")
        assert pretty(b.after(b.after(s, t1), t2)) == "s;t1;t2"

    def test_primed_application(self):
        s = b.state_var("s")
        e = b.ftup_var("e", 5)
        from repro.logic import symbols as sym

        text = pretty(b.sapp(sym.select_sym(5), s, b.at(s, e), b.atom(3)))
        assert text.startswith("select5'(s,")


class TestFluentNotation:
    def test_composition(self):
        tx = Seq(b.insert(b.ftup_var("e", 2), "R"), b.delete(b.ftup_var("e", 2), "R"))
        assert ";;" in pretty(tx)

    def test_identity(self):
        assert pretty(b.identity()) == "Λ"

    def test_foreach(self):
        a = b.ftup_var("a", 3)
        text = pretty(b.foreach(a, b.member(a, RelConst("ALLOC", 3)), b.delete(a, "ALLOC")))
        assert text.startswith("foreach a|") and " do " in text

    def test_conditional(self):
        tx = b.ifthen(b.lt(b.atom(1), b.atom(2)), b.insert(b.ftup_var("e", 2), "R"))
        assert pretty(tx).startswith("if 1 < 2 then ")

    def test_set_former(self):
        a = b.ftup_var("a", 3)
        text = pretty(b.setformer(b.select(a, 3), a, b.member(a, RelConst("ALLOC", 3))))
        assert text.startswith("{") and "|" in text


class TestOperators:
    def test_infix_arithmetic(self):
        assert pretty(b.plus(b.atom(1), b.atom(2))) == "1 + 2"
        assert pretty(b.times(b.atom(3), b.atom(4))) == "3 * 4"

    def test_comparisons(self):
        assert pretty(b.le(b.atom(1), b.atom(2))) == "1 <= 2"

    def test_membership_and_subset(self):
        e = b.ftup_var("e", 5)
        emp = RelConst("EMP", 5)
        assert pretty(b.member(e, emp)) == "e in EMP"
        s1 = b.fset_var("S1", 5)
        assert pretty(b.subset(s1, emp)) == "S1 subset EMP"

    def test_connectives(self):
        p = b.lt(b.atom(1), b.atom(2))
        q = b.lt(b.atom(2), b.atom(3))
        assert pretty(b.land(p, q)) == "1 < 2 & 2 < 3"
        assert pretty(b.implies(p, q)) == "1 < 2 -> 2 < 3"
        assert pretty(b.lnot(p)) == "~1 < 2"

    def test_quantifiers_show_sorts(self):
        s = b.state_var("s")
        text = pretty(b.forall(s, b.holds(s, b.true())))
        assert text.startswith("forall[state] s.")

    def test_string_atoms_quoted(self):
        assert pretty(b.atom("alice")) == "'alice'"

    def test_str_dunder_delegates(self):
        assert str(b.atom(5)) == "5"

    def test_every_domain_constraint_renders(self, domain):
        for c in domain.all_constraints:
            text = pretty(c.formula)
            assert text and "Traceback" not in text
