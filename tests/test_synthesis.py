"""E6: transaction synthesis from declarative goals with repairs."""

import pytest

from repro.errors import SynthesisError
from repro.logic import builder as b
from repro.synthesis import (
    InsertGoal,
    ModifyGoal,
    RemoveGoal,
    Synthesizer,
    derive_repair,
    goal_order,
)


@pytest.fixture()
def cancel_goals(domain):
    pname, v = b.atom_var("pname"), b.atom_var("v")
    p = domain.proj.var("p")
    e = domain.emp.var("e")
    a = domain.alloc.var("a")
    allocated_to_p = b.exists(
        a,
        b.land(
            b.member(a, domain.alloc.rel()),
            b.eq(domain.alloc.attr("a-proj", a), pname),
            b.eq(domain.alloc.attr("a-emp", a), domain.emp.attr("e-name", e)),
        ),
    )
    return (
        (pname, v),
        [
            RemoveGoal(domain.proj, p, b.eq(domain.proj.attr("p-name", p), pname)),
            ModifyGoal(
                domain.emp,
                e,
                allocated_to_p,
                "salary",
                b.minus(domain.emp.attr("salary", e), v),
            ),
        ],
    )


class TestRepairDerivation:
    def test_referential_constraint_repair(self, domain):
        repair = derive_repair(domain.alloc_references_project())
        assert repair is not None
        assert "ALLOC" in repair.description

    def test_allocation_constraint_repair(self, domain):
        repair = derive_repair(domain.every_employee_allocated())
        assert repair is not None
        assert "EMP" in repair.description

    def test_transaction_constraint_has_no_repair(self, domain):
        assert derive_repair(domain.once_married()) is None

    def test_repair_fluent_is_executable(self, domain, sample_state):
        from repro.transactions import execute, is_executable

        repair = derive_repair(domain.every_employee_allocated())
        assert is_executable(repair.fluent)
        # dropping all allocations leaves everyone stranded; the repair then
        # deletes every employee
        s = sample_state
        for t in list(s.relation("ALLOC")):
            s = s.delete_tuple("ALLOC", t)
        fixed = execute(s, repair.fluent)
        assert len(fixed.relation("EMP")) == 0


class TestGoalPlanning:
    def test_goal_order_reads_before_writes(self, domain, cancel_goals):
        _, goals = cancel_goals
        ordered = goal_order(goals)
        assert isinstance(ordered[0], ModifyGoal)
        assert isinstance(ordered[-1], RemoveGoal)

    def test_goal_fluents_executable(self, domain, cancel_goals):
        from repro.transactions import is_executable

        (pname, v), goals = cancel_goals
        for g in goals:
            assert is_executable(g.achieving_fluent(), [pname, v])

    def test_insert_goal(self, domain, sample_state):
        from repro.transactions import execute

        g = InsertGoal(domain.skill, (b.atom("alice"), b.atom(9)))
        after = execute(sample_state, g.achieving_fluent())
        assert ("alice", 9) in {t.values for t in after.relation("SKILL")}


class TestExample6:
    def test_synthesis_reproduces_cancel_project(self, domain, sample_state, cancel_goals):
        params, goals = cancel_goals
        synth = Synthesizer(domain.static_constraints)
        spec = domain.cancel_project_spec("net", 10)
        result = synth.synthesize(
            "cancel-synth", params, goals, [(sample_state, ("net", 10))], spec
        )
        assert result.certified
        # the two repairs the paper says the proof introduces:
        names = [r.constraint.name for r in result.repairs]
        assert names == ["alloc-references-project", "every-employee-allocated"]
        # behavior matches the hand-written Example 5 transaction
        synthesized = result.program.run(sample_state, "net", 10)
        manual = domain.cancel_project.run(sample_state, "net", 10)
        for rel in ("EMP", "PROJ", "ALLOC", "SKILL"):
            assert {t.values for t in synthesized.relation(rel)} == {
                t.values for t in manual.relation(rel)
            }, rel

    def test_cascading_repairs_recorded_in_trace(self, domain, sample_state, cancel_goals):
        params, goals = cancel_goals
        synth = Synthesizer(domain.static_constraints)
        result = synth.synthesize(
            "cancel-synth", params, goals, [(sample_state, ("net", 10))]
        )
        assert result.rounds == 3
        assert any("round 1" in line for line in result.trace)
        assert any("round 2" in line for line in result.trace)

    def test_no_repairs_needed_for_clean_goal(self, domain, sample_state):
        """Raising a salary violates nothing: round 1 converges."""
        e = domain.emp.var("e")
        goal = ModifyGoal(
            domain.emp,
            e,
            b.eq(domain.emp.attr("e-name", e), b.atom("alice")),
            "salary",
            b.plus(domain.emp.attr("salary", e), b.atom(10)),
        )
        synth = Synthesizer(domain.static_constraints)
        result = synth.synthesize("raise", (), [goal], [(sample_state, ())])
        assert result.rounds == 1 and not result.repairs

    def test_unrepairable_violation_raises(self, domain, sample_state):
        """A goal violating a transaction constraint cannot be repaired by
        deletion of static offenders alone."""
        e = domain.emp.var("e")
        # insert an allocation for a non-existent project: repairable;
        # but restrict the synthesizer to a constraint set with no guard
        # shape by passing a transaction constraint as 'static'... instead:
        # make the synthesizer see a violated constraint with no repair by
        # removing the repairable ones and using a non-guarded constraint.
        from repro.constraints import constraint as mk

        s = b.state_var("s")
        impossible = mk(
            "emp-always-empty",
            b.forall(s, b.holds(s, b.lnot(b.exists(e, b.member(e, domain.emp.rel()))))),
        )
        goal = InsertGoal(domain.skill, (b.atom("alice"), b.atom(3)))
        synth = Synthesizer([impossible])
        with pytest.raises(SynthesisError):
            synth.synthesize("bad", (), [goal], [(sample_state, ())])

    def test_certification_fails_for_wrong_spec(self, domain, sample_state, cancel_goals):
        params, goals = cancel_goals
        synth = Synthesizer(domain.static_constraints)
        wrong_spec = domain.cancel_project_spec("net", 999)  # wrong cut
        result = synth.synthesize(
            "cancel-synth", params, goals, [(sample_state, ("net", 10))], wrong_spec
        )
        assert not result.certified
