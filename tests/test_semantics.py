"""The situational evaluator over partial models: edge cases."""

import pytest

from repro.errors import EvaluationError
from repro.constraints import Evaluator, PartialModel, TransitionInapplicable
from repro.db import EvolutionGraph, chain_graph
from repro.logic import builder as b
from repro.logic.formulas import Eq
from repro.logic.fluents import Seq
from repro.transactions import Env


@pytest.fixture()
def states(domain):
    s0 = domain.sample_state()
    s1 = domain.birthday.run(s0, "alice")
    s2 = domain.birthday.run(s1, "bob")
    return [s0, s1, s2]


@pytest.fixture()
def model(states):
    return PartialModel(chain_graph(states))


class TestStateQuantification:
    def test_forall_states(self, domain, model):
        s = b.state_var("s")
        f = b.forall(s, b.holds(s, domain.employed(b.atom("alice"))))
        assert Evaluator(model).holds(f)

    def test_exists_state(self, domain, model, states):
        s = b.state_var("s")
        age = lambda st: None
        e = domain.emp.var("e")
        # some state where alice's age is the incremented one
        f = b.exists(
            s,
            b.holds(
                s,
                b.exists(
                    e,
                    b.land(
                        b.member(e, domain.emp.rel()),
                        b.eq(domain.emp.attr("e-name", e), b.atom("alice")),
                        b.eq(domain.emp.attr("age", e), b.atom(36)),
                    ),
                ),
            ),
        )
        assert Evaluator(model).holds(f)

    def test_named_state_constants(self, domain, states):
        model = PartialModel(chain_graph(states), constants={"s0": states[0]})
        f = b.holds(b.state_const("s0"), domain.employed(b.atom("alice")))
        assert Evaluator(model).holds(f)

    def test_unknown_constant_reported(self, domain, model):
        f = b.holds(b.state_const("mystery"), b.true())
        with pytest.raises(EvaluationError, match="mystery"):
            Evaluator(model).holds(f)


class TestTransitionSemantics:
    def test_transition_application(self, domain, model, states):
        s = b.state_var("s")
        t = b.trans_var("t")
        # after every transition from the first state, alice is employed
        f = b.forall(
            [s, t], b.holds(b.after(s, t), domain.employed(b.atom("alice")))
        )
        assert Evaluator(model).holds(f)

    def test_inapplicable_vacuous_for_universal(self, domain, states):
        # an isolated extra state: transitions from the chain do not apply
        g = EvolutionGraph()
        g.add_transition(states[0], states[1], "t01")
        g.add_state(states[2])
        model = PartialModel(g)
        s = b.state_var("s")
        t = b.trans_var("t")
        f = b.forall([s, t], b.holds(b.after(s, t), domain.employed(b.atom("alice"))))
        assert Evaluator(model).holds(f)

    def test_transition_equality(self, domain, model, states):
        """δ-style: t = t1 ;; t2 picks out real decompositions."""
        s = b.state_var("s")
        t = b.trans_var("t")
        t1 = b.trans_var("t1")
        t2 = b.trans_var("t2")
        # every 2-hop transition decomposes
        two_hop = b.exists(
            [t1, t2],
            b.land(
                Eq(t, Seq(t1, t2)),
                b.lnot(Eq(t, t1)),
                b.lnot(Eq(t, t2)),
            ),
        )
        evaluator = Evaluator(model)
        from repro.db.evolution import Transition

        long_transitions = [
            tr for tr in model.all_transitions() if len(tr) == 2
        ]
        assert long_transitions
        env = Env({t: long_transitions[0]})
        assert evaluator._formula(two_hop, env)

    def test_concrete_transaction_in_after(self, domain, model, states):
        s = b.state_var("s")
        tx = domain.birthday.instantiate(b.atom("carol"))
        f = b.forall(s, b.holds(b.after(s, tx), domain.employed(b.atom("carol"))))
        assert Evaluator(model).holds(f)


class TestDomains:
    def test_tuple_domain_spans_states(self, domain, model):
        tuples = model.tuple_domain(5)
        # alice appears with age 35 and 36 (same tid, different values);
        # the domain keeps distinct (tid, values) snapshots
        alice_versions = [t for t in tuples if t.values[0] == "alice"]
        assert len(alice_versions) == 2

    def test_atom_domain(self, domain, model):
        atoms = model.atom_domain()
        assert "alice" in atoms and 36 in atoms

    def test_empty_model_rejects_fluent_atoms(self, domain):
        model = PartialModel(EvolutionGraph())
        e = domain.emp.var("e")
        with pytest.raises(EvaluationError):
            Evaluator(model).holds(b.member(e, domain.emp.rel()))
