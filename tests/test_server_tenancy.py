"""Per-tenant governance at the wire: admission quotas, breaker views,
budget templates, and latency isolation.

The acceptance contract from the issue: a tenant exceeding its admission
quota gets a wire-level :class:`Overloaded` carrying ``retry_after``, while
other tenants keep their tickets — their p95 latency stays within 2× of
baseline (with a small absolute floor so scheduler noise cannot flake the
build).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import Budget, Client, Database, TenantConfig, TransactionServer
from repro.errors import BudgetExceeded, CircuitOpen, Overloaded
from repro.logic import builder as b
from repro.server.client import ClientRetry
from repro.transactions.program import query


class Gated:
    """See tests/test_server_lifecycle.py — parks evaluation in the worker."""

    def __init__(self, inner, name: str = "gated"):
        self.inner = inner
        self._name = name
        self.entered = threading.Event()
        self.release = threading.Event()

    def __getattr__(self, attr):
        return getattr(self.inner, attr)

    @property
    def name(self):
        return self._name

    def run(self, state, *args, interpreter=None):
        self.entered.set()
        assert self.release.wait(timeout=10.0), "gated program never released"
        return self.inner.run(state, *args, interpreter=interpreter)


def percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


@pytest.fixture()
def gated(domain):
    return Gated(domain.hire)


@pytest.fixture()
def served(domain, gated):
    db = Database(domain.schema, initial=domain.sample_state())
    programs = [
        domain.hire,
        domain.create_project,
        gated,
        query("headcount", (), b.size_of(b.rel("EMP", 5))),
    ]
    server = TransactionServer(
        db,
        programs,
        workers=4,
        tenants={
            "small": TenantConfig(max_inflight=1, retry_hint_per_item=0.02),
            "metered": TenantConfig(budget=Budget(max_steps=1)),
            "flaky": TenantConfig(
                breaker={"min_events": 2, "threshold": 0.5, "cooldown": 30.0}
            ),
        },
    )
    server.start()
    yield server
    gated.release.set()
    server.close()


class TestAdmissionQuota:
    def test_over_quota_is_wire_level_overloaded_with_retry_after(
        self, served, gated
    ):
        small = Client(*served.address, tenant="small")
        p1 = small.submit("gated", "erin", "cs", 90, 25, "S")
        assert gated.entered.wait(5.0)
        # The quota slot is held: the next request is refused pre-execution.
        p2 = small.submit("hire", "finn", "cs", 90, 25, "S")
        with pytest.raises(Overloaded) as info:
            p2.result(timeout=5.0)
        assert info.value.limit == 1
        assert info.value.retry_after > 0
        gated.release.set()
        assert p1.result(timeout=5.0).ok
        small.close()

    def test_other_tenants_keep_their_tickets(self, served, gated):
        small = Client(*served.address, tenant="small")
        p1 = small.submit("gated", "erin", "cs", 90, 25, "S")
        assert gated.entered.wait(5.0)
        # "small" is saturated; "default" commits unimpeded.
        with Client(*served.address) as other:
            assert other.execute("hire", "gina", "ee", 85, 29, "S").ok
        gated.release.set()
        assert p1.result(timeout=5.0).ok
        small.close()

    def test_rejections_count_in_the_tenant_admission_metrics(
        self, served, gated
    ):
        small = Client(*served.address, tenant="small")
        p1 = small.submit("gated", "erin", "cs", 90, 25, "S")
        assert gated.entered.wait(5.0)
        before = served.database.metrics.counter(
            "repro_admission_rejected_total"
        ).value
        with pytest.raises(Overloaded):
            small.submit("hire", "finn", "cs", 90, 25, "S").result(timeout=5.0)
        after = served.database.metrics.counter(
            "repro_admission_rejected_total"
        ).value
        assert after == before + 1
        gated.release.set()
        p1.result(timeout=5.0)
        small.close()


class TestClientBackoff:
    def test_client_honors_retry_after_then_succeeds(self, served, gated):
        """execute() (unlike submit()) transparently backs off on the typed
        pre-execution rejection and wins once the slot frees."""
        small = Client(
            *served.address,
            tenant="small",
            retry=ClientRetry(max_attempts=6, base_delay=0.05),
        )
        p1 = small.submit("gated", "erin", "cs", 90, 25, "S")
        assert gated.entered.wait(5.0)
        freer = threading.Timer(0.1, gated.release.set)
        freer.start()
        try:
            result = small.execute("hire", "finn", "cs", 90, 25, "S")
            assert result.ok
        finally:
            freer.cancel()
            gated.release.set()
        assert p1.result(timeout=5.0).ok
        small.close()

    def test_backoff_exhaustion_reraises_the_typed_error(self, served, gated):
        small = Client(
            *served.address,
            tenant="small",
            retry=ClientRetry(max_attempts=2, base_delay=0.01, max_delay=0.02),
        )
        p1 = small.submit("gated", "erin", "cs", 90, 25, "S")
        assert gated.entered.wait(5.0)
        with pytest.raises(Overloaded):
            small.execute("hire", "finn", "cs", 90, 25, "S")
        gated.release.set()
        p1.result(timeout=5.0)
        small.close()


class TestBudgetsAndBreakers:
    def test_tenant_budget_template_meters_every_request(self, served):
        with Client(*served.address, tenant="metered") as metered:
            with pytest.raises(BudgetExceeded) as info:
                metered.execute("hire", "erin", "cs", 90, 25, "S")
            assert info.value.resource == "steps"
            assert info.value.limit == 1
        # The same program under an unmetered tenant commits.
        with Client(*served.address) as free:
            assert free.execute("hire", "erin", "cs", 90, 25, "S").ok

    def test_breaker_views_are_per_tenant(self, served):
        """Trip the 'flaky' tenant's breaker directly: its requests fail
        fast with CircuitOpen while 'default' commits normally."""
        flaky_tenant = served._tenant("flaky")
        breaker = flaky_tenant.admission.breaker
        assert breaker is not None
        breaker.record(False)
        breaker.record(False)  # min_events=2, all conflicts: trips open
        assert breaker.state == "open"

        flaky = Client(
            *served.address, tenant="flaky",
            retry=ClientRetry(max_attempts=1),
        )
        with pytest.raises(CircuitOpen) as info:
            flaky.execute("create-project", "atlas", 100)
        assert info.value.retry_after > 0
        flaky.close()

        with Client(*served.address) as other:
            assert other.execute("create-project", "atlas", 100).ok


class TestLatencyIsolation:
    def test_noisy_neighbor_does_not_move_the_default_tenants_p95(
        self, served, gated
    ):
        rounds = 40

        def measure(client):
            samples = []
            for _ in range(rounds):
                t0 = time.perf_counter()
                client.query("headcount")
                samples.append(time.perf_counter() - t0)
            return percentile(samples, 0.95)

        with Client(*served.address) as victim:
            baseline = measure(victim)

            # Saturate "small": one parked request holds its only ticket,
            # and a burst of further submissions bounces off admission.
            noisy = Client(*served.address, tenant="small")
            parked = noisy.submit("gated", "erin", "cs", 90, 25, "S")
            assert gated.entered.wait(5.0)
            bounced = [
                noisy.submit("hire", f"n{i}", "cs", 50, 30, "S")
                for i in range(25)
            ]

            loaded = measure(victim)

            for pending in bounced:
                with pytest.raises(Overloaded):
                    pending.result(timeout=5.0)
            gated.release.set()
            assert parked.result(timeout=5.0).ok
            noisy.close()

        # 2× the unloaded p95, with an absolute floor against timer noise.
        assert loaded <= max(2 * baseline, 0.05), (
            f"default tenant p95 moved from {baseline:.4f}s to {loaded:.4f}s "
            f"under a noisy neighbor"
        )
