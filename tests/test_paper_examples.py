"""The six examples of Section 4, walked end to end.

One test class per paper example; each assertion quotes or paraphrases the
sentence of the paper it reproduces.  This module is the reproduction's
table of contents.
"""

import pytest

from repro.constraints import (
    ConstraintKind,
    Evaluator,
    PartialModel,
    Window,
    analyze,
    check_state,
    check_transition,
)
from repro.db import History, chain_graph
from repro.logic import builder as b


class TestExample1:
    """Static constraints of the employee database."""

    def test_all_three_hold_on_the_valid_state(self, domain, sample_state):
        for c in domain.static_constraints:
            assert check_state(c, sample_state).ok, c.name

    def test_each_employee_works_for_a_project(self, domain, sample_state):
        bad = domain.hire.run(sample_state, "idle", "cs", 10, 20, "S")
        assert not check_state(domain.every_employee_allocated(), bad).ok

    def test_alloc_tuples_reference_valid_projects(self, domain, sample_state):
        bad = domain.allocate.run(sample_state, "alice", "no-such", 5)
        assert not check_state(domain.alloc_references_project(), bad).ok

    def test_no_employee_over_100_percent(self, domain, sample_state):
        bad = domain.allocate.run(sample_state, "bob", "ai", 1)
        assert not check_state(domain.allocation_within_limit(), bad).ok


class TestExample2:
    """An employee cannot be single if he was married before."""

    def test_naive_version_constrains_unreachable_pairs(self, domain, sample_state):
        """'Two states may very well be in contradiction as long as they are
        not reachable from each other' — on a model with two *unconnected*
        states the naive version wrongly fires, the transaction version
        cannot (no transition exists)."""
        from repro.db import EvolutionGraph

        s_a = sample_state  # alice married, age 35
        s_b = domain.marry.run(domain.birthday.run(sample_state, "alice"), "alice", "S")
        graph = EvolutionGraph()
        graph.add_state(s_a)
        graph.add_state(s_b)  # NOT reachable from s_a
        model = PartialModel(graph)
        assert not Evaluator(model).holds(domain.once_married_wrong().formula)
        assert Evaluator(model).holds(domain.once_married().formula)

    def test_transaction_version_fires_on_reachable_pairs(self, domain, sample_state):
        s_b = domain.marry.run(domain.birthday.run(sample_state, "alice"), "alice", "S")
        assert not check_transition(domain.once_married(), sample_state, s_b).ok

    def test_checkable_with_two_states(self, domain):
        report = analyze(domain.once_married())
        assert report.window == 2


class TestExample3:
    """Transaction constraints: skills, salaries, structural connections."""

    def test_skill_retained_as_soon_as_obtained(self, domain, sample_state):
        s1 = domain.add_skill.run(sample_state, "bob", 7)
        s2 = domain.birthday.run(s1, "bob")
        assert check_transition(domain.skill_retention(), s1, s2).ok

    def test_not_expressed_as_deletion_prohibition(self, domain, sample_state):
        """'we do want to delete the skill tuples associated with an
        employee when we delete the employee himself'."""
        fired = domain.fire.run(sample_state, "dan")
        assert check_transition(domain.skill_retention(), sample_state, fired).ok
        assert len(fired.relation("SKILL")) < len(sample_state.relation("SKILL"))

    def test_salary_decrease_goes_through_dept_switch(self, domain, sample_state):
        direct_cut = domain.set_salary.run(sample_state, "alice", 10)
        c = domain.salary_decrease_needs_dept_change()
        assert not check_transition(c, sample_state, direct_cut).ok
        via_transfer = domain.transfer.run(sample_state, "alice", "ee", 10)
        assert check_transition(c, sample_state, via_transfer).ok

    def test_neq_variant_needs_complete_history(self, domain):
        assert analyze(domain.salary_never_same()).window is Window.FULL_HISTORY

    def test_reference_vs_association_connection(self, domain, sample_state):
        """Departments with employees are not deleted; allocations die with
        their project."""
        from repro.transactions import execute

        d = domain.dept.var("d")
        drop_empty_dept = b.foreach(
            d,
            b.land(
                b.member(d, domain.dept.rel()),
                b.eq(domain.dept.attr("d-name", d), b.atom("ops")),  # no employees
            ),
            b.delete(d, domain.dept.rid()),
        )
        after = execute(sample_state, drop_empty_dept)
        assert check_transition(
            domain.dept_deletion_precondition(), sample_state, after
        ).ok
        cancelled = domain.cancel_project.run(sample_state, "net", 0)
        assert check_transition(
            domain.project_deletion_cascades(), sample_state, cancelled
        ).ok


class TestExample4:
    """Constraints beyond the transaction subclass."""

    def test_never_rehire_needs_complete_history(self, domain):
        assert analyze(domain.never_rehire()).window is Window.FULL_HISTORY

    def test_fire_encoding_makes_it_static(self, domain, sample_state):
        enc = domain.fire_encoding()
        c = enc.static_constraint()
        assert c.kind is ConstraintKind.STATIC
        s = enc.prepare_state(sample_state)
        s1 = enc.record(s, domain.fire.run(s, "dan"))
        rehired = domain.hire.run(s1, "dan", "cs", 1, 31, "S")
        assert not check_state(c, rehired).ok

    def test_invertibility_uncheckable(self, domain):
        """'whenever a transaction is executed, the existence of an inverse
        transaction needs to be proved' — no finite window suffices."""
        assert analyze(domain.invertibility()).window is Window.UNCHECKABLE

    def test_no_eternal_project_uncheckable(self, domain):
        assert analyze(domain.no_eternal_project()).window is Window.UNCHECKABLE


class TestExample5:
    """The cancel-project transaction."""

    def test_procedural_behaviour(self, domain, sample_state):
        after = domain.cancel_project.run(sample_state, "net", 10)
        names = {t.values[0] for t in after.relation("EMP")}
        assert "dan" not in names        # worked only on net: fired
        carol = next(t for t in after.relation("EMP") if t.values[0] == "carol")
        assert carol.values[2] == 100    # 110 - 10: still on ai
        assert not any(t.values[0] == "net" for t in after.relation("PROJ"))
        assert not any(t.values[1] == "net" for t in after.relation("ALLOC"))

    def test_verification_verdicts(self, domain, sample_state):
        """See tests/test_verification.py for the full battery; the headline
        sentence is pinned here."""
        from repro.verification import Scenario, Verdict, Verifier

        verifier = Verifier()
        scenario = Scenario(sample_state, ("net", 10))
        preserved = [
            domain.once_married(),
            domain.skill_retention(),
            domain.never_rehire(),
        ]
        for c in preserved:
            assert verifier.verify(c, domain.cancel_project, [scenario]).preserved
        salary = verifier.verify(
            domain.salary_decrease_needs_dept_change(),
            domain.cancel_project,
            [scenario],
        )
        assert salary.verdict is Verdict.VIOLATED


class TestExample6:
    """Declarative specification and synthesis."""

    def test_spec_satisfied_by_the_procedural_transaction(self, domain, sample_state):
        after = domain.cancel_project.run(sample_state, "net", 10)
        spec = domain.cancel_project_spec("net", 10)
        model = PartialModel(chain_graph([sample_state, after], ["cancel"]))
        assert Evaluator(model).holds(spec)

    def test_repairs_created_by_example1_constraints(self, domain, sample_state):
        from repro.synthesis import ModifyGoal, RemoveGoal, Synthesizer

        pname, v = b.atom_var("pname"), b.atom_var("v")
        p = domain.proj.var("p")
        e = domain.emp.var("e")
        a = domain.alloc.var("a")
        allocated = b.exists(
            a,
            b.land(
                b.member(a, domain.alloc.rel()),
                b.eq(domain.alloc.attr("a-proj", a), pname),
                b.eq(domain.alloc.attr("a-emp", a), domain.emp.attr("e-name", e)),
            ),
        )
        goals = [
            RemoveGoal(domain.proj, p, b.eq(domain.proj.attr("p-name", p), pname)),
            ModifyGoal(domain.emp, e, allocated, "salary",
                       b.minus(domain.emp.attr("salary", e), v)),
        ]
        result = Synthesizer(domain.static_constraints).synthesize(
            "cancel", (pname, v), goals, [(sample_state, ("net", 10))]
        )
        assert {r.constraint.name for r in result.repairs} == {
            "alloc-references-project",
            "every-employee-allocated",
        }
