"""E7 on branching evolution graphs.

The paper's evolution graphs are general multigraphs, not chains; the δ
agreement must survive branching futures (where ◇/□ genuinely differ per
branch) and diamonds (two transaction orders reaching the same state).
"""

import pytest

from repro.constraints import Evaluator, PartialModel
from repro.db import EvolutionGraph
from repro.logic import builder as b
from repro.temporal import TNot, always, atom, check, delta, eventually, until
from repro.transactions import Env


@pytest.fixture()
def branching(domain):
    """s0 branches: fire dan (s1a) XOR promote alice (s1b); s1a continues."""
    s0 = domain.sample_state()
    s1a = domain.fire.run(s0, "dan")
    s1b = domain.set_salary.run(s0, "alice", 500)
    s2a = domain.hire.run(s1a, "erin", "cs", 80, 22, "S")
    graph = EvolutionGraph()
    graph.add_transition(s0, s1a, "fire-dan")
    graph.add_transition(s0, s1b, "promote-alice")
    graph.add_transition(s1a, s2a, "hire-erin")
    return s0, s1a, s1b, s2a, PartialModel(graph)


@pytest.fixture()
def diamond(domain):
    """Two orders of independent transactions meet in the same state."""
    s0 = domain.sample_state()
    s_skill = domain.add_skill.run(s0, "bob", 9)
    s_age = domain.birthday.run(s0, "carol")
    s_both_a = domain.birthday.run(s_skill, "carol")
    s_both_b = domain.add_skill.run(s_age, "bob", 9)
    graph = EvolutionGraph()
    graph.add_transition(s0, s_skill, "skill")
    graph.add_transition(s0, s_age, "age")
    graph.add_transition(s_skill, s_both_a, "age")
    graph.add_transition(s_age, s_both_b, "skill")
    return s0, s_both_a, s_both_b, PartialModel(graph)


def employed(domain, name):
    return atom(domain.employed(b.atom(name)))


class TestBranchingSemantics:
    def test_eventually_differs_per_branch(self, domain, branching):
        s0, s1a, s1b, s2a, model = branching
        f = eventually(employed(domain, "erin"))
        assert check(model, s0, f)        # via the fire branch
        assert check(model, s1a, f)
        assert not check(model, s1b, f)   # the promote branch never hires erin

    def test_always_quantifies_over_all_branches(self, domain, branching):
        s0, *_rest, model = branching
        assert not check(model, s0, always(employed(domain, "dan")))
        assert check(model, s0, always(employed(domain, "alice")))

    def test_until_on_branches(self, domain, branching):
        s0, s1a, s1b, s2a, model = branching
        # dan employed until erin employed: fails on the fire branch at s1a
        f = until(employed(domain, "dan"), employed(domain, "erin"))
        assert not check(model, s0, f)
        # alice employed until dan gone: the promote branch never drops dan,
        # but alice holds everywhere there, so the (weak) until still holds
        g = until(employed(domain, "alice"), TNot(employed(domain, "dan")))
        assert check(model, s0, g)


class TestDeltaOnGraphs:
    def _agree(self, domain, model, state, formula):
        s = b.state_var("s")
        direct = check(model, state, formula)
        via = Evaluator(model)._formula(delta(s, formula), Env({s: state}))
        assert direct == via
        return direct

    def test_branching_agreement(self, domain, branching):
        s0, s1a, s1b, s2a, model = branching
        formulas = [
            eventually(employed(domain, "erin")),
            always(employed(domain, "alice")),
            always(eventually(employed(domain, "alice"))),
            until(employed(domain, "dan"), employed(domain, "erin")),
        ]
        for state in (s0, s1a, s1b):
            for f in formulas:
                self._agree(domain, model, state, f)

    def test_diamond_agreement(self, domain, diamond):
        s0, s_both_a, s_both_b, model = diamond
        # the diamond's two meet states are content-equal -> one graph node
        assert s_both_a == s_both_b
        formulas = [
            eventually(employed(domain, "erin")),
            always(employed(domain, "bob")),
            until(employed(domain, "alice"), TNot(employed(domain, "alice"))),
        ]
        for f in formulas:
            self._agree(domain, model, s0, f)

    def test_diamond_confluence(self, domain, diamond):
        """Independent transactions commute: both orders reach one state —
        the multigraph has two 2-step paths into the same node."""
        s0, s_both_a, _s_both_b, model = diamond
        two_step = [
            t for t in model.transitions_from(s0)
            if len(t) == 2 and t.target() == s_both_a
        ]
        assert len(two_step) == 2
