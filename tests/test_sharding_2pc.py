"""Two-phase commit under exhaustive fault injection.

Every crash point inside the 2PC window is exercised: the client sees a
typed :class:`~repro.errors.InDoubt`, and recovery resolves the in-doubt
transaction on every shard consistently with the coordinator's durable
decision record — commit after the decision fsync, presumed abort before.
"""

from __future__ import annotations

import os

import pytest

from repro.db.schema import Schema
from repro.errors import InDoubt, ShardError
from repro.logic import builder as b
from repro.sharding import (
    Coordinator,
    ShardedDatabase,
    TwoPhaseFaults,
    resolve_in_doubt,
)
from repro.transactions.program import query, transaction

x, y = b.atom_var("x"), b.atom_var("y")


def two_stripe_schema() -> Schema:
    schema = Schema()
    schema.add_relation("USERS", ("uid", "name"))
    schema.add_relation("EVENTS", ("uid", "what"))
    return schema


signup = transaction(
    "signup",
    (x, y),
    b.seq(
        b.insert(b.mktuple(x, y), "USERS"),
        b.insert(b.mktuple(x, b.atom("created")), "EVENTS"),
    ),
)
put_user = transaction(
    "put-user", (x, y), b.insert(b.mktuple(x, y), "USERS")
)
n_users = query("n-users", (), b.size_of(b.rel("USERS", 2)))
n_events = query("n-events", (), b.size_of(b.rel("EVENTS", 2)))

#: Crash points and the fate recovery must assign: before the decision
#: record hits disk the transaction is presumed aborted; after, committed.
CRASH_MATRIX = [
    ("prepare:0", "abort"),
    ("prepare:1", "abort"),
    ("before-decision", "abort"),
    ("after-decision", "commit"),
    ("outcome:0", "commit"),
    ("outcome:1", "commit"),
]


def fresh_db(path, **kwargs):
    sdb = ShardedDatabase(
        two_stripe_schema(),
        shards=2,
        path=str(path),
        placement={"USERS": 0, "EVENTS": 1},
        **kwargs,
    )
    assert sdb.plan.shard_of("USERS") != sdb.plan.shard_of("EVENTS")
    return sdb


class TestCrashMatrix:
    @pytest.mark.parametrize("point,fate", CRASH_MATRIX)
    def test_crash_then_recover_resolves_consistently(
        self, tmp_path, point, fate
    ):
        sdb = fresh_db(tmp_path)
        sdb.execute(put_user, 0, 0)  # a baseline committed row
        sdb.faults = TwoPhaseFaults(crash_at=point)
        with pytest.raises(InDoubt) as excinfo:
            sdb.execute(signup, 1, 1)
        err = excinfo.value
        assert err.point == point
        assert err.decided == (fate == "commit")
        sdb.close()

        sdb2, report = ShardedDatabase.recover(
            two_stripe_schema(), str(tmp_path),
            placement={"USERS": 0, "EVENTS": 1},
        )
        if point.startswith("outcome:1") or not report.resolutions:
            # Both outcomes may already be durable — nothing in doubt.
            pass
        else:
            assert all(r.decision == fate for r in report.resolutions)
        if fate == "commit":
            assert sdb2.query(n_users) == 2
            assert sdb2.query(n_events) == 1
        else:
            assert sdb2.query(n_users) == 1
            assert sdb2.query(n_events) == 0
        sdb2.close()

    @pytest.mark.parametrize("point,fate", CRASH_MATRIX)
    def test_recovered_database_accepts_new_work(self, tmp_path, point, fate):
        sdb = fresh_db(tmp_path)
        sdb.faults = TwoPhaseFaults(crash_at=point)
        with pytest.raises(InDoubt):
            sdb.execute(signup, 1, 1)
        sdb.close()
        sdb2, _ = ShardedDatabase.recover(
            two_stripe_schema(), str(tmp_path),
            placement={"USERS": 0, "EVENTS": 1},
        )
        base = 1 if fate == "commit" else 0
        sdb2.execute(signup, 2, 2)
        assert sdb2.query(n_users) == base + 1
        assert sdb2.query(n_events) == base + 1
        sdb2.close()

    def test_crash_after_crash_refuses_further_work(self, tmp_path):
        """A crashed instance is poisoned: it must refuse new transactions
        rather than run on top of an unresolved 2PC window."""
        sdb = fresh_db(tmp_path)
        sdb.faults = TwoPhaseFaults(crash_at="before-decision")
        with pytest.raises(InDoubt):
            sdb.execute(signup, 1, 1)
        with pytest.raises(ShardError):
            sdb.execute(put_user, 2, 2)
        sdb.close()


class TestRecoveryDetails:
    def test_recovery_survives_double_restart(self, tmp_path):
        """Resolving an in-doubt txn must itself be durable: a second
        recovery finds nothing pending and the same state."""
        sdb = fresh_db(tmp_path)
        sdb.faults = TwoPhaseFaults(crash_at="after-decision")
        with pytest.raises(InDoubt):
            sdb.execute(signup, 1, 1)
        sdb.close()
        sdb2, rep1 = ShardedDatabase.recover(
            two_stripe_schema(), str(tmp_path),
            placement={"USERS": 0, "EVENTS": 1},
        )
        users = sdb2.query(n_users)
        sdb2.close()
        sdb3, rep2 = ShardedDatabase.recover(
            two_stripe_schema(), str(tmp_path),
            placement={"USERS": 0, "EVENTS": 1},
        )
        assert rep2.resolutions == ()
        assert rep2.clean
        assert sdb3.query(n_users) == users == 1
        sdb3.close()

    def test_forced_abort_is_typed_and_leaves_no_trace(self, tmp_path):
        sdb = fresh_db(tmp_path)
        sdb.faults = TwoPhaseFaults(abort_txn=True)
        with pytest.raises(ShardError):
            sdb.execute(signup, 1, 1)
        sdb.faults = None
        assert sdb.query(n_users) == 0
        assert sdb.query(n_events) == 0
        # The instance is still healthy — the abort was clean, not a crash.
        sdb.execute(signup, 2, 2)
        assert sdb.query(n_users) == 1
        sdb.close()

    def test_torn_decision_record_presumes_abort(self, tmp_path):
        """If the decision journal is torn mid-frame, the decision record
        is gone; with no applied outcome as witness, recovery must presume
        abort on every shard (never a half-commit)."""
        from repro.testing.chaos_sharding import _tear_decision_journal

        sdb = fresh_db(tmp_path)
        sdb.faults = TwoPhaseFaults(crash_at="after-decision")
        with pytest.raises(InDoubt):
            sdb.execute(signup, 1, 1)
        sdb.close()
        assert _tear_decision_journal(str(tmp_path))
        sdb2, report = ShardedDatabase.recover(
            two_stripe_schema(), str(tmp_path),
            placement={"USERS": 0, "EVENTS": 1},
        )
        assert report.resolutions
        assert all(r.decision == "abort" for r in report.resolutions)
        # The first shard resolved presumes abort and re-records the
        # decision durably; later shards then legitimately cite it.
        assert any("presumed abort" in r.why for r in report.resolutions)
        assert sdb2.query(n_users) == 0
        assert sdb2.query(n_events) == 0
        sdb2.close()

    def test_sibling_outcome_outvotes_torn_decision(self, tmp_path):
        """Crash between the two outcome applies: shard 0's applied outcome
        survives in its journal.  Even with the decision record torn away,
        recovery must commit shard 1 too — the sibling outcome is the
        witness that the decision was durable."""
        from repro.testing.chaos_sharding import _tear_decision_journal

        sdb = fresh_db(tmp_path)
        sdb.faults = TwoPhaseFaults(crash_at="outcome:1")
        with pytest.raises(InDoubt):
            sdb.execute(signup, 1, 1)
        sdb.close()
        _tear_decision_journal(str(tmp_path))
        sdb2, report = ShardedDatabase.recover(
            two_stripe_schema(), str(tmp_path),
            placement={"USERS": 0, "EVENTS": 1},
        )
        assert sdb2.query(n_users) == 1
        assert sdb2.query(n_events) == 1
        for res in report.resolutions:
            assert res.decision == "commit"
        sdb2.close()


class TestCoordinator:
    def test_decisions_survive_reopen_with_new_epoch(self, tmp_path):
        c1 = Coordinator(str(tmp_path))
        t = c1.next_txid("transfer")
        c1.decide(t, "commit", shards=(0, 1))
        c1.close()
        c2 = Coordinator(str(tmp_path))
        assert c2.decision_for(t) == "commit"
        assert c2.epoch > c1.epoch
        # Fresh txids never collide with the old epoch's.
        assert c2.next_txid("transfer") != t
        c2.close()

    def test_contradictory_redecision_refused(self, tmp_path):
        c = Coordinator(str(tmp_path))
        t = c.next_txid("t")
        c.decide(t, "commit")
        c.decide(t, "commit")  # idempotent re-decide is fine
        with pytest.raises(ShardError):
            c.decide(t, "abort")
        c.close()

    def test_resolution_priority(self):
        assert resolve_in_doubt("t", {"t": "commit"}, {})[0] == "commit"
        assert resolve_in_doubt("t", {"t": "abort"}, {"t": "commit"})[0] == (
            "abort"
        )
        assert resolve_in_doubt("t", {}, {"t": "commit"})[0] == "commit"
        decision, why = resolve_in_doubt("t", {}, {})
        assert decision == "abort"
        assert "presumed" in why


class TestDurableSingleShard:
    def test_single_shard_commits_are_journaled_per_shard(self, tmp_path):
        sdb = fresh_db(tmp_path)
        sdb.execute(put_user, 1, 1)
        sdb.execute(put_user, 2, 2)
        sdb.close()
        sdb2, report = ShardedDatabase.recover(
            two_stripe_schema(), str(tmp_path),
            placement={"USERS": 0, "EVENTS": 1},
        )
        assert report.clean
        assert sdb2.query(n_users) == 2
        sdb2.close()

    def test_no_decision_journal_traffic_for_single_shard(self, tmp_path):
        from repro.sharding.twopc import DECISIONS_NAME

        sdb = fresh_db(tmp_path)
        for i in range(5):
            sdb.execute(put_user, i, i)
        sdb.close()
        journal = os.path.join(str(tmp_path), "coordinator", DECISIONS_NAME)
        from repro.storage.journal import read_journal

        scan = read_journal(journal)
        kinds = {r.kind for r in scan.records}
        # Only the epoch marker — zero decisions, zero coordination.
        assert "decision" not in kinds
