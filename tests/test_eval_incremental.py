"""Incremental constraint checking: skips, soundness, and the randomized
incremental-vs-full agreement harness."""

from __future__ import annotations

import random

import pytest

from repro.engine import Database
from repro.errors import ConstraintViolation
from repro.domains import make_domain


STATIC = (
    "every-employee-allocated",
    "alloc-references-project",
    "allocation-within-limit",
)


def fresh_db(*constraint_names, **kwargs):
    domain = make_domain()
    domain.install_constraints(*constraint_names)
    db = Database(domain.schema, initial=domain.sample_state(), **kwargs)
    return domain, db


class TestSkipping:
    def test_unaffected_constraint_is_skipped_after_first_check(self):
        domain, db = fresh_db("every-employee-allocated")
        chk = db.enable_incremental()
        db.execute(domain.create_project, "web", 50)  # PROJ: first full check
        assert (chk.stats.skipped, chk.stats.checked) == (0, 1)
        db.execute(domain.create_project, "app", 60)  # now skippable
        assert (chk.stats.skipped, chk.stats.checked) == (1, 1)
        # The skip shows up in the execution record as a passing result.
        result = db.records[-1].results[0]
        assert result.ok and result.states_checked == 0
        assert "incremental" in result.detail

    def test_affected_constraint_is_rechecked(self):
        domain, db = fresh_db("every-employee-allocated")
        chk = db.enable_incremental()
        db.execute(domain.create_project, "web", 50)
        # hire touches EMP — inside the footprint — so no skip; and the new
        # unallocated employee genuinely violates the constraint.
        with pytest.raises(ConstraintViolation):
            db.execute(domain.hire, "erin", "cs", 90, 25, "S")
        assert chk.stats.skipped == 0
        assert chk.stats.checked == 2

    def test_failed_commit_keeps_validity_of_old_window(self):
        domain, db = fresh_db("every-employee-allocated")
        chk = db.enable_incremental()
        db.execute(domain.create_project, "web", 50)
        with pytest.raises(ConstraintViolation):
            db.execute(domain.hire, "erin", "cs", 90, 25, "S")
        # The window did not move; the constraint still holds over it, so
        # the next disjoint commit may skip.
        db.execute(domain.create_project, "app", 60)
        assert chk.stats.skipped == 1

    def test_arity_widened_footprint_blocks_same_arity_writes(self):
        # every-employee-allocated quantifies a fluent arity-3 tuple, so a
        # DEPT (arity 3) write blocks the skip even though the formula never
        # names DEPT.
        domain, db = fresh_db("every-employee-allocated")
        chk = db.enable_incremental()
        db.execute(domain.create_dept, "legal", "ada", "b9")
        db.execute(domain.create_dept, "hr", "grace", "b7")
        assert chk.stats.skipped == 0
        assert chk.stats.checked == 2

    def test_ineligible_constraints_are_always_rechecked(self):
        domain, db = fresh_db("skill-retention")  # transition-quantified
        chk = db.enable_incremental()
        db.execute(domain.create_project, "web", 50)
        db.execute(domain.create_project, "app", 60)
        assert chk.stats.skipped == 0
        assert chk.stats.checked == 2

    def test_trusted_skip_evicts_validity(self):
        domain, db = fresh_db("every-employee-allocated")
        chk = db.enable_incremental()
        db.execute(domain.create_project, "web", 50)
        # A trusted pair bypasses checking entirely — and must also evict
        # the constraint from the valid set (the engine did not verify the
        # new window).
        db.trust("every-employee-allocated", "create-project")
        db.execute(domain.create_project, "app", 60)
        assert chk.stats.skipped == 0
        db._trusted.clear()
        db.execute(domain.create_project, "crm", 70)
        # Not trusted any more, and not in the valid set: full check again.
        assert (chk.stats.skipped, chk.stats.checked) == (0, 2)

    def test_register_encoding_resets_validity(self):
        from repro.constraints.history import HistoryEncoding

        domain, db = fresh_db("every-employee-allocated")
        chk = db.enable_incremental()
        db.execute(domain.create_project, "web", 50)
        db.register_encoding(
            HistoryEncoding(domain.schema.relation("EMP"), "FIRE", "e-name")
        )
        db.execute(domain.create_project, "app", 60)
        assert chk.stats.skipped == 0

    def test_metrics_mirrored(self):
        domain, db = fresh_db("every-employee-allocated")
        db.enable_incremental()
        db.execute(domain.create_project, "web", 50)
        db.execute(domain.create_project, "app", 60)
        m = db.metrics
        assert m.counter("repro_eval_constraints_skipped_total").value == 1
        assert m.counter("repro_eval_constraints_checked_total").value == 1
        assert m.gauge("repro_eval_constraints_skipped").value == 1
        assert m.gauge("repro_eval_constraints_valid").value == 1


class TestVerifyMode:
    def test_verify_mode_runs_full_checks_and_agrees(self):
        domain, db = fresh_db(*STATIC)
        chk = db.enable_incremental(verify=True)
        db.execute(domain.create_project, "web", 50)
        db.execute(domain.create_project, "app", 60)
        # In verify mode nothing is actually skipped...
        assert chk.stats.skipped == 0
        # ...but licensed skips were cross-checked against the full check.
        assert chk.stats.verified >= 1


class TestConcurrentPath:
    def test_scheduler_commits_use_incremental_checking(self):
        domain, db = fresh_db("every-employee-allocated")
        chk = db.enable_incremental()
        with db.concurrent(workers=2) as mgr:
            outcomes = mgr.run_all(
                [(domain.create_project, f"p{i}", 10) for i in range(6)]
            )
        assert all(o.ok for o in outcomes)
        assert mgr.verify_serializable()
        # First commit checks fully; the other five skip.
        assert (chk.stats.skipped, chk.stats.checked) == (5, 1)


class TestRandomizedAgreement:
    """The acceptance-criteria harness: on a random workload, incremental
    and full checking must agree on every single commit."""

    def ops(self, domain, rng):
        """A random transaction (program, args) — some violate constraints."""
        choices = [
            (domain.create_project, lambda: (f"p{rng.randrange(100)}", 10)),
            (domain.create_dept,
             lambda: (f"d{rng.randrange(100)}", "chair", "b1")),
            (domain.add_skill,
             lambda: (rng.choice(["alice", "bob", "carol"]),
                      rng.randrange(10))),
            # hire violates every-employee-allocated (new emp, no alloc)
            (domain.hire,
             lambda: (f"e{rng.randrange(100)}", "cs", 90, 25, "S")),
            # set_salary touches EMP but preserves all installed constraints
            (domain.set_salary,
             lambda: (rng.choice(["alice", "bob", "carol", "dan"]),
                      rng.randrange(50, 200))),
        ]
        program, mk = rng.choice(choices)
        return program, mk()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_incremental_and_full_agree_on_every_commit(self, seed):
        rng = random.Random(seed)
        script = []
        d_probe = make_domain()
        for _ in range(60):
            program, args = self.ops(d_probe, rng)
            script.append((program.name, args))

        # Run the same script on three databases: full checking, incremental
        # (verify mode — raises IncrementalMismatch on any disagreement),
        # and incremental for real (skips actually taken).
        def run(enable, verify):
            domain = make_domain()
            domain.install_constraints(*STATIC)
            db = Database(domain.schema, initial=domain.sample_state())
            if enable:
                db.enable_incremental(verify=verify)
            programs = {
                p.name: p
                for p in (domain.create_project, domain.create_dept,
                          domain.add_skill, domain.hire, domain.set_salary)
            }
            verdicts = []
            for name, args in script:
                ok, _ = db.try_execute(programs[name], *args)
                verdicts.append(ok)
            return verdicts, db

        full_verdicts, full_db = run(enable=False, verify=False)
        verified_verdicts, _ = run(enable=True, verify=True)
        inc_verdicts, inc_db = run(enable=True, verify=False)

        assert verified_verdicts == full_verdicts
        assert inc_verdicts == full_verdicts
        assert inc_db.current.digest() == full_db.current.digest()
        inc = inc_db._incremental
        assert inc.stats.skipped > 0, "workload exercised no skips"
