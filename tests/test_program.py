"""Database programs: declaration, instantiation, execution."""

import pytest

from repro.errors import ExecutabilityError, SortError
from repro.db import Schema, state_from_rows
from repro.logic import builder as b
from repro.transactions import query, transaction
from repro.transactions.program import DatabaseProgram, literal_args


@pytest.fixture()
def schema():
    s = Schema()
    s.add_relation("R", ("k", "v"))
    return s


@pytest.fixture()
def state(schema):
    return state_from_rows(schema, {"R": [("a", 1), ("b", 2)]})


def _set_v(schema):
    k, v = b.atom_var("k"), b.atom_var("v")
    t = b.ftup_var("t", 2)
    rs = schema.relation("R")
    cond = b.land(b.member(t, rs.rel()), b.eq(b.select(t, 1), k))
    return transaction("set-v", (k, v), b.foreach(t, cond, b.modify(t, 2, v)))


class TestDeclaration:
    def test_transaction_is_state_sorted(self, schema):
        tx = _set_v(schema)
        assert tx.is_transaction and not tx.is_query

    def test_query_is_object_sorted(self, schema):
        t = b.ftup_var("t", 2)
        q = query("vals", (), b.setformer(b.select(t, 2), t, b.member(t, b.rel("R", 2))))
        assert q.is_query

    def test_transaction_builder_rejects_queries(self, schema):
        t = b.ftup_var("t", 2)
        body = b.setformer(b.select(t, 2), t, b.member(t, b.rel("R", 2)))
        with pytest.raises(ExecutabilityError):
            transaction("bad", (), body)

    def test_query_builder_rejects_transactions(self):
        with pytest.raises(ExecutabilityError):
            query("bad", (), b.identity())

    def test_free_variables_must_be_parameters(self):
        k = b.atom_var("k")
        with pytest.raises(ExecutabilityError):
            transaction("bad", (), b.insert(b.mktuple(k, b.atom(1)), "R"))

    def test_situational_body_rejected(self):
        s = b.state_var("s")
        with pytest.raises(ExecutabilityError):
            DatabaseProgram("bad", (), b.after(s, b.identity()))


class TestExecution:
    def test_run_with_values(self, schema, state):
        tx = _set_v(schema)
        s2 = tx.run(state, "a", 42)
        values = {t.values for t in s2.relation("R")}
        assert ("a", 42) in values and ("b", 2) in values

    def test_query_with_values(self, schema, state):
        t = b.ftup_var("t", 2)
        k = b.atom_var("k")
        rs = schema.relation("R")
        q = query(
            "lookup",
            (k,),
            b.setformer(
                b.select(t, 2), t, b.land(b.member(t, rs.rel()), b.eq(b.select(t, 1), k))
            ),
        )
        result = q.query(state, "b")
        assert result.first_column() == [2]

    def test_wrong_arity_rejected(self, schema, state):
        tx = _set_v(schema)
        with pytest.raises(SortError):
            tx.run(state, "a")

    def test_run_on_query_rejected(self, schema, state):
        t = b.ftup_var("t", 2)
        q = query("vals", (), b.setformer(b.select(t, 2), t, b.member(t, b.rel("R", 2))))
        with pytest.raises(ExecutabilityError):
            q.run(state)

    def test_call_dispatches(self, schema, state):
        tx = _set_v(schema)
        s2 = tx(state, "a", 9)
        assert ("a", 9) in {t.values for t in s2.relation("R")}

    def test_precondition_blocks(self, schema, state):
        k, v = b.atom_var("k"), b.atom_var("v")
        t = b.ftup_var("t", 2)
        rs = schema.relation("R")
        exists_k = b.exists(t, b.land(b.member(t, rs.rel()), b.eq(b.select(t, 1), k)))
        cond = b.land(b.member(t, rs.rel()), b.eq(b.select(t, 1), k))
        tx = transaction(
            "set-v-guarded", (k, v), b.foreach(t, cond, b.modify(t, 2, v)),
            precondition=exists_k,
        )
        tx.run(state, "a", 1)
        with pytest.raises(ExecutabilityError):
            tx.run(state, "zz", 1)


class TestInstantiation:
    def test_instantiate_substitutes(self, schema):
        tx = _set_v(schema)
        body = tx.instantiate(*literal_args("a", 42))
        assert not body.free_vars()

    def test_instantiate_sort_checked(self, schema):
        tx = _set_v(schema)
        with pytest.raises(SortError):
            tx.instantiate(b.ftup_var("e", 2), b.atom(1))

    def test_instantiate_arity_checked(self, schema):
        tx = _set_v(schema)
        with pytest.raises(SortError):
            tx.instantiate(b.atom(1))
