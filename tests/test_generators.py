"""Workload generators: validity and determinism of generated data."""

import pytest

from repro.constraints import check_state
from repro.db.generators import benign_history, employee_state, violating_history


class TestEmployeeState:
    @pytest.mark.parametrize("size", [1, 5, 25, 80])
    def test_generated_states_satisfy_example1(self, domain, size):
        state = employee_state(domain, size)
        for c in domain.static_constraints:
            assert check_state(c, state).ok, (c.name, size)

    def test_requested_size_honoured(self, domain):
        assert len(employee_state(domain, 17).relation("EMP")) == 17

    def test_deterministic_per_seed(self, domain):
        a = employee_state(domain, 12, seed=3)
        b = employee_state(domain, 12, seed=3)
        assert a == b

    def test_seeds_vary(self, domain):
        a = employee_state(domain, 12, seed=1)
        b = employee_state(domain, 12, seed=2)
        assert a != b

    def test_every_allocation_total_at_most_100(self, domain):
        state = employee_state(domain, 30, seed=7)
        totals: dict[str, int] = {}
        for t in state.relation("ALLOC"):
            totals[t.values[0]] = totals.get(t.values[0], 0) + t.values[2]
        assert all(v <= 100 for v in totals.values())


class TestHistories:
    def test_benign_history_length(self, domain):
        states = benign_history(domain, 8, 5)
        assert len(states) == 6

    def test_benign_history_static_valid_throughout(self, domain):
        for state in benign_history(domain, 8, 5, seed=2):
            for c in domain.static_constraints:
                assert check_state(c, state).ok

    def test_violating_history_contains_fire_and_rehire(self, domain):
        states = violating_history(domain, 8, gap=3)
        assert len(states) == 3 + 4  # initial, fire, gap birthdays, hire, alloc
        names_first = {t.values[0] for t in states[0].relation("EMP")}
        names_after_fire = {t.values[0] for t in states[1].relation("EMP")}
        assert "emp0" in names_first and "emp0" not in names_after_fire
        names_final = {t.values[0] for t in states[-1].relation("EMP")}
        assert "emp0" in names_final

    def test_violating_history_final_state_statically_valid(self, domain):
        """The violation is purely dynamic — every snapshot looks fine."""
        states = violating_history(domain, 8, gap=2)
        for c in domain.static_constraints:
            assert check_state(c, states[-1]).ok
