"""The surface language: lexer, parser, end-to-end declarations."""

import pytest

from repro.errors import ParseError
from repro.constraints import ConstraintKind, Window, check_state
from repro.lang import parse, parse_formula, parse_transaction, tokenize
from repro.lang.lexer import TokenKind


class TestLexer:
    def test_dashed_identifiers(self):
        tokens = tokenize("e-name m-status")
        assert [t.text for t in tokens[:-1]] == ["e-name", "m-status"]

    def test_subtraction_needs_spaces(self):
        tokens = tokenize("salary(e) - v")
        texts = [t.text for t in tokens[:-1]]
        assert "-" in texts

    def test_dash_letter_binds_into_identifier(self):
        tokens = tokenize("a-b")
        assert [t.text for t in tokens[:-1]] == ["a-b"]

    def test_longest_match_symbols(self):
        tokens = tokenize(";; :: := <-> -> <= >= !=")
        assert [t.text for t in tokens[:-1]] == [
            ";;", "::", ":=", "<->", "->", "<=", ">=", "!=",
        ]

    def test_comments_skipped(self):
        tokens = tokenize("x // a comment\ny")
        assert [t.text for t in tokens[:-1]] == ["x", "y"]

    def test_strings(self):
        (tok, _eof) = tokenize('"hello world"')
        assert tok.kind is TokenKind.STRING and tok.text == "hello world"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"oops')

    def test_illegal_character(self):
        with pytest.raises(ParseError):
            tokenize("@")

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1 and tokens[1].line == 2 and tokens[1].column == 3

    def test_keywords_recognized(self):
        tokens = tokenize("forall exists foreach")
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])


SCHEMA_SRC = """
relation EMP(e-name, e-dept, salary, age, m-status);
relation ALLOC(a-emp, a-proj, perc);
relation PROJ(p-name, t-alloc);
"""


@pytest.fixture()
def parsed_schema():
    return parse(SCHEMA_SRC).schema


class TestFormulaParsing:
    def test_static_constraint(self, parsed_schema):
        f = parse_formula(
            "forall s: state. holds(s, forall e: EMP. e in EMP -> salary(e) >= 0)",
            parsed_schema,
        )
        from repro.constraints import classify

        assert classify(f) is ConstraintKind.STATIC

    def test_precedence_and_binds_tighter_than_implies(self, parsed_schema):
        f = parse_formula("1 < 2 and 2 < 3 -> 3 < 4", parsed_schema)
        from repro.logic.formulas import And, Implies

        assert isinstance(f, Implies)
        assert isinstance(f.antecedent, And)

    def test_implies_right_associative(self, parsed_schema):
        f = parse_formula("1 < 2 -> 2 < 3 -> 3 < 4", parsed_schema)
        from repro.logic.formulas import Implies

        assert isinstance(f, Implies) and isinstance(f.consequent, Implies)

    def test_cross_state_comparison(self, parsed_schema):
        f = parse_formula(
            "forall s: state, t: trans, e: EMP. "
            "at(s, salary(e)) <= at(after(s, t), salary(e)) "
            "or at(s, e-dept(e)) != at(after(s, t), e-dept(e))",
            parsed_schema,
        )
        assert not f.free_vars()

    def test_set_former_with_parameters(self, parsed_schema):
        f = parse_formula(
            "forall s: state. holds(s, forall e: EMP. e in EMP -> "
            "sum({ perc(a) | a: ALLOC . a in ALLOC and a-emp(a) = e-name(e) }) <= 100)",
            parsed_schema,
        )
        assert not f.free_vars()

    def test_unknown_name_reported(self, parsed_schema):
        with pytest.raises(ParseError, match="unknown name"):
            parse_formula("mystery < 3", parsed_schema)

    def test_ambiguous_attribute_reported(self):
        schema = parse(
            "relation A(x, common); relation B(y, common);"
        ).schema
        # a constructed row has no declared relation: two candidates
        with pytest.raises(ParseError, match="not uniquely"):
            parse_formula("common(row(1, 2)) = 1", schema)
        # a bound variable resolves through its declared relation
        f = parse_formula("forall a: A. common(a) = 1", schema)
        assert not f.free_vars()

    def test_atom_in_relation_coerces_to_row(self, parsed_schema):
        schema = parse("relation NAMES(n);").schema
        f = parse_formula("forall s: state. holds(s, \"alice\" in NAMES)", schema)
        assert not f.free_vars()

    def test_trailing_input_rejected(self, parsed_schema):
        with pytest.raises(ParseError, match="trailing"):
            parse_formula("1 < 2 extra", parsed_schema)


class TestTransactionParsing:
    def test_insert_transaction(self, parsed_schema):
        tx = parse_transaction(
            "transaction hire(n, d, s, a, m) := insert row(n, d, s, a, m) into EMP;",
            parsed_schema,
        )
        assert tx.is_transaction and len(tx.params) == 5

    def test_foreach_modify(self, parsed_schema):
        tx = parse_transaction(
            "transaction raise-all(amount) := "
            "foreach e: EMP | e in EMP do set e.salary := salary(e) + amount end;",
            parsed_schema,
        )
        from repro.domains import make_domain

        d = make_domain()
        s0 = d.sample_state()
        s1 = tx.run(s0, 5)
        assert all(
            t.values[2] == o.values[2] + 5
            for t, o in zip(
                sorted(s1.relation("EMP"), key=lambda x: x.tid),
                sorted(s0.relation("EMP"), key=lambda x: x.tid),
            )
        )

    def test_conditional(self, parsed_schema):
        tx = parse_transaction(
            "transaction maybe(n) := "
            "if exists e: EMP. e in EMP and e-name(e) = n "
            "then skip else insert row(n, \"cs\", 0, 20, \"S\") into EMP end;",
            parsed_schema,
        )
        from repro.domains import make_domain

        d = make_domain()
        s0 = d.sample_state()
        assert tx.run(s0, "alice") == s0
        s1 = tx.run(s0, "zoe")
        assert len(s1.relation("EMP")) == 5

    def test_assign_declares_local_relation(self, parsed_schema):
        tx = parse_transaction(
            "transaction snap() := "
            "assign NAMES := { e-name(e) | e: EMP . e in EMP };",
            parsed_schema,
        )
        from repro.domains import make_domain

        s1 = tx.run(make_domain().sample_state())
        assert len(s1.relation("NAMES")) == 4

    def test_composition(self, parsed_schema):
        tx = parse_transaction(
            "transaction two(n) := "
            "insert row(n, \"p\", 1) into ALLOC ;; delete row(n, \"p\", 1) from ALLOC;",
            parsed_schema,
        )
        from repro.domains import make_domain

        s0 = make_domain().sample_state()
        assert tx.run(s0, "alice") == s0

    def test_unknown_relation_rejected(self, parsed_schema):
        with pytest.raises(ParseError, match="unknown relation"):
            parse_transaction(
                "transaction bad(n) := insert row(n) into NOPE;", parsed_schema
            )

    def test_set_requires_bound_tuple_var(self, parsed_schema):
        with pytest.raises(ParseError, match="bound tuple variable"):
            parse_transaction(
                "transaction bad(n) := set n.salary := 3;", parsed_schema
            )


class TestFullPrograms:
    def test_constraint_metadata(self):
        program = parse(
            SCHEMA_SRC
            + 'constraint c1 [window full] := forall s: state. holds(s, true);'
            + 'constraint c2 [window uncheckable] := forall s: state. holds(s, true);'
            + 'constraint c3 [window 3, assume "x"] := forall s: state. holds(s, true);'
        )
        assert program.constraint("c1").declared_window is Window.FULL_HISTORY
        assert program.constraint("c2").declared_window is Window.UNCHECKABLE
        assert program.constraint("c3").declared_window == 3
        assert program.constraint("c3").assumption == "x"

    def test_parsed_constraint_checks_like_builtin(self):
        from repro.domains import make_domain

        d = make_domain()
        source = (
            "constraint limit := forall s: state. holds(s, forall e: EMP. "
            "e in EMP -> sum({ perc(a) | a: ALLOC . a in ALLOC and "
            "a-emp(a) = e-name(e) }) <= 100);"
        )
        program = parse(source, d.schema)
        c = program.constraint("limit")
        s0 = d.sample_state()
        assert check_state(c, s0).ok
        over = d.allocate.run(s0, "bob", "ai", 50)
        assert not check_state(c, over).ok

    def test_duplicate_relation_rejected(self):
        with pytest.raises(Exception):
            parse("relation R(a); relation R(b);")

    def test_queries_parsed(self):
        program = parse(
            SCHEMA_SRC + "query names() := { e-name(e) | e: EMP . e in EMP };"
        )
        assert "names" in program.queries
