"""Formulas: connectives, quantifiers, layer discipline, smart constructors."""

import pytest

from repro.errors import SortError
from repro.logic import builder as b
from repro.logic.formulas import (
    And,
    Eq,
    EvalBool,
    Exists,
    FalseF,
    Forall,
    Or,
    TrueF,
    conj,
    disj,
    exists,
    forall,
)
from repro.logic.terms import Layer, RelConst


class TestAtoms:
    def test_member_is_fluent_over_fluent_args(self):
        e = b.ftup_var("e", 5)
        f = b.member(e, RelConst("EMP", 5))
        assert f.layer is Layer.FLUENT

    def test_comparison_of_cross_state_values(self):
        """The paper's age'(s1,e) < age'(s2,e): rigid < over situational args."""
        s1, s2 = b.state_var("s1"), b.state_var("s2")
        e = b.ftup_var("e", 5)
        age = lambda s: b.at(s, b.attr("age", 5, 4, e))
        f = b.lt(age(s1), age(s2))
        assert f.layer is Layer.SITUATIONAL

    def test_eq_requires_same_sort(self):
        with pytest.raises(SortError):
            Eq(b.atom(1), b.ftup_var("e", 2))

    def test_state_equality_allowed(self):
        """Example 4's invertibility: s = s;t1;t2."""
        s = b.state_var("s")
        t1, t2 = b.trans_var("t1"), b.trans_var("t2")
        f = Eq(s, b.after(b.after(s, t1), t2))
        assert f.layer is Layer.SITUATIONAL

    def test_eval_bool_requires_fluent_formula(self):
        s = b.state_var("s")
        inner = b.holds(s, TrueF())
        with pytest.raises(SortError):
            EvalBool(s, inner)

    def test_ground_comparison_is_either(self):
        assert b.lt(b.atom(1), b.atom(2)).layer is Layer.EITHER


class TestConnectives:
    def test_mixing_layers_rejected(self):
        s = b.state_var("s")
        e = b.ftup_var("e", 5)
        fluent = b.member(e, RelConst("EMP", 5))
        situational = b.holds(s, fluent)
        with pytest.raises(SortError):
            And((fluent, situational))

    def test_either_joins_freely(self):
        ground = b.lt(b.atom(1), b.atom(2))
        e = b.ftup_var("e", 5)
        fluent = b.member(e, RelConst("EMP", 5))
        assert And((ground, fluent)).layer is Layer.FLUENT

    def test_conj_flattens(self):
        f = conj(b.true(), conj(b.false(), b.true()))
        assert f == FalseF()

    def test_conj_empty_is_true(self):
        assert conj() == TrueF()

    def test_conj_single_passthrough(self):
        g = b.lt(b.atom(1), b.atom(2))
        assert conj(g) is g

    def test_disj_flattens(self):
        g = b.lt(b.atom(1), b.atom(2))
        f = disj(b.false(), g)
        assert f is g

    def test_disj_empty_is_false(self):
        assert disj() == FalseF()

    def test_nested_and_flattening(self):
        g1 = b.lt(b.atom(1), b.atom(2))
        g2 = b.lt(b.atom(2), b.atom(3))
        g3 = b.lt(b.atom(3), b.atom(4))
        f = conj(g1, conj(g2, g3))
        assert isinstance(f, And) and len(f.conjuncts) == 3


class TestQuantifiers:
    def test_forall_binds(self):
        e = b.ftup_var("e", 5)
        f = Forall(e, b.member(e, RelConst("EMP", 5)))
        assert f.free_vars() == frozenset()

    def test_forall_list_closure(self):
        s = b.state_var("s")
        e = b.ftup_var("e", 5)
        f = forall([s, e], b.holds(s, b.member(e, RelConst("EMP", 5))))
        assert isinstance(f, Forall) and f.var == s
        assert isinstance(f.body, Forall) and f.body.var == e

    def test_exists_closure(self):
        e = b.ftup_var("e", 5)
        f = exists(e, b.member(e, RelConst("EMP", 5)))
        assert isinstance(f, Exists)
        assert f.free_vars() == frozenset()

    def test_quantifier_layer_follows_body(self):
        e = b.ftup_var("e", 5)
        fluent_body = b.member(e, RelConst("EMP", 5))
        assert Forall(e, fluent_body).layer is Layer.FLUENT
        s = b.state_var("s")
        assert Forall(s, b.holds(s, fluent_body)).layer is Layer.SITUATIONAL

    def test_bound_vars_reported(self):
        e = b.ftup_var("e", 5)
        f = Forall(e, b.member(e, RelConst("EMP", 5)))
        assert f.bound_vars() == (e,)

    def test_free_vars_of_open_formula(self):
        e = b.ftup_var("e", 5)
        a = b.ftup_var("a", 3)
        f = Forall(e, b.land(b.member(e, RelConst("EMP", 5)), b.member(a, RelConst("ALLOC", 3))))
        assert f.free_vars() == frozenset({a})
